//! Telemetry overhead benchmark: the cached re-rank path (a warm
//! [`kg_serve::ScoreServer::rank_batch`] over an unchanged graph — every
//! request a cache hit) measured under three arms:
//!
//! * **off** — telemetry disabled: the zero-cost path every entry point
//!   must keep (one relaxed atomic load per touch point);
//! * **spans** — telemetry enabled, recorder idle: span completions and
//!   counters land in the lock-free stats tables and the spans also hit
//!   the per-thread rings (span begin/ends are always ring-written when
//!   enabled);
//! * **recording** — [`kg_telemetry::start_recording`] on: instants and
//!   counter deltas join the rings too — the full flight-recorder cost.
//!
//! Arms are interleaved per repetition and each arm's minimum across
//! repetitions is compared, so ambient machine noise hits all arms
//! equally. `BENCH_telemetry_overhead.json` records the times and
//! relative overheads; with `--enforce`, exits nonzero when the
//! recording arm exceeds the overhead budget (10% relative, with a small
//! absolute slack for sub-millisecond workloads) — the check.sh gate.
//!
//! Run: `cargo run -p kg-bench --release --bin telemetry_overhead
//!       [--scale f] [--seed u] [--votes n] [--iters n] [--reps n]
//!       [--out path] [--enforce]`

use kg_bench::setups::vote_scenario;
use kg_bench::table::f2;
use kg_bench::{Args, Table};
use kg_datasets::TWITTER;
use kg_graph::NodeId;
use kg_serve::{ScoreServer, ServeConfig};
use kg_sim::{BatchQuery, SimilarityConfig};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Relative overhead budget for the recording arm (check.sh gate).
const MAX_RELATIVE_OVERHEAD: f64 = 0.10;
/// Absolute slack per measured pass: timing jitter floor so a
/// microsecond-scale workload cannot fail the relative gate on noise.
const ABS_SLACK: Duration = Duration::from_micros(200);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    Off,
    Spans,
    Recording,
}

impl Arm {
    fn label(self) -> &'static str {
        match self {
            Arm::Off => "off",
            Arm::Spans => "spans",
            Arm::Recording => "recording",
        }
    }
}

/// One arm's measurement across all repetitions.
#[derive(Debug, Serialize)]
struct ArmOut {
    /// Fastest measured pass, milliseconds — the comparison basis.
    min_ms: f64,
    /// Per-repetition pass times, milliseconds.
    reps_ms: Vec<f64>,
    /// Relative overhead vs the `off` arm's fastest pass.
    overhead: f64,
}

/// The emitted `BENCH_telemetry_overhead.json` document.
#[derive(Debug, Serialize)]
struct OverheadBench {
    dataset: String,
    scale: f64,
    seed: u64,
    queries: usize,
    k: usize,
    /// rank_batch calls per measured pass.
    iters: usize,
    /// Interleaved repetitions per arm.
    reps: usize,
    off: ArmOut,
    spans: ArmOut,
    recording: ArmOut,
    /// The gate: recording-arm relative overhead budget.
    max_relative_overhead: f64,
    /// Absolute per-pass slack (milliseconds) under which the relative
    /// gate is waived.
    abs_slack_ms: f64,
    /// Whether the recording arm met the budget.
    pass: bool,
}

fn flag(args: &Args, name: &str) -> Option<String> {
    args.rest
        .iter()
        .position(|a| a == name)
        .and_then(|p| args.rest.get(p + 1).cloned())
}

fn num_flag(args: &Args, name: &str, default: usize) -> usize {
    flag(args, name)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} wants a number"))
        })
        .unwrap_or(default)
}

fn measure(
    arm: Arm,
    server: &mut ScoreServer,
    graph: &kg_graph::KnowledgeGraph,
    requests: &[BatchQuery<'_>],
    iters: usize,
) -> Duration {
    match arm {
        Arm::Off => kg_telemetry::disable(),
        Arm::Spans => kg_telemetry::enable(),
        Arm::Recording => {
            kg_telemetry::enable();
            kg_telemetry::start_recording();
        }
    }
    let started = Instant::now();
    for _ in 0..iters {
        let ranked = server.rank_batch(graph, requests);
        std::hint::black_box(&ranked);
    }
    let elapsed = started.elapsed();
    kg_telemetry::stop_recording();
    kg_telemetry::disable();
    elapsed
}

fn main() {
    // A deliberately beefier default workload than the other bins: with
    // too few warm queries per rank_batch call, the fixed per-call span
    // cost dominates and the relative numbers measure nothing but it.
    let args = Args::parse(0.3);
    let n_votes = num_flag(&args, "--votes", 768);
    let iters = num_flag(&args, "--iters", 20).max(1);
    let reps = num_flag(&args, "--reps", 7).max(3);
    let out_path =
        flag(&args, "--out").unwrap_or_else(|| "BENCH_telemetry_overhead.json".to_string());
    let enforce = args.rest.iter().any(|a| a == "--enforce");
    let k = 10usize;

    println!(
        "Telemetry overhead bench — cached re-rank path, recorder off vs spans vs \
         recording (scale {}, seed {})\n",
        args.scale, args.seed
    );

    let scenario = vote_scenario(&TWITTER, n_votes, args.scale, args.seed);
    let graph = scenario.graph.clone();
    let sim = SimilarityConfig::default();
    let mut questions: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    for v in &scenario.votes.votes {
        if !questions.iter().any(|(q, _)| *q == v.query) {
            questions.push((v.query, v.answers.clone()));
        }
    }
    let requests: Vec<BatchQuery<'_>> = questions
        .iter()
        .map(|(q, answers)| BatchQuery {
            query: *q,
            answers,
            k,
        })
        .collect();
    println!(
        "workload: {} warm queries x {iters} rank_batch calls per pass, {reps} reps per arm\n",
        requests.len()
    );

    let mut server = ScoreServer::new(ServeConfig {
        sim,
        ..Default::default()
    });
    // Warm the cache (and the ring/table allocation paths) so every
    // measured pass is pure cache hits.
    kg_telemetry::reset();
    server.rank_batch(&graph, &requests);
    measure(Arm::Recording, &mut server, &graph, &requests, 1);

    const ARMS: [Arm; 3] = [Arm::Off, Arm::Spans, Arm::Recording];
    let mut times: [Vec<Duration>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..reps {
        for (i, arm) in ARMS.iter().enumerate() {
            times[i].push(measure(*arm, &mut server, &graph, &requests, iters));
        }
    }
    kg_telemetry::reset();

    let min = |ds: &[Duration]| ds.iter().copied().min().unwrap_or(Duration::ZERO);
    let base = min(&times[0]);
    let arm_out = |ds: &[Duration]| {
        let fastest = min(ds);
        let overhead = if base.is_zero() {
            0.0
        } else {
            fastest.as_secs_f64() / base.as_secs_f64() - 1.0
        };
        ArmOut {
            min_ms: fastest.as_secs_f64() * 1e3,
            reps_ms: ds.iter().map(|d| d.as_secs_f64() * 1e3).collect(),
            overhead,
        }
    };
    let outs = [arm_out(&times[0]), arm_out(&times[1]), arm_out(&times[2])];

    let mut t = Table::new(&["arm", "min ms", "overhead"]);
    for (arm, out) in ARMS.iter().zip(outs.iter()) {
        t.row(&[
            arm.label().to_string(),
            f2(out.min_ms),
            format!("{:+.1}%", out.overhead * 100.0),
        ]);
    }
    t.print();

    let recording_min = min(&times[2]);
    let pass = outs[2].overhead <= MAX_RELATIVE_OVERHEAD
        || recording_min.saturating_sub(base) <= ABS_SLACK;
    println!(
        "\nrecording-arm overhead {:+.1}% (budget {:.0}%, abs slack {} us): {}",
        outs[2].overhead * 100.0,
        MAX_RELATIVE_OVERHEAD * 100.0,
        ABS_SLACK.as_micros(),
        if pass { "PASS" } else { "FAIL" }
    );

    let [off, spans, recording] = outs;
    let bench = OverheadBench {
        dataset: scenario.name.clone(),
        scale: args.scale,
        seed: args.seed,
        queries: requests.len(),
        k,
        iters,
        reps,
        off,
        spans,
        recording,
        max_relative_overhead: MAX_RELATIVE_OVERHEAD,
        abs_slack_ms: ABS_SLACK.as_secs_f64() * 1e3,
        pass,
    };
    let json = serde_json::to_string_pretty(&bench).expect("bench report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench json");
    println!("wrote {out_path}");
    if enforce && !pass {
        std::process::exit(1);
    }
}
