//! Vote-error robustness (beyond the paper's tables, but directly
//! validating its Section V judgment mechanism): inject a growing
//! fraction of *erroneous* votes — users picking a random answer instead
//! of the truth — and measure held-out quality with the extreme-condition
//! judgment enabled vs disabled.
//!
//! Findings (see EXPERIMENTS.md): quality degrades gracefully with the
//! error rate; within-list wrong picks are almost always *fixable*, so
//! the Section V judgment stays quiet (its prey is votes for unreachable
//! answers — exercised in `tests/failure_injection.rs`) and the sigmoid
//! majority does the absorbing. Freezing the entity→document links acts
//! as a strong regularizer (fewer, better-shared variables).
//!
//! Run: `cargo run -p kg-bench --release --bin robustness [--scale f] [--seed u]`

use kg_bench::table::{f2, f3};
use kg_bench::{Args, Table};
use kg_datasets::{simulate_user_study, UserStudyConfig};
use kg_metrics::{mean_rank, mrr};
use kg_sim::SimilarityConfig;
use kg_votes::{solve_multi_votes, MultiVoteOptions, Vote, VoteSet};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = Args::parse(0.25);
    let _telemetry = args.telemetry_guard();
    println!(
        "Vote-error robustness (scale {}, seed {})\n",
        args.scale, args.seed
    );
    let scaled = |full: usize, min: usize| ((full as f64 * args.scale).round() as usize).max(min);
    let cfg = UserStudyConfig {
        entities: scaled(1_663, 60),
        edges: scaled(17_591, 400),
        n_docs: scaled(2_379, 40),
        n_votes: scaled(100, 12),
        n_test: scaled(100, 12),
        top_k: 10,
        link_degree: 4,
        noise: 0.6,
        corrupt_fraction: 0.2,
        test_overlap: 0.9,
        sim: SimilarityConfig::default(),
        seed: args.seed,
    };
    let study = simulate_user_study(&cfg);
    let baseline = study.test_ranks(&study.deployed, &cfg.sim);
    println!(
        "baseline (no votes): Ravg {} MRR {}\n",
        f2(mean_rank(&baseline)),
        f3(mrr(&baseline))
    );

    let mut t = Table::new(&[
        "error rate",
        "judge on: Ravg",
        "judge on: MRR",
        "judge on: discarded",
        "judge off: Ravg",
        "judge off: MRR",
    ]);
    for percent in [0usize, 10, 25, 50] {
        // Corrupt `percent`% of the votes: the "user" picks a uniformly
        // random answer from the list instead of the truth-best one.
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed ^ percent as u64);
        let corrupted: Vec<Vote> = study
            .votes
            .votes
            .iter()
            .map(|v| {
                if rng.gen_range(0..100usize) < percent {
                    let wrong = *v.answers.choose(&mut rng).expect("non-empty list");
                    Vote::new(v.query, v.answers.clone(), wrong)
                } else {
                    v.clone()
                }
            })
            .collect();
        let votes = VoteSet::from_votes(corrupted);

        let mut row = vec![format!("{percent}%")];
        for judge in [true, false] {
            let opts = MultiVoteOptions {
                judge,
                ..Default::default()
            };
            let mut g = study.deployed.clone();
            let report = solve_multi_votes(&mut g, &votes, &opts);
            let ranks = study.test_ranks(&g, &cfg.sim);
            row.push(f2(mean_rank(&ranks)));
            row.push(f3(mrr(&ranks)));
            if judge {
                row.push(format!("{}", report.discarded_votes));
            }
        }
        t.row(&row);
    }
    t.print();
    println!("\nExpected: graceful degradation with error rate; with free answer");
    println!("edges every wrong pick is *fixable*, so the judgment stays quiet and");
    println!("the sigmoid majority does the absorbing.");

    // Second regime: freeze the entity→document links (the deployment
    // where document relevance is fixed editorial metadata and only
    // entity-entity relations are tunable). Fewer, better-shared variables
    // act as a regularizer; and in principle a wrong pick whose frozen
    // links are too weak becomes *unfixable* and judgeable — though on a
    // well-connected graph the extreme condition (exclusive edges at 1.0)
    // almost always finds a winning assignment, so discards stay rare;
    // the judgment's real prey is votes for unreachable answers, which
    // this simulation never produces (see tests/failure_injection.rs).
    println!("\n-- frozen answer edges (regularized regime) --\n");
    let mut t = Table::new(&[
        "error rate",
        "judge on: Ravg",
        "judge on: discarded",
        "judge off: Ravg",
        "judge off: time",
    ]);
    for percent in [0usize, 25, 50] {
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed ^ (100 + percent as u64));
        let corrupted: Vec<Vote> = study
            .votes
            .votes
            .iter()
            .map(|v| {
                if rng.gen_range(0..100usize) < percent {
                    let wrong = *v.answers.choose(&mut rng).expect("non-empty list");
                    Vote::new(v.query, v.answers.clone(), wrong)
                } else {
                    v.clone()
                }
            })
            .collect();
        let votes = VoteSet::from_votes(corrupted);

        let mut row = vec![format!("{percent}%")];
        for judge in [true, false] {
            let mut opts = MultiVoteOptions {
                judge,
                ..Default::default()
            };
            opts.encode.freeze_answer_edges = true;
            let mut g = study.deployed.clone();
            let started = std::time::Instant::now();
            let report = solve_multi_votes(&mut g, &votes, &opts);
            let elapsed = started.elapsed();
            let ranks = study.test_ranks(&g, &cfg.sim);
            row.push(f2(mean_rank(&ranks)));
            if judge {
                row.push(format!("{}", report.discarded_votes));
            } else {
                row.push(kg_bench::table::dur(elapsed));
            }
        }
        t.row(&row);
    }
    t.print();
}
