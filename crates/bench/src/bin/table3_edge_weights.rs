//! Table III regenerator: samples of optimized edge weights.
//!
//! Runs the simulated user study, optimizes with the multi-vote solution,
//! and prints the largest weight adjustments as (head entity, tail
//! entity, original, optimized, diff) rows — the qualitative evidence the
//! paper gives that votes redistribute relevance between neighbors.
//!
//! Run: `cargo run -p kg-bench --release --bin table3_edge_weights [--scale f] [--seed u]`

use kg_bench::setups::run_user_study;
use kg_bench::{Args, Table};
use kg_graph::WeightSnapshot;

fn main() {
    let args = Args::parse(0.25);
    let _telemetry = args.telemetry_guard();
    println!(
        "Table III — samples of optimized edge weights (scale {}, seed {})\n",
        args.scale, args.seed
    );
    let outcome = run_user_study(args.scale, args.seed);
    let baseline = WeightSnapshot::capture(&outcome.study.deployed);
    let mut changes = baseline.diff(&outcome.multi_graph, 1e-6);
    changes.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));

    let g = &outcome.multi_graph;
    // Show the largest raises and the largest cuts, like the paper's mix
    // of strengthened and weakened relations.
    let raises: Vec<_> = changes.iter().filter(|&&(_, d)| d > 0.0).take(6).collect();
    let cuts: Vec<_> = changes.iter().filter(|&&(_, d)| d < 0.0).take(6).collect();
    let mut t = Table::new(&[
        "Head Entity",
        "Tail Entity",
        "Original",
        "Optimized",
        "Diff",
    ]);
    for &&(edge, diff) in raises.iter().chain(cuts.iter()) {
        let (from, to) = g.endpoints(edge);
        t.row(&[
            g.label(from).to_string(),
            g.label(to).to_string(),
            format!("{:.4}", baseline.weight(edge)),
            format!("{:.4}", g.weight(edge)),
            format!("{diff:+.4}"),
        ]);
    }
    t.print();
    println!(
        "\n{} edges adjusted in total by the multi-vote solution ({} votes, {} discarded).",
        changes.len(),
        outcome.multi_report.outcomes.len(),
        outcome.multi_report.discarded_votes,
    );
}
