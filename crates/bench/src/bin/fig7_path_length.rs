//! Fig. 7 regenerator: impact of the path-length bound `L`.
//!
//! * **(a)** `PD(L_i, L_{i+1})` — the percentage growth of the sum of
//!   top-20 similarity scores when `L` is raised — for `(2,3) … (5,6)`
//!   on the three dataset clones. Paper shape: the difference becomes
//!   negligible (< a fraction of a percent) by `L = 5`.
//! * **(b)** Elapsed time of graph optimization (encode + solve of one
//!   multi-vote batch) vs `L ∈ {2..6}`. Paper shape: super-linear growth;
//!   `L = 6` becomes impractical.
//!
//! Run: `cargo run -p kg-bench --release --bin fig7_path_length [--scale f] [--seed u]`

use kg_bench::setups::{experiment_multi_opts, vote_scenario};
use kg_bench::table::dur;
use kg_bench::{Args, Table};
use kg_datasets::{DatasetSpec, DIGG, GNUTELLA, TWITTER};
use kg_metrics::percentage_difference;
use kg_sim::topk::rank_answers;
use kg_sim::SimilarityConfig;
use kg_votes::solve_multi_votes;
use std::time::{Duration, Instant};

/// Sum of top-20 similarity scores of one query under bound `l`.
fn sum_top20(spec: &DatasetSpec, l: usize, args: &Args) -> f64 {
    let scenario = vote_scenario(spec, 1, args.scale, args.seed);
    let sim = SimilarityConfig::new(0.15, l);
    let vote = &scenario.votes.votes[0];
    rank_answers(&scenario.graph, vote.query, &vote.answers, &sim, 20)
        .iter()
        .map(|r| r.score)
        .sum()
}

fn main() {
    let args = Args::parse(0.02);
    let _telemetry = args.telemetry_guard();
    println!(
        "Fig. 7(a) — PD(L1, L2) of top-20 similarity sums (scale {}, seed {})\n",
        args.scale, args.seed
    );
    let specs = [&TWITTER, &DIGG, &GNUTELLA];
    let mut t = Table::new(&["(L1, L2)", "Twitter", "Digg", "Gnutella"]);
    for l in 2..=5usize {
        let mut cells = vec![format!("({l}, {})", l + 1)];
        for spec in specs {
            let a = sum_top20(spec, l, &args);
            let b = sum_top20(spec, l + 1, &args);
            cells.push(format!("{:.3}%", 100.0 * percentage_difference(a, b)));
        }
        t.row(&cells);
    }
    t.print();

    println!("\nFig. 7(b) — elapsed time of graph optimization vs L\n");
    let mut t = Table::new(&["L", "Twitter", "Digg", "Gnutella"]);
    let budget = Duration::from_secs(60);
    for l in 2..=6usize {
        let mut cells = vec![format!("{l}")];
        for spec in specs {
            let scenario = vote_scenario(spec, args.scaled(10, 2), args.scale, args.seed);
            let mut opts = experiment_multi_opts(budget);
            opts.encode.sim = SimilarityConfig::new(0.15, l);
            let mut g = scenario.graph.clone();
            let started = Instant::now();
            let _ = solve_multi_votes(&mut g, &scenario.votes, &opts);
            cells.push(dur(started.elapsed()));
        }
        t.row(&cells);
    }
    t.print();
    println!("\nExpected shapes: (a) PD shrinks toward zero by L = 5;");
    println!("(b) optimization time grows sharply with L (path count is O(d^L)).");
}
