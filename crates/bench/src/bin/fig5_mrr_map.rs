//! Fig. 5 regenerator: MRR and MAP of the test dataset, for the whole set
//! (Fig. 5a) and for the subset whose best answer did *not* rank first
//! under the original graph (Fig. 5b).
//!
//! Paper shape: on the whole set the single-vote solution slightly
//! *lowers* MRR/MAP while multi-vote raises them; on the non-top-1 subset
//! both solutions improve — single-vote's global regression comes from
//! degrading answers that were already ranked first (no positive votes to
//! protect them).
//!
//! Run: `cargo run -p kg-bench --release --bin fig5_mrr_map [--scale f] [--seed u]`

use kg_bench::setups::run_user_study;
use kg_bench::table::f3;
use kg_bench::{Args, Table};
use kg_metrics::{map_multi, mrr};

fn main() {
    let args = Args::parse(0.25);
    let _telemetry = args.telemetry_guard();
    println!(
        "Fig. 5 — MRR and MAP of graph optimization (scale {}, seed {})\n",
        args.scale, args.seed
    );
    let o = run_user_study(args.scale, args.seed);
    let study = &o.study;

    let original = study.test_ranks(&study.deployed, &o.sim);
    let single = study.test_ranks(&o.single_graph, &o.sim);
    let multi = study.test_ranks(&o.multi_graph, &o.sim);

    let report = |title: &str, keep: &dyn Fn(usize) -> bool| {
        println!("{title}");
        let mut t = Table::new(&["Graph", "MRR", "MAP"]);
        for (name, ranks) in [
            ("Original", &original),
            ("Single-V", &single),
            ("Multiple-V", &multi),
        ] {
            let subset: Vec<usize> = ranks
                .iter()
                .enumerate()
                .filter(|(i, _)| keep(*i))
                .map(|(_, &r)| r)
                .collect();
            let rank_lists: Vec<Vec<usize>> = subset.iter().map(|&r| vec![r]).collect();
            t.row(&[
                name.to_string(),
                f3(mrr(&subset)),
                f3(map_multi(&rank_lists)),
            ]);
        }
        t.print();
        println!();
    };

    report("(a) whole test dataset", &|_i| true);
    report(
        "(b) subset whose best answer was not rank-1 under the original graph",
        &|i| original[i] > 1,
    );
    let non_top1 = original.iter().filter(|&&r| r > 1).count();
    println!(
        "whole set: {} queries; non-top-1 subset: {non_top1} queries",
        original.len()
    );
}
