//! Deterministic load-plan generation for the network-serving bench
//! (`server_load`): Zipfian question mix, per-client think times, vote
//! bursts, and open-loop arrival schedules — all a pure function of
//! ([`LoadConfig`], seed), so the same seed replays the *identical*
//! request schedule across PRs and `BENCH_server.json` deltas compare
//! like-for-like workloads. Latencies are measured at replay time and
//! are the only non-deterministic outputs.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Knobs describing one simulated voter population.
#[derive(Debug, Clone, Serialize)]
pub struct LoadConfig {
    /// Concurrent clients (each gets its own schedule + connection).
    pub clients: usize,
    /// Events per client.
    pub requests_per_client: usize,
    /// Distinct questions in the workload; events pick one Zipfianly.
    pub questions: usize,
    /// Zipf exponent over questions (1.0–1.3 is web-like skew).
    pub zipf_s: f64,
    /// Long-run fraction of events that are votes.
    pub vote_fraction: f64,
    /// Votes arrive in bursts of this length (a voter who engages
    /// tends to vote several times in a row).
    pub vote_burst: usize,
    /// Mean think time between a client's events, exponentially
    /// distributed (closed-loop pacing).
    pub mean_think_us: u64,
    /// Aggregate target arrival rate for the open-loop schedule.
    pub open_rate_rps: f64,
    /// RNG seed: same seed, same schedule, byte for byte.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 16,
            requests_per_client: 50,
            questions: 16,
            zipf_s: 1.1,
            vote_fraction: 0.15,
            vote_burst: 4,
            mean_think_us: 500,
            open_rate_rps: 2000.0,
            seed: 42,
        }
    }
}

/// What one event does when replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EventKind {
    /// Rank the question's answer list.
    Rank,
    /// Vote for the answer at `best_pos % answers.len()` of the
    /// question's list (position drawn at plan time so the schedule
    /// does not depend on live responses).
    Vote {
        /// Plan-time draw; replay maps it into the answer list.
        best_pos: usize,
    },
}

/// One scheduled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Event {
    /// Workload question index (the harness maps it to node ids).
    pub question: usize,
    /// What this event does.
    pub kind: EventKind,
    /// Closed loop: delay before *this* event fires (after the
    /// previous response).
    pub think_ns: u64,
    /// Open loop: absolute send offset from run start.
    pub arrival_ns: u64,
}

/// One client's full schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ClientPlan {
    /// The client's events, in send order.
    pub events: Vec<Event>,
}

/// Deterministic workload counts — everything about the schedule that
/// is comparable across runs (latencies are not part of the plan).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PlanSummary {
    /// Scheduled rank requests.
    pub ranks: u64,
    /// Scheduled vote requests.
    pub votes: u64,
    /// Vote bursts started.
    pub vote_bursts: u64,
    /// Events per question (the realized Zipf histogram).
    pub per_question: Vec<u64>,
}

/// A full deterministic schedule for one run mode.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LoadPlan {
    /// One schedule per client.
    pub clients: Vec<ClientPlan>,
    /// Deterministic workload counts.
    pub summary: PlanSummary,
}

impl LoadPlan {
    /// Generates the schedule. Pure: no clocks, no global state.
    pub fn generate(cfg: &LoadConfig) -> LoadPlan {
        assert!(cfg.clients > 0, "need at least one client");
        assert!(cfg.questions > 0, "need at least one question");
        assert!(
            (0.0..=1.0).contains(&cfg.vote_fraction),
            "vote_fraction must be in [0, 1]"
        );
        let zipf = Zipf::new(cfg.questions, cfg.zipf_s);
        let burst = cfg.vote_burst.max(1);
        // A burst of `burst` votes starts with probability
        // vote_fraction / burst per event, keeping the long-run vote
        // fraction at vote_fraction.
        let burst_start_p = (cfg.vote_fraction / burst as f64).min(1.0);
        let per_client_rate = (cfg.open_rate_rps / cfg.clients as f64).max(1e-6);

        let mut clients = Vec::with_capacity(cfg.clients);
        let mut summary = PlanSummary {
            ranks: 0,
            votes: 0,
            vote_bursts: 0,
            per_question: vec![0; cfg.questions],
        };
        for client in 0..cfg.clients {
            // Per-client stream: client c's schedule is independent of
            // how many other clients exist before it in the loop.
            let mut rng = ChaCha8Rng::seed_from_u64(
                cfg.seed ^ (client as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let mut events = Vec::with_capacity(cfg.requests_per_client);
            let mut burst_left = 0usize;
            let mut arrival_ns = 0u64;
            for _ in 0..cfg.requests_per_client {
                let question = zipf.sample(&mut rng);
                summary.per_question[question] += 1;
                let kind = if burst_left > 0 {
                    burst_left -= 1;
                    summary.votes += 1;
                    EventKind::Vote {
                        best_pos: rng.gen_range(0..64usize),
                    }
                } else if rng.gen_bool(burst_start_p) {
                    summary.vote_bursts += 1;
                    summary.votes += 1;
                    burst_left = burst - 1;
                    EventKind::Vote {
                        best_pos: rng.gen_range(0..64usize),
                    }
                } else {
                    summary.ranks += 1;
                    EventKind::Rank
                };
                let think_ns = exponential_ns(&mut rng, cfg.mean_think_us.saturating_mul(1000));
                arrival_ns = arrival_ns
                    .saturating_add(exponential_ns(&mut rng, (1e9 / per_client_rate) as u64));
                events.push(Event {
                    question,
                    kind,
                    think_ns,
                    arrival_ns,
                });
            }
            clients.push(ClientPlan { events });
        }
        LoadPlan { clients, summary }
    }

    /// Total events across all clients.
    pub fn total_events(&self) -> u64 {
        self.summary.ranks + self.summary.votes
    }
}

/// One exponential draw with the given mean (in ns), from 53 uniform
/// bits. Mean 0 yields 0 (disables pacing deterministically).
fn exponential_ns(rng: &mut ChaCha8Rng, mean_ns: u64) -> u64 {
    if mean_ns == 0 {
        return 0;
    }
    let u: f64 = rng.gen();
    // -ln(1-u) has mean 1; clamp the tail so one unlucky draw cannot
    // stall a client for minutes.
    let x = -(1.0 - u).ln();
    ((mean_ns as f64) * x.min(8.0)) as u64
}

/// Zipfian sampler over `0..n` with exponent `s`: precomputed CDF +
/// binary search (the compat `rand` stub has no Zipf distribution).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precomputes the CDF for ranks `1..=n` with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one question index in `0..n`.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule_and_summary() {
        let cfg = LoadConfig {
            clients: 7,
            requests_per_client: 120,
            questions: 11,
            ..LoadConfig::default()
        };
        let a = LoadPlan::generate(&cfg);
        let b = LoadPlan::generate(&cfg);
        assert_eq!(a, b, "schedule must be a pure function of the config");
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = LoadConfig::default();
        let a = LoadPlan::generate(&cfg);
        let b = LoadPlan::generate(&LoadConfig { seed: 43, ..cfg });
        assert_ne!(a, b, "seed must actually steer the schedule");
    }

    #[test]
    fn summary_counts_match_events() {
        let cfg = LoadConfig {
            clients: 5,
            requests_per_client: 200,
            vote_fraction: 0.3,
            ..LoadConfig::default()
        };
        let plan = LoadPlan::generate(&cfg);
        let mut ranks = 0u64;
        let mut votes = 0u64;
        let mut per_question = vec![0u64; cfg.questions];
        for client in &plan.clients {
            assert_eq!(client.events.len(), cfg.requests_per_client);
            for e in &client.events {
                per_question[e.question] += 1;
                match e.kind {
                    EventKind::Rank => ranks += 1,
                    EventKind::Vote { .. } => votes += 1,
                }
            }
        }
        assert_eq!(ranks, plan.summary.ranks);
        assert_eq!(votes, plan.summary.votes);
        assert_eq!(per_question, plan.summary.per_question);
        assert_eq!(plan.total_events(), (5 * 200) as u64);
    }

    #[test]
    fn zipf_is_head_heavy_and_in_range() {
        let zipf = Zipf::new(50, 1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = vec![0u64; 50];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[10] && counts[10] > counts[40],
            "zipf head must dominate the tail: {counts:?}"
        );
    }

    #[test]
    fn open_loop_arrivals_are_monotone_and_rate_shaped() {
        let cfg = LoadConfig {
            clients: 4,
            requests_per_client: 400,
            open_rate_rps: 4000.0,
            ..LoadConfig::default()
        };
        let plan = LoadPlan::generate(&cfg);
        for client in &plan.clients {
            for pair in client.events.windows(2) {
                assert!(pair[0].arrival_ns <= pair[1].arrival_ns);
            }
            let last = client.events.last().unwrap().arrival_ns as f64 / 1e9;
            // 400 events at 1000/s per client: ~0.4 s, allow wide slack.
            assert!(
                (0.1..2.0).contains(&last),
                "arrival horizon {last}s is far from the configured rate"
            );
        }
    }

    #[test]
    fn vote_bursts_cluster() {
        let cfg = LoadConfig {
            clients: 1,
            requests_per_client: 2000,
            vote_fraction: 0.2,
            vote_burst: 5,
            ..LoadConfig::default()
        };
        let plan = LoadPlan::generate(&cfg);
        // With bursts of 5, a vote's successor is a vote far more often
        // than the base vote rate would predict.
        let events = &plan.clients[0].events;
        let mut vote_then_vote = 0u64;
        let mut vote_then_any = 0u64;
        for pair in events.windows(2) {
            if matches!(pair[0].kind, EventKind::Vote { .. }) {
                vote_then_any += 1;
                if matches!(pair[1].kind, EventKind::Vote { .. }) {
                    vote_then_vote += 1;
                }
            }
        }
        assert!(vote_then_any > 0);
        let cluster_rate = vote_then_vote as f64 / vote_then_any as f64;
        assert!(
            cluster_rate > 0.5,
            "votes should cluster in bursts (P(vote|vote) = {cluster_rate:.2})"
        );
        // And the long-run vote fraction stays near the configured one.
        let frac = plan.summary.votes as f64 / plan.total_events() as f64;
        assert!(
            (0.1..0.35).contains(&frac),
            "long-run vote fraction {frac:.3} drifted from 0.2"
        );
    }
}
