//! Common experiment setups shared by the table/figure binaries and the
//! criterion benches.

use kg_cluster::SplitMergeOptions;
use kg_datasets::{generate_votes, synthesize, DatasetSpec, SyntheticVotes, VoteGenConfig};
use kg_graph::KnowledgeGraph;
use kg_sim::SimilarityConfig;
use kg_votes::{MultiVoteOptions, SingleVoteOptions, VoteSet};
use sgp::SolveOptions;
use std::time::Duration;

/// A ready-to-optimize workload: an augmented graph plus a vote batch.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Dataset name.
    pub name: String,
    /// The augmented graph (entities + synthetic queries/answers).
    pub graph: KnowledgeGraph,
    /// The vote batch.
    pub votes: VoteSet,
}

/// Builds the Section VII-A workload for one dataset at the given scale:
/// a dataset clone plus `n_votes` synthetic votes (the paper's protocol,
/// all counts scaled).
pub fn vote_scenario(spec: &DatasetSpec, n_votes: usize, scale: f64, seed: u64) -> Scenario {
    let base = synthesize(spec, scale, seed);
    let scaled = |full: usize, min: usize| ((full as f64 * scale).round() as usize).max(min);
    let cfg = VoteGenConfig {
        // Generate extra queries so we can keep exactly n_votes usable votes.
        n_queries: (n_votes * 2).max(8),
        n_answers: scaled(2_379, 30),
        subgraph_nodes: scaled(10_000, 50),
        link_degree: 4,
        top_k: 20,
        target_best_rank: 10,
        positive_fraction: 0.5,
        sim: SimilarityConfig::default(),
        seed,
    };
    let SyntheticVotes {
        graph, mut votes, ..
    } = generate_votes(&base, &cfg);
    votes.votes.truncate(n_votes);
    Scenario {
        name: spec.name.to_string(),
        graph,
        votes,
    }
}

/// Solver options tuned for batch experiments: the `fast` profile plus a
/// wall-clock budget so the deliberately-unscalable baselines terminate.
pub fn experiment_solve_opts(budget: Duration) -> SolveOptions {
    SolveOptions {
        time_budget: Some(budget),
        ..SolveOptions::fast()
    }
}

/// Multi-vote pipeline options for experiments.
pub fn experiment_multi_opts(budget: Duration) -> MultiVoteOptions {
    MultiVoteOptions {
        solve: experiment_solve_opts(budget),
        ..Default::default()
    }
}

/// Single-vote pipeline options for experiments.
pub fn experiment_single_opts(budget: Duration) -> SingleVoteOptions {
    SingleVoteOptions {
        solve: experiment_solve_opts(budget),
        ..Default::default()
    }
}

/// Split-and-merge pipeline options for experiments.
pub fn experiment_split_merge_opts(budget: Duration, workers: usize) -> SplitMergeOptions {
    SplitMergeOptions {
        multi: experiment_multi_opts(budget),
        workers,
        ..Default::default()
    }
}

/// A completed user-study optimization: the study itself plus the graphs
/// optimized by each solution — the shared substrate of Tables III–V and
/// Fig. 5.
#[derive(Debug, Clone)]
pub struct StudyOutcome {
    /// The simulated study (truth + deployed graphs, votes, test set).
    pub study: kg_datasets::UserStudy,
    /// Deployed graph after the single-vote solution.
    pub single_graph: KnowledgeGraph,
    /// Report of the single-vote run.
    pub single_report: kg_votes::OptimizationReport,
    /// Deployed graph after the multi-vote solution.
    pub multi_graph: KnowledgeGraph,
    /// Report of the multi-vote run.
    pub multi_report: kg_votes::OptimizationReport,
    /// Similarity configuration used throughout.
    pub sim: SimilarityConfig,
}

/// Runs the simulated user study at the given scale and optimizes the
/// deployed graph with both solutions (λ1 = λ2 = 0.5, per Section VII-B).
pub fn run_user_study(scale: f64, seed: u64) -> StudyOutcome {
    let scaled = |full: usize, min: usize| ((full as f64 * scale).round() as usize).max(min);
    let cfg = kg_datasets::UserStudyConfig {
        entities: scaled(1_663, 60),
        edges: scaled(17_591, 400),
        n_docs: scaled(2_379, 40),
        n_votes: scaled(100, 12),
        n_test: scaled(100, 12),
        top_k: 10,
        link_degree: 4,
        noise: 0.6,
        corrupt_fraction: 0.2,
        test_overlap: 0.9,
        sim: SimilarityConfig::default(),
        seed,
    };
    let study = kg_datasets::simulate_user_study(&cfg);
    let budget = Duration::from_secs(120);

    let mut single_graph = study.deployed.clone();
    let single_report = kg_votes::solve_single_votes(
        &mut single_graph,
        &study.votes,
        &experiment_single_opts(budget),
    );

    let mut multi_graph = study.deployed.clone();
    let multi_report = kg_votes::solve_multi_votes(
        &mut multi_graph,
        &study.votes,
        &experiment_multi_opts(budget),
    );

    StudyOutcome {
        study,
        single_graph,
        single_report,
        multi_graph,
        multi_report,
        sim: cfg.sim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_datasets::TWITTER;

    #[test]
    fn scenario_produces_requested_votes() {
        let s = vote_scenario(&TWITTER, 6, 0.01, 1);
        assert_eq!(s.name, "Twitter");
        assert!(s.votes.len() <= 6);
        assert!(!s.votes.is_empty(), "expected at least one usable vote");
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = vote_scenario(&TWITTER, 5, 0.01, 3);
        let b = vote_scenario(&TWITTER, 5, 0.01, 3);
        assert_eq!(a.votes, b.votes);
    }

    #[test]
    fn experiment_options_carry_budget() {
        let o = experiment_solve_opts(Duration::from_secs(5));
        assert_eq!(o.time_budget, Some(Duration::from_secs(5)));
        let m = experiment_multi_opts(Duration::from_secs(5));
        assert_eq!(m.solve.time_budget, Some(Duration::from_secs(5)));
        let s = experiment_split_merge_opts(Duration::from_secs(5), 4);
        assert_eq!(s.workers, 4);
    }
}
