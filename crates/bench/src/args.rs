//! Minimal command-line flag parsing for the experiment binaries (no
//! external CLI crate needed for `--scale`-style flags).

/// Format of the `--telemetry` phase-latency dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryFormat {
    /// The registry snapshot as JSON.
    Json,
    /// Prometheus text exposition format.
    Prom,
}

/// Parsed common flags.
#[derive(Debug, Clone)]
pub struct Args {
    /// Dataset / workload scale in `(0, 1]`.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// `--telemetry json|prom`: collect `votekg.*` metrics during the
    /// run and dump phase latencies to stderr at exit.
    pub telemetry: Option<TelemetryFormat>,
    /// Leftover positional / unknown arguments, for per-binary flags.
    pub rest: Vec<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 0.05,
            seed: 42,
            telemetry: None,
            rest: Vec::new(),
        }
    }
}

/// Enables telemetry for the duration of a run; on drop, dumps the
/// collected metrics (phase spans, solver counters) to stderr — stdout
/// stays clean for the experiment tables.
pub struct TelemetryGuard {
    format: Option<TelemetryFormat>,
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        match self.format {
            None => {}
            Some(TelemetryFormat::Json) => eprintln!("{}", kg_telemetry::export_json()),
            Some(TelemetryFormat::Prom) => eprintln!("{}", kg_telemetry::export_prometheus()),
        }
    }
}

impl Args {
    /// Parses `std::env::args`, with `default_scale` as the binary's
    /// quick-profile scale.
    pub fn parse(default_scale: f64) -> Args {
        Self::from_iter(std::env::args().skip(1), default_scale)
    }

    /// Parses an explicit argument list (testable).
    pub fn from_iter(args: impl IntoIterator<Item = String>, default_scale: f64) -> Args {
        let mut out = Args {
            scale: default_scale,
            ..Default::default()
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| panic!("--scale requires a value"));
                    out.scale = v
                        .parse()
                        .unwrap_or_else(|_| panic!("invalid --scale value {v:?}"));
                    assert!(
                        out.scale > 0.0 && out.scale <= 1.0,
                        "--scale must be in (0, 1]"
                    );
                }
                "--seed" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| panic!("--seed requires a value"));
                    out.seed = v
                        .parse()
                        .unwrap_or_else(|_| panic!("invalid --seed value {v:?}"));
                }
                "--telemetry" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| panic!("--telemetry requires a value"));
                    out.telemetry = match v.as_str() {
                        "off" => None,
                        "json" => Some(TelemetryFormat::Json),
                        "prom" | "prometheus" => Some(TelemetryFormat::Prom),
                        _ => panic!("invalid --telemetry value {v:?} (expected json | prom | off)"),
                    };
                }
                other => out.rest.push(other.to_string()),
            }
        }
        out
    }

    /// True when the given per-binary flag appears in the leftovers.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    /// Starts telemetry collection when `--telemetry` was passed; the
    /// returned guard dumps phase latencies to stderr when it goes out of
    /// scope. Call once at the top of `main` and keep the guard alive.
    pub fn telemetry_guard(&self) -> TelemetryGuard {
        if self.telemetry.is_some() {
            kg_telemetry::reset();
            kg_telemetry::enable();
        }
        TelemetryGuard {
            format: self.telemetry,
        }
    }

    /// Scales an integer quantity, keeping at least `min`.
    pub fn scaled(&self, full: usize, min: usize) -> usize {
        ((full as f64 * self.scale).round() as usize).max(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::from_iter(list.iter().map(|s| s.to_string()), 0.1)
    }

    #[test]
    fn defaults_apply() {
        let a = args(&[]);
        assert_eq!(a.scale, 0.1);
        assert_eq!(a.seed, 42);
        assert!(a.rest.is_empty());
    }

    #[test]
    fn parses_scale_and_seed() {
        let a = args(&["--scale", "0.5", "--seed", "7"]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn collects_unknown_flags() {
        let a = args(&["--time", "--scale", "1.0"]);
        assert!(a.has_flag("--time"));
        assert!(!a.has_flag("--omega"));
    }

    #[test]
    fn scaled_respects_minimum() {
        let a = args(&["--scale", "0.01"]);
        assert_eq!(a.scaled(100, 5), 5);
        assert_eq!(a.scaled(10_000, 5), 100);
    }

    #[test]
    #[should_panic(expected = "--scale must be in")]
    fn rejects_out_of_range_scale() {
        args(&["--scale", "2.0"]);
    }
}
