//! Plain-text aligned table printing for experiment output.

/// A simple column-aligned table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a duration in adaptive units.
pub fn dur(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-3 {
        format!("{:.0}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "22222".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        // Columns align: "value" column starts at same offset in all rows.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_wrong_width() {
        Table::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(dur(Duration::from_micros(50)), "50us");
        assert_eq!(dur(Duration::from_millis(20)), "20.0ms");
        assert_eq!(dur(Duration::from_secs(2)), "2.00s");
        assert_eq!(dur(Duration::from_secs(300)), "5.0min");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(f3(1.23456), "1.235");
    }
}
