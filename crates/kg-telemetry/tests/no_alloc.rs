//! Asserts the telemetry hot paths are allocation-free.
//!
//! Two regimes are covered: with telemetry *off*, requesting handles and
//! updating them must not allocate (and by construction cannot lock —
//! the registry mutex is only reached after the `is_enabled` check
//! passes); with telemetry *on and recording*, the warm event path —
//! field-less spans, instants, and counter increments, all of which
//! write flight-recorder ring events — must not allocate either, since
//! every ring slot is preallocated fixed-size atomics.
//!
//! This lives in its own integration-test binary so the counting global
//! allocator does not interfere with other tests.

//! Both regimes run inside one `#[test]` function (the enable flag is
//! process-global, so two tests would need serialization anyway), and
//! allocations are counted only while the measuring thread opts in —
//! the libtest harness allocates on its own threads concurrently and
//! must not pollute the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Const-init Cell<bool>: no lazy initializer and no destructor, so
    // reading it from inside `alloc` cannot itself allocate or recurse.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = COUNTING.try_with(|counting| {
            if counting.get() {
                ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
            }
        });
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with this thread's allocations counted, returning how many
/// occurred inside it.
fn counted(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|counting| counting.set(true));
    f();
    COUNTING.with(|counting| counting.set(false));
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn hot_paths_do_not_allocate() {
    enabled_recording_warm_path();
    disabled_hot_path();
}

fn enabled_recording_warm_path() {
    kg_telemetry::enable();
    kg_telemetry::start_recording();

    // Warm up: claim this thread's recorder ring, populate the span
    // stack's capacity, claim the counter's table cell, and touch the
    // monotonic epoch.
    let counter = kg_telemetry::counter("votekg.test.warm_counter");
    counter.incr();
    kg_telemetry::instant("votekg.test.warm_instant");
    {
        let _span = kg_telemetry::span!("votekg.test.warm_span");
    }

    let allocations = counted(|| {
        for _ in 0..10_000 {
            // Field-less span: begin + end ring events, stats-table update.
            let _span = kg_telemetry::span!("votekg.test.warm_span");
            // Hoisted counter handle: atomic add + counter-delta ring event.
            counter.add(3);
            // Fresh unlabeled lookup resolves through the lock-free table.
            kg_telemetry::counter("votekg.test.warm_counter").incr();
            // Point-in-time marker.
            kg_telemetry::instant("votekg.test.warm_instant");
        }
    });
    assert_eq!(
        allocations, 0,
        "enabled+recording warm event path must not allocate"
    );

    kg_telemetry::stop_recording();
    kg_telemetry::disable();
    kg_telemetry::reset();
}

fn disabled_hot_path() {
    kg_telemetry::disable();

    // Warm up lazy statics unrelated to the disabled path (thread-locals
    // for the current thread, etc.).
    kg_telemetry::counter("votekg.test.warmup").incr();
    {
        let _span = kg_telemetry::span!("votekg.test.warmup", { n: 1u64 });
    }

    let allocations = counted(|| {
        for _ in 0..10_000 {
            let counter = kg_telemetry::counter("votekg.test.hot");
            counter.add(1);
            let gauge = kg_telemetry::gauge("votekg.test.hot_gauge");
            gauge.set(1.5);
            let histogram = kg_telemetry::histogram("votekg.test.hot_hist");
            histogram.record(42);
            let mut span = kg_telemetry::span!("votekg.test.hot_span", { iter: 7u64 });
            span.field("late", 9u64);
        }
    });
    assert_eq!(allocations, 0, "disabled telemetry path must not allocate");
}
