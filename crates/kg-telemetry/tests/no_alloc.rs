//! Asserts the disabled hot path is allocation-free: with telemetry off,
//! requesting handles and updating them must not allocate (and by
//! construction cannot lock — the registry mutex is only reached after
//! the `is_enabled` check passes).
//!
//! This lives in its own integration-test binary so the counting global
//! allocator does not interfere with other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_hot_path_does_not_allocate() {
    kg_telemetry::disable();

    // Warm up lazy statics unrelated to the disabled path (thread-locals
    // for the current thread, etc.).
    kg_telemetry::counter("votekg.test.warmup").incr();
    {
        let _span = kg_telemetry::span!("votekg.test.warmup", { n: 1u64 });
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10_000 {
        let counter = kg_telemetry::counter("votekg.test.hot");
        counter.add(1);
        let gauge = kg_telemetry::gauge("votekg.test.hot_gauge");
        gauge.set(1.5);
        let histogram = kg_telemetry::histogram("votekg.test.hot_hist");
        histogram.record(42);
        let mut span = kg_telemetry::span!("votekg.test.hot_span", { iter: 7u64 });
        span.field("late", 9u64);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled telemetry path must not allocate"
    );
}
