//! Integration tests over the public kg-telemetry API: concurrent
//! counter safety, histogram bucket boundaries, span nesting, collector
//! delivery, and exporter output (including Prometheus label escaping).
//!
//! Telemetry state is process-global, so every test goes through the
//! same serializing lock to keep enable/reset calls from interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::thread;

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn fresh() -> MutexGuard<'static, ()> {
    let guard = serialize();
    kg_telemetry::enable();
    kg_telemetry::reset();
    kg_telemetry::set_collector(None);
    guard
}

#[test]
fn concurrent_counter_increments_lose_no_updates() {
    let _guard = fresh();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            thread::spawn(|| {
                let counter = kg_telemetry::counter("votekg.test.concurrent");
                for _ in 0..PER_THREAD {
                    counter.incr();
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let counter = kg_telemetry::counter("votekg.test.concurrent");
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    kg_telemetry::disable();
}

#[test]
fn histogram_buckets_exact_at_powers_of_two() {
    let _guard = fresh();
    let histogram = kg_telemetry::histogram("votekg.test.pow2");
    // 2^k must land in the bucket whose lower bound is 2^k, while
    // 2^k - 1 lands in the bucket below.
    for k in [1u32, 4, 10, 33] {
        histogram.record(1u64 << k);
        histogram.record((1u64 << k) - 1);
    }
    histogram.record(0);

    let buckets = histogram.buckets();
    for k in [1u32, 4, 10, 33] {
        let power = 1u64 << k;
        let at = buckets.iter().find(|(lo, _)| *lo == power);
        assert_eq!(at, Some(&(power, 1)), "2^{k} must start its own bucket");
        let below = buckets
            .iter()
            .find(|(lo, _)| *lo < power && power <= 2 * *lo);
        assert!(
            below.is_some_and(|(_, n)| *n >= 1),
            "2^{k}-1 must fall in the preceding bucket"
        );
    }
    assert!(buckets.contains(&(0, 1)), "zero gets its own bucket");
    assert_eq!(histogram.count(), 9);
    kg_telemetry::disable();
}

#[test]
fn spans_nest_and_aggregate() {
    let _guard = fresh();
    {
        let _outer = kg_telemetry::span!("votekg.test.outer");
        for i in 0..3u64 {
            let _inner = kg_telemetry::span!("votekg.test.inner", { index: i });
        }
    }
    let recent = kg_telemetry::recent_spans();
    assert_eq!(recent.len(), 4);
    let inner: Vec<_> = recent
        .iter()
        .filter(|s| s.name == "votekg.test.inner")
        .collect();
    assert_eq!(inner.len(), 3);
    for span in &inner {
        assert_eq!(span.depth, 1);
        assert_eq!(span.path, "votekg.test.outer.votekg.test.inner");
    }
    let outer = recent
        .iter()
        .find(|s| s.name == "votekg.test.outer")
        .unwrap();
    assert_eq!(outer.depth, 0);
    // Inner spans finish before the outer one, so the ring is ordered
    // inner, inner, inner, outer.
    assert_eq!(recent.last().unwrap().name, "votekg.test.outer");
    assert!(outer.duration >= inner.iter().map(|s| s.duration).sum());

    let json = kg_telemetry::export_json();
    assert!(json.contains("\"votekg.test.inner\": {\"count\": 3"));
    kg_telemetry::disable();
}

#[test]
fn collector_receives_spans_and_events() {
    let _guard = fresh();

    #[derive(Default)]
    struct Recording {
        spans: AtomicUsize,
        events: Mutex<Vec<(kg_telemetry::Level, String, String)>>,
    }
    impl kg_telemetry::Collector for Recording {
        fn on_span(&self, _record: &kg_telemetry::SpanRecord) {
            self.spans.fetch_add(1, Ordering::SeqCst);
        }
        fn on_event(&self, level: kg_telemetry::Level, target: &str, message: &str) {
            self.events
                .lock()
                .unwrap()
                .push((level, target.to_string(), message.to_string()));
        }
    }

    let recording = Arc::new(Recording::default());
    kg_telemetry::set_collector(Some(recording.clone()));
    {
        let _span = kg_telemetry::span!("votekg.test.collected");
    }
    kg_telemetry::tevent!(kg_telemetry::Level::Info, "votekg.test", "round {} done", 2);
    assert_eq!(recording.spans.load(Ordering::SeqCst), 1);
    let events = recording.events.lock().unwrap();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].0, kg_telemetry::Level::Info);
    assert_eq!(events[0].2, "round 2 done");
    drop(events);
    kg_telemetry::set_collector(None);
    kg_telemetry::disable();
}

#[test]
fn prometheus_export_escapes_label_values() {
    let _guard = fresh();
    kg_telemetry::counter_labeled(
        "votekg.test.escape",
        &[("reason", "quote\" backslash\\ newline\n")],
    )
    .add(3);

    let prom = kg_telemetry::export_prometheus();
    assert!(
        prom.contains("votekg_test_escape_total{reason=\"quote\\\" backslash\\\\ newline\\n\"} 3"),
        "unexpected prometheus output: {prom}"
    );
    kg_telemetry::disable();
}

#[test]
fn prometheus_histogram_is_cumulative() {
    let _guard = fresh();
    let histogram = kg_telemetry::histogram("votekg.test.cumulative");
    histogram.record(1); // bucket [1,2)
    histogram.record(2); // bucket [2,4)
    histogram.record(3); // bucket [2,4)

    let prom = kg_telemetry::export_prometheus();
    assert!(prom.contains("votekg_test_cumulative_bucket{le=\"1\"} 1\n"));
    assert!(prom.contains("votekg_test_cumulative_bucket{le=\"3\"} 3\n"));
    assert!(prom.contains("votekg_test_cumulative_bucket{le=\"+Inf\"} 3\n"));
    assert!(prom.contains("votekg_test_cumulative_sum 6\n"));
    assert!(prom.contains("votekg_test_cumulative_count 3\n"));
    kg_telemetry::disable();
}

#[test]
fn json_export_is_valid_shape() {
    let _guard = fresh();
    kg_telemetry::counter("votekg.test.json").add(11);
    kg_telemetry::gauge("votekg.test.json_gauge").set(2.25);
    {
        let _span = kg_telemetry::span!("votekg.test.json_span", { kind: "unit" });
    }
    let json = kg_telemetry::export_json();
    assert!(json.contains("\"votekg.test.json\": 11"));
    assert!(json.contains("\"votekg.test.json_gauge\": 2.25"));
    assert!(json.contains("\"kind\": \"unit\""));
    for section in ["counters", "gauges", "histograms", "spans", "recent_spans"] {
        assert!(
            json.contains(&format!("\"{section}\"")),
            "missing {section}"
        );
    }
    kg_telemetry::disable();
}
