//! Races N writer threads against a snapshotting reader and checks the
//! flight recorder's seqlock guarantees: snapshots never contain torn
//! or duplicated events, per-thread event order is preserved, and ring
//! overwrite loss is bounded and fully accounted for in the
//! `votekg.telemetry.dropped_events` counter.
//!
//! Lives in its own test binary so no other test's events land in the
//! recorder rings while the accounting assertions run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use kg_telemetry::{CapturedEvent, EventKind, Snapshot, ThreadTimeline, RING_CAP};

const WRITERS: u64 = 4;
const ITERS: u64 = 2_000;
const SPAN_NAME: &str = "votekg.test.race";

/// Extracts `(iter, check)` from one of this test's span-end events.
fn race_payload(event: &CapturedEvent) -> Option<(u64, u64)> {
    if event.kind != EventKind::SpanEnd || event.name != SPAN_NAME {
        return None;
    }
    let field = |key: &str| {
        event.fields.iter().find_map(|(k, v)| {
            (*k == key).then(|| match v {
                kg_telemetry::FieldValue::U64(n) => *n,
                other => panic!("unexpected field value {other:?}"),
            })
        })
    };
    Some((
        field("iter").expect("race span missing iter"),
        field("check").expect("race span missing check"),
    ))
}

/// Validates one snapshot of one ring: monotone sequence numbers (no
/// duplicates), payloads self-consistent (no torn events), and this
/// test's events in issue order with a single writer seed per ring.
fn validate_timeline(timeline: &ThreadTimeline) {
    let mut last_seq: Option<u64> = None;
    let mut last_iter: Option<u64> = None;
    let mut seed: Option<u64> = None;
    for event in &timeline.events {
        if let Some(prev) = last_seq {
            assert!(
                event.seq > prev,
                "thread {} snapshot has non-monotone seq {} after {prev}",
                timeline.thread,
                event.seq
            );
        }
        last_seq = Some(event.seq);
        let Some((iter, check)) = race_payload(event) else {
            continue;
        };
        // A torn slot would mix two writes; `check` binding the iter and
        // the per-writer seed into one value catches any such mix.
        let event_seed = check
            .checked_sub(iter.wrapping_mul(3))
            .unwrap_or_else(|| panic!("torn event: iter={iter} check={check}"));
        assert!(
            event_seed < WRITERS,
            "torn event: seed {event_seed} out of range (iter={iter} check={check})"
        );
        match seed {
            None => seed = Some(event_seed),
            Some(s) => assert_eq!(s, event_seed, "two writers' events in one ring"),
        }
        if let Some(prev) = last_iter {
            assert!(
                iter > prev,
                "per-thread order lost: iter {iter} after {prev}"
            );
        }
        last_iter = Some(iter);
    }
}

#[test]
fn writers_race_snapshotting_reader_without_tearing() {
    kg_telemetry::enable();
    kg_telemetry::start_recording();

    let running = Arc::new(AtomicBool::new(true));
    let reader = {
        let running = Arc::clone(&running);
        std::thread::spawn(move || {
            let mut snapshots = 0u64;
            while running.load(Ordering::Relaxed) {
                for timeline in kg_telemetry::capture_timelines() {
                    validate_timeline(&timeline);
                }
                snapshots += 1;
            }
            snapshots
        })
    };

    let write_span = |iter: u64, seed: u64| {
        let mut span = kg_telemetry::span!(SPAN_NAME);
        span.field("iter", iter);
        span.field("check", iter * 3 + seed);
    };
    // Each writer claims its recorder ring (first event) before the
    // barrier, so no writer can finish, retire its ring, and have a
    // slow starter reclaim-and-wipe it mid-test.
    let barrier = Arc::new(Barrier::new(WRITERS as usize));
    let writers: Vec<_> = (0..WRITERS)
        .map(|seed| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                write_span(0, seed);
                barrier.wait();
                for iter in 1..ITERS {
                    write_span(iter, seed);
                }
            })
        })
        .collect();
    for writer in writers {
        writer.join().unwrap();
    }
    running.store(false, Ordering::Relaxed);
    let snapshots = reader.join().unwrap();
    assert!(snapshots > 0, "reader never snapshotted");

    // Quiescent accounting: every ring that held this test's events
    // belongs to exactly one writer; each writer issued 2 * ITERS ring
    // events (begin + end per span). Retained + dropped must cover them
    // all, and loss is bounded by the ring capacity.
    let timelines = kg_telemetry::capture_timelines();
    let race_rings: Vec<_> = timelines
        .iter()
        .filter(|t| t.events.iter().any(|e| e.name == SPAN_NAME))
        .collect();
    assert_eq!(race_rings.len() as u64, WRITERS);
    let mut per_seed: HashMap<u64, u64> = HashMap::new();
    for timeline in &race_rings {
        validate_timeline(timeline);
        assert!(timeline.events.len() as u64 <= RING_CAP as u64);
        assert_eq!(
            timeline.events.len() as u64 + timeline.dropped,
            2 * ITERS,
            "retained + dropped must account for every event written"
        );
        let seed = timeline
            .events
            .iter()
            .find_map(race_payload)
            .map(|(iter, check)| check - iter * 3)
            .expect("ring retained no race payload");
        *per_seed.entry(seed).or_insert(0) += 1;
    }
    assert_eq!(per_seed.len() as u64, WRITERS, "a writer's ring is missing");
    assert!(per_seed.values().all(|&rings| rings == 1));

    // The loss shows up, fully counted, in the exported counter.
    let total_dropped: u64 = timelines.iter().map(|t| t.dropped).sum();
    assert_eq!(kg_telemetry::dropped_events(), total_dropped);
    assert!(total_dropped > 0, "test never overwrote; raise ITERS");
    let snapshot = Snapshot::capture();
    let exported = snapshot
        .counters
        .iter()
        .find(|(name, _)| name == "votekg.telemetry.dropped_events")
        .map(|(_, value)| *value);
    assert_eq!(exported, Some(total_dropped));

    kg_telemetry::stop_recording();
    kg_telemetry::disable();
    kg_telemetry::reset();
}
