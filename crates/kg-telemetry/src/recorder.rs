//! The flight recorder: per-thread lock-free ring buffers of fixed-size
//! structured events, plus the lock-free aggregation tables the hot path
//! writes into.
//!
//! # Design
//!
//! Every thread that records an event owns (at most) one [`Ring`]: a
//! fixed-capacity array of seqlock-guarded slots written only by the
//! owning thread and readable by any snapshotting thread without
//! stopping the writer. A slot is entirely atomic words; the writer
//! publishes an event by storing an odd sequence number, the payload,
//! then the even sequence number (both with `Release`), and a reader
//! accepts the slot only when it observes the same even sequence number
//! before *and* after copying the payload — torn events are rejected,
//! never surfaced. Because each slot word is an atomic, the racing reads
//! are well-defined (no undefined behavior), merely discarded.
//!
//! The ring holds the **last [`RING_CAP`] events** per thread: once a
//! thread has written more, each new event evicts the oldest one and the
//! loss is counted in the ring's `dropped` counter, surfaced as the
//! `votekg.telemetry.dropped_events` counter in exports. Loss is
//! therefore bounded, counted, and biased toward keeping the *newest*
//! events — exactly what a crash dump wants.
//!
//! Threads come and go (worker pools spawn per optimization round), so
//! rings are pooled: a thread's ring is retired when the thread exits
//! and reclaimed — after a full reset — by the next new thread. Retired
//! rings keep their events until reuse, so a crash dump taken after a
//! worker died still shows what that worker was doing. The pool itself
//! lives in the registry (`registry::acquire_ring`); claiming a ring is
//! the only step of a thread's first event that may take a lock, and it
//! happens once per thread, never per event.
//!
//! This module must stay free of blocking primitives — the check.sh
//! lock-freedom gate greps it alongside the kg-serve read path.

use crate::span::{FieldValue, SpanRecord};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Events retained per thread ring. Power of two keeps the modulo cheap.
pub const RING_CAP: usize = 1024;

/// Inline fields stored per event. Spans attach up to this many fields;
/// later fields (and owned-`String` values, which cannot be stored in a
/// fixed-size atomic slot) are visible to collectors but not to the ring.
pub const MAX_EVENT_FIELDS: usize = 12;

/// Capacity of the lock-free span-statistics and counter tables.
const TABLE_CAP: usize = 1024;

/// What one recorded event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span was entered (`ts_ns` is the entry time).
    SpanBegin,
    /// A span finished (`ts_ns` is the end time, `arg` the duration in
    /// nanoseconds; carries the span's inline fields).
    SpanEnd,
    /// A point-in-time marker ([`instant`]).
    Instant,
    /// A counter was incremented (`arg` is the delta).
    Counter,
}

impl EventKind {
    fn code(self) -> u64 {
        match self {
            EventKind::SpanBegin => 1,
            EventKind::SpanEnd => 2,
            EventKind::Instant => 3,
            EventKind::Counter => 4,
        }
    }

    fn from_code(code: u64) -> Option<EventKind> {
        match code {
            1 => Some(EventKind::SpanBegin),
            2 => Some(EventKind::SpanEnd),
            3 => Some(EventKind::Instant),
            4 => Some(EventKind::Counter),
            _ => None,
        }
    }
}

/// One event copied out of a ring by [`capture_timelines`].
#[derive(Debug, Clone)]
pub struct CapturedEvent {
    /// What happened.
    pub kind: EventKind,
    /// Static event/span/counter name.
    pub name: &'static str,
    /// Nanoseconds since the process-wide recorder epoch.
    pub ts_ns: u64,
    /// Kind-specific argument: duration for [`EventKind::SpanEnd`],
    /// delta for [`EventKind::Counter`], zero otherwise.
    pub arg: u64,
    /// Span nesting depth at the time of the event (0 = root).
    pub depth: u32,
    /// The event's per-thread sequence index (monotone within a thread;
    /// gaps reveal events lost to overwrite).
    pub seq: u64,
    /// Inline fields (span-end events only; at most
    /// [`MAX_EVENT_FIELDS`]).
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// All events currently retained for one thread, oldest first.
#[derive(Debug, Clone)]
pub struct ThreadTimeline {
    /// The small process-local thread id
    /// ([`crate::current_thread_id`]).
    pub thread: u64,
    /// Events this thread lost to ring overwrite since its last reset.
    pub dropped: u64,
    /// Retained events in write order.
    pub events: Vec<CapturedEvent>,
}

// ---------------------------------------------------------------------------
// Timestamps
// ---------------------------------------------------------------------------

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide recorder epoch (first telemetry
/// use). Monotonic; shared by every thread so cross-thread timelines
/// line up.
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Recording toggle
// ---------------------------------------------------------------------------

static RECORDING: AtomicBool = AtomicBool::new(false);

/// Turns full event recording on. Spans are written to the rings
/// whenever telemetry is enabled (the snapshot API needs them); instants
/// and counter-delta events are recorded only while this is set.
pub fn start_recording() {
    RECORDING.store(true, Ordering::SeqCst);
}

/// Turns full event recording off (see [`start_recording`]).
pub fn stop_recording() {
    RECORDING.store(false, Ordering::SeqCst);
}

/// Whether full event recording is on.
#[inline(always)]
pub fn is_recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Static-string packing
// ---------------------------------------------------------------------------
//
// A `&'static str` is stored in one atomic word: pointer in the low 48
// bits, length in the high 16. Userland virtual addresses fit in 48 bits
// on every platform this repo targets; a string that violates either
// bound is simply not stored (the event survives, the name/field is
// dropped) — never misread.

const PTR_MASK: u64 = (1 << 48) - 1;

fn pack_str(s: &'static str) -> u64 {
    let ptr = s.as_ptr() as u64;
    let len = s.len() as u64;
    if ptr & !PTR_MASK != 0 || len > 0xFFFF {
        return 0;
    }
    ptr | (len << 48)
}

fn unpack_str(packed: u64) -> Option<&'static str> {
    if packed == 0 {
        return None;
    }
    let ptr = (packed & PTR_MASK) as *const u8;
    let len = (packed >> 48) as usize;
    // SAFETY: only `pack_str(&'static str)` values are ever stored in
    // packed-string slots, and the seqlock protocol guarantees the word
    // we read is one such value (torn slots are rejected before decode).
    // The pointee therefore lives for 'static and is valid UTF-8.
    Some(unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr, len)) })
}

// ---------------------------------------------------------------------------
// Ring slots
// ---------------------------------------------------------------------------

const TAG_U64: u64 = 1;
const TAG_I64: u64 = 2;
const TAG_F64: u64 = 3;
const TAG_BOOL: u64 = 4;
const TAG_STR: u64 = 5;

struct FieldSlot {
    /// Packed `&'static str` key (0 = empty).
    key: AtomicU64,
    /// Tagged value: raw bits for numbers, packed string for `Str`.
    val: AtomicU64,
}

impl FieldSlot {
    const fn new() -> FieldSlot {
        FieldSlot {
            key: AtomicU64::new(0),
            val: AtomicU64::new(0),
        }
    }
}

/// One seqlock-guarded event slot. Writable only by the ring's owning
/// thread; readable by anyone.
struct Slot {
    /// `2n + 1` while event `n` is being written, `2n + 2` once it is
    /// complete, where `n` is the event's per-thread index.
    seq: AtomicU64,
    /// `kind | depth << 8 | n_fields << 24`.
    meta: AtomicU64,
    /// 4-bit value tags, field `i` at bits `4i`.
    tags: AtomicU64,
    ts: AtomicU64,
    name: AtomicU64,
    arg: AtomicU64,
    fields: [FieldSlot; MAX_EVENT_FIELDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            tags: AtomicU64::new(0),
            ts: AtomicU64::new(0),
            name: AtomicU64::new(0),
            arg: AtomicU64::new(0),
            fields: [const { FieldSlot::new() }; MAX_EVENT_FIELDS],
        }
    }
}

// ---------------------------------------------------------------------------
// Rings
// ---------------------------------------------------------------------------

const RING_FREE: u64 = 0;
const RING_ACTIVE: u64 = 1;

/// A single-writer, multi-reader event ring (see the module docs).
pub(crate) struct Ring {
    state: AtomicU64,
    thread: AtomicU64,
    generation: AtomicU64,
    /// Total events ever written since the last reset (the next event's
    /// per-thread index).
    head: AtomicU64,
    dropped: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    pub(crate) fn new() -> Ring {
        Ring {
            state: AtomicU64::new(RING_FREE),
            thread: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..RING_CAP).map(|_| Slot::new()).collect(),
        }
    }

    /// Attempts to claim a free (retired) ring for `thread`, wiping the
    /// previous owner's events. Called under the registry's ring-pool
    /// lock, once per thread lifetime.
    pub(crate) fn try_claim(&self, thread: u64) -> bool {
        if self
            .state
            .compare_exchange(RING_FREE, RING_ACTIVE, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        self.wipe();
        self.thread.store(thread, Ordering::Relaxed);
        self.generation.store(reset_generation(), Ordering::Release);
        true
    }

    fn retire(&self) {
        self.state.store(RING_FREE, Ordering::Release);
    }

    /// The thread id stamped at claim time (test/diagnostic use).
    #[cfg(test)]
    pub(crate) fn owner_thread(&self) -> u64 {
        self.thread.load(Ordering::Relaxed)
    }

    fn wipe(&self) {
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Relaxed);
        }
        self.head.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Lazily applies a global [`crate::reset`]: the owning thread wipes
    /// its ring on its next event after the reset generation moved.
    fn sync_generation(&self) {
        let current = reset_generation();
        if self.generation.load(Ordering::Relaxed) != current {
            self.wipe();
            self.generation.store(current, Ordering::Release);
        }
    }

    fn dropped_events(&self) -> u64 {
        if self.generation.load(Ordering::Acquire) != reset_generation() {
            return 0;
        }
        self.dropped.load(Ordering::Relaxed)
    }

    /// Writes one event. Owning thread only.
    fn write(
        &self,
        kind: EventKind,
        name: &'static str,
        ts_ns: u64,
        arg: u64,
        depth: usize,
        fields: &[(&'static str, FieldValue)],
    ) {
        let packed_name = pack_str(name);
        if packed_name == 0 {
            return;
        }
        let n = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[n as usize % RING_CAP];
        slot.seq.store(2 * n + 1, Ordering::Release);

        let mut n_fields = 0u64;
        let mut tags = 0u64;
        for (key, value) in fields.iter() {
            if n_fields as usize == MAX_EVENT_FIELDS {
                break;
            }
            let packed_key = pack_str(key);
            if packed_key == 0 {
                continue;
            }
            let (tag, bits) = match value {
                FieldValue::U64(v) => (TAG_U64, *v),
                FieldValue::I64(v) => (TAG_I64, *v as u64),
                FieldValue::F64(v) => (TAG_F64, v.to_bits()),
                FieldValue::Bool(v) => (TAG_BOOL, *v as u64),
                FieldValue::Str(s) => {
                    let packed = pack_str(s);
                    if packed == 0 {
                        continue;
                    }
                    (TAG_STR, packed)
                }
                // Owned strings cannot live in a fixed-size atomic slot;
                // collectors still see them via the span hook.
                FieldValue::String(_) => continue,
            };
            let field = &slot.fields[n_fields as usize];
            field.key.store(packed_key, Ordering::Relaxed);
            field.val.store(bits, Ordering::Relaxed);
            tags |= tag << (4 * n_fields);
            n_fields += 1;
        }

        slot.meta.store(
            kind.code() | ((depth.min(0xFFFF) as u64) << 8) | (n_fields << 24),
            Ordering::Relaxed,
        );
        slot.tags.store(tags, Ordering::Relaxed);
        slot.ts.store(ts_ns, Ordering::Relaxed);
        slot.name.store(packed_name, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);

        slot.seq.store(2 * n + 2, Ordering::Release);
        self.head.store(n + 1, Ordering::Release);
        if n >= RING_CAP as u64 {
            // The write evicted the oldest retained event.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copies out every retained event the seqlock accepts, oldest
    /// first, without stopping the writer. An event the writer is
    /// overwriting concurrently is skipped (it counts as dropped on the
    /// writer side), never torn.
    fn read_events(&self) -> ThreadTimeline {
        let thread = self.thread.load(Ordering::Relaxed);
        if self.generation.load(Ordering::Acquire) != reset_generation() {
            // Pre-reset leftovers: the owner has not recorded since the
            // last reset, so nothing here belongs to the current epoch.
            return ThreadTimeline {
                thread,
                dropped: 0,
                events: Vec::new(),
            };
        }
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(RING_CAP as u64);
        let mut events = Vec::with_capacity((head - start) as usize);
        for n in start..head {
            let slot = &self.slots[n as usize % RING_CAP];
            let want = 2 * n + 2;
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let tags = slot.tags.load(Ordering::Relaxed);
            let ts = slot.ts.load(Ordering::Relaxed);
            let name = slot.name.load(Ordering::Relaxed);
            let arg = slot.arg.load(Ordering::Relaxed);
            let n_fields = ((meta >> 24) & 0xFF) as usize;
            let mut raw_fields = [(0u64, 0u64); MAX_EVENT_FIELDS];
            for (i, raw) in raw_fields.iter_mut().enumerate().take(n_fields) {
                let field = &slot.fields[i];
                *raw = (
                    field.key.load(Ordering::Relaxed),
                    field.val.load(Ordering::Relaxed),
                );
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != want {
                continue; // overwritten mid-read; reject the torn copy
            }

            let Some(kind) = EventKind::from_code(meta & 0xFF) else {
                continue;
            };
            let Some(name) = unpack_str(name) else {
                continue;
            };
            let mut fields = Vec::with_capacity(n_fields.min(MAX_EVENT_FIELDS));
            for (i, (key, bits)) in raw_fields.iter().enumerate().take(n_fields) {
                let Some(key) = unpack_str(*key) else {
                    continue;
                };
                let value = match (tags >> (4 * i)) & 0xF {
                    TAG_U64 => FieldValue::U64(*bits),
                    TAG_I64 => FieldValue::I64(*bits as i64),
                    TAG_F64 => FieldValue::F64(f64::from_bits(*bits)),
                    TAG_BOOL => FieldValue::Bool(*bits != 0),
                    TAG_STR => match unpack_str(*bits) {
                        Some(s) => FieldValue::Str(s),
                        None => continue,
                    },
                    _ => continue,
                };
                fields.push((key, value));
            }
            events.push(CapturedEvent {
                kind,
                name,
                ts_ns: ts,
                arg,
                depth: ((meta >> 8) & 0xFFFF) as u32,
                seq: n,
                fields,
            });
        }
        ThreadTimeline {
            thread,
            dropped: self.dropped.load(Ordering::Relaxed),
            events,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-thread ring handles
// ---------------------------------------------------------------------------

struct RingHandle(Arc<Ring>);

impl Drop for RingHandle {
    fn drop(&mut self) {
        // The thread is exiting: release the ring to the pool. Its
        // events stay readable until another thread claims it, so crash
        // dumps still show what this thread was doing.
        self.0.retire();
    }
}

thread_local! {
    static RING: RingHandle =
        RingHandle(crate::registry::acquire_ring(crate::span::current_thread_id()));
}

#[inline]
fn with_ring(f: impl FnOnce(&Ring)) {
    // `try_with` so events fired during thread teardown (after the
    // handle's destructor ran) are silently dropped instead of aborting.
    let _ = RING.try_with(|handle| {
        handle.0.sync_generation();
        f(&handle.0);
    });
}

// ---------------------------------------------------------------------------
// Reset generations
// ---------------------------------------------------------------------------

static RESET_GENERATION: AtomicU64 = AtomicU64::new(0);

fn reset_generation() -> u64 {
    RESET_GENERATION.load(Ordering::Acquire)
}

/// Invalidates every ring's retained events (applied lazily by each
/// owning thread) and zeroes the aggregation tables. Called by
/// [`crate::reset`].
pub(crate) fn reset() {
    RESET_GENERATION.fetch_add(1, Ordering::AcqRel);
    if let Some(table) = STATS.get() {
        for cell in table.iter() {
            cell.count.store(0, Ordering::Relaxed);
            cell.total_ns.store(0, Ordering::Relaxed);
            cell.max_ns.store(0, Ordering::Relaxed);
        }
    }
    if let Some(table) = COUNTERS.get() {
        for cell in table.iter() {
            cell.value.store(0, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Event entry points
// ---------------------------------------------------------------------------

/// Records a span-begin event (called by [`crate::Span::enter`]).
pub(crate) fn on_span_enter(name: &'static str, depth: usize) {
    with_ring(|ring| ring.write(EventKind::SpanBegin, name, now_ns(), 0, depth, &[]));
}

/// Records a span-end event with its inline fields and updates the
/// span's aggregate statistics. Lock-free; called from `Span::drop`.
pub(crate) fn on_span_end(
    name: &'static str,
    depth: usize,
    duration: Duration,
    fields: &[(&'static str, FieldValue)],
) {
    let dur_ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
    record_span_stats(name, dur_ns);
    with_ring(|ring| ring.write(EventKind::SpanEnd, name, now_ns(), dur_ns, depth, fields));
}

/// Records a point-in-time marker into the calling thread's ring. A
/// no-op unless telemetry is enabled *and* recording is on.
pub fn instant(name: &'static str) {
    if !crate::is_enabled() || !is_recording() {
        return;
    }
    with_ring(|ring| ring.write(EventKind::Instant, name, now_ns(), 0, 0, &[]));
}

/// Records a counter delta event (called by [`crate::Counter::add`]
/// while recording is on).
pub(crate) fn counter_event(name: &'static str, delta: u64) {
    with_ring(|ring| ring.write(EventKind::Counter, name, now_ns(), delta, 0, &[]));
}

/// Total events lost to ring overwrite across all threads since the
/// last reset (the `votekg.telemetry.dropped_events` counter).
pub fn dropped_events() -> u64 {
    crate::registry::all_rings()
        .iter()
        .map(|ring| ring.dropped_events())
        .sum()
}

/// Snapshots every thread's retained events without stopping writers,
/// ordered by thread id. Includes rings of exited threads that have not
/// been reclaimed yet.
pub fn capture_timelines() -> Vec<ThreadTimeline> {
    let mut timelines: Vec<ThreadTimeline> = crate::registry::all_rings()
        .iter()
        .map(|ring| ring.read_events())
        .filter(|t| !t.events.is_empty() || t.dropped > 0)
        .collect();
    timelines.sort_by_key(|t| t.thread);
    timelines
}

// ---------------------------------------------------------------------------
// Recent-span reconstruction
// ---------------------------------------------------------------------------

/// Rebuilds the retained-span view ([`crate::recent_spans`]) from the
/// rings: each thread's begin/end sequence is replayed to recover the
/// dotted enclosing path, then all threads' records are merged in
/// end-time order and capped at `cap` (newest kept).
pub(crate) fn reconstruct_recent_spans(cap: usize) -> Vec<SpanRecord> {
    let mut records: Vec<(u64, u64, SpanRecord)> = Vec::new();
    for timeline in capture_timelines() {
        let mut stack: Vec<&'static str> = Vec::new();
        for event in &timeline.events {
            match event.kind {
                EventKind::SpanBegin => stack.push(event.name),
                EventKind::SpanEnd => {
                    let (path, depth) = if stack.last() == Some(&event.name) {
                        let path = stack.join(".");
                        stack.pop();
                        (path, stack.len())
                    } else {
                        // The matching begin was lost to overwrite (or
                        // predates the capture window): fall back to the
                        // depth stamped into the event.
                        (event.name.to_string(), event.depth as usize)
                    };
                    records.push((
                        event.ts_ns,
                        event.seq,
                        SpanRecord {
                            name: event.name,
                            path,
                            depth,
                            thread: timeline.thread,
                            duration: Duration::from_nanos(event.arg),
                            fields: event.fields.clone(),
                        },
                    ));
                }
                EventKind::Instant | EventKind::Counter => {}
            }
        }
    }
    records.sort_by_key(|(ts, seq, _)| (*ts, *seq));
    if records.len() > cap {
        records.drain(..records.len() - cap);
    }
    records.into_iter().map(|(_, _, record)| record).collect()
}

// ---------------------------------------------------------------------------
// Lock-free span statistics
// ---------------------------------------------------------------------------

struct StatCell {
    /// Packed `&'static str` name; 0 = empty, claimed by CAS.
    name: AtomicU64,
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl StatCell {
    const fn new() -> StatCell {
        StatCell {
            name: AtomicU64::new(0),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

static STATS: OnceLock<Box<[StatCell]>> = OnceLock::new();

fn stats_table() -> &'static [StatCell] {
    STATS.get_or_init(|| (0..TABLE_CAP).map(|_| StatCell::new()).collect())
}

fn probe_start(name: &str) -> usize {
    // FNV-1a over the name *contents*: the same literal can have a
    // different address in every codegen unit, so identity must be by
    // content, not pointer.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (hash >> 16) as usize % TABLE_CAP
}

/// Does `cell_name` (a packed name word read from a table cell) denote
/// the same counter/span as `name`? Pointer equality is the fast path;
/// content equality handles duplicated literals across codegen units.
fn same_name(cell_name: u64, packed: u64, name: &str) -> bool {
    cell_name == packed || unpack_str(cell_name) == Some(name)
}

/// Folds one span completion into the per-name aggregate statistics.
/// Open-addressed, CAS-claimed, atomic updates — no lock anywhere. A
/// full table silently drops new names (bounded, never blocking).
pub(crate) fn record_span_stats(name: &'static str, dur_ns: u64) {
    let packed = pack_str(name);
    if packed == 0 {
        return;
    }
    let table = stats_table();
    let mut idx = probe_start(name);
    for _ in 0..TABLE_CAP {
        let cell = &table[idx];
        let current = cell.name.load(Ordering::Acquire);
        let owned = same_name(current, packed, name)
            || (current == 0
                && match cell
                    .name
                    .compare_exchange(0, packed, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => true,
                    Err(actual) => same_name(actual, packed, name),
                });
        if owned {
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.total_ns.fetch_add(dur_ns, Ordering::Relaxed);
            cell.max_ns.fetch_max(dur_ns, Ordering::Relaxed);
            return;
        }
        idx = (idx + 1) % TABLE_CAP;
    }
}

/// Copies out the span statistics as `(name, count, total_ns, max_ns)`.
/// Distinct static strings with equal contents (duplicated across
/// codegen units) appear as separate entries; the exporter merges them
/// by name.
pub(crate) fn span_stats_snapshot() -> Vec<(&'static str, u64, u64, u64)> {
    let Some(table) = STATS.get() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for cell in table.iter() {
        let Some(name) = unpack_str(cell.name.load(Ordering::Acquire)) else {
            continue;
        };
        let count = cell.count.load(Ordering::Relaxed);
        if count == 0 {
            continue;
        }
        out.push((
            name,
            count,
            cell.total_ns.load(Ordering::Relaxed),
            cell.max_ns.load(Ordering::Relaxed),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Lock-free unlabeled counters
// ---------------------------------------------------------------------------

struct CounterCell {
    name: AtomicU64,
    value: AtomicU64,
}

impl CounterCell {
    const fn new() -> CounterCell {
        CounterCell {
            name: AtomicU64::new(0),
            value: AtomicU64::new(0),
        }
    }
}

static COUNTERS: OnceLock<Box<[CounterCell]>> = OnceLock::new();

fn counters_table() -> &'static [CounterCell] {
    COUNTERS.get_or_init(|| (0..TABLE_CAP).map(|_| CounterCell::new()).collect())
}

/// Resolves an unlabeled counter to its table cell without taking any
/// lock. Returns `None` when the table is full (the caller falls back
/// to the registry's mutex-guarded map).
pub(crate) fn table_counter(name: &'static str) -> Option<&'static AtomicU64> {
    let packed = pack_str(name);
    if packed == 0 {
        return None;
    }
    let table = counters_table();
    let mut idx = probe_start(name);
    for _ in 0..TABLE_CAP {
        let cell = &table[idx];
        let current = cell.name.load(Ordering::Acquire);
        let owned = same_name(current, packed, name)
            || (current == 0
                && match cell
                    .name
                    .compare_exchange(0, packed, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => true,
                    Err(actual) => same_name(actual, packed, name),
                });
        if owned {
            return Some(&cell.value);
        }
        idx = (idx + 1) % TABLE_CAP;
    }
    None
}

/// Copies out the table-backed counters as `(name, value)`; the
/// exporter merges them with the registry's labeled counters.
pub(crate) fn counters_snapshot() -> Vec<(&'static str, u64)> {
    let Some(table) = COUNTERS.get() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for cell in table.iter() {
        let Some(name) = unpack_str(cell.name.load(Ordering::Acquire)) else {
            continue;
        };
        let value = cell.value.load(Ordering::Relaxed);
        if value > 0 {
            out.push((name, value));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrips_static_strings() {
        for s in ["", "x", "votekg.cluster.solve", "emoji \u{1F600}"] {
            let packed = pack_str(s);
            if s.is_empty() {
                continue; // empty strings may pack to an arbitrary ptr
            }
            assert_ne!(packed, 0, "{s:?}");
            assert_eq!(unpack_str(packed), Some(s));
        }
        assert_eq!(unpack_str(0), None);
    }

    #[test]
    fn event_kind_codes_roundtrip() {
        for kind in [
            EventKind::SpanBegin,
            EventKind::SpanEnd,
            EventKind::Instant,
            EventKind::Counter,
        ] {
            assert_eq!(EventKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(EventKind::from_code(0), None);
        assert_eq!(EventKind::from_code(9), None);
    }

    #[test]
    fn ring_write_read_roundtrips_fields() {
        let ring = Ring::new();
        assert!(ring.try_claim(7));
        ring.write(
            EventKind::SpanEnd,
            "votekg.test.ring",
            42,
            9,
            2,
            &[
                ("a", FieldValue::U64(3)),
                ("b", FieldValue::I64(-4)),
                ("c", FieldValue::F64(0.5)),
                ("d", FieldValue::Bool(true)),
                ("e", FieldValue::Str("unit")),
                ("skipped", FieldValue::String("owned".to_string())),
            ],
        );
        let timeline = ring.read_events();
        assert_eq!(timeline.thread, 7);
        assert_eq!(timeline.events.len(), 1);
        let event = &timeline.events[0];
        assert_eq!(event.kind, EventKind::SpanEnd);
        assert_eq!(event.name, "votekg.test.ring");
        assert_eq!(event.ts_ns, 42);
        assert_eq!(event.arg, 9);
        assert_eq!(event.depth, 2);
        assert_eq!(event.fields.len(), 5, "{:?}", event.fields);
        assert_eq!(event.fields[4], ("e", FieldValue::Str("unit")));
    }

    #[test]
    fn ring_overwrite_is_counted_and_keeps_newest() {
        let ring = Ring::new();
        assert!(ring.try_claim(1));
        let total = RING_CAP as u64 + 10;
        for i in 0..total {
            ring.write(EventKind::Instant, "votekg.test.wrap", i, 0, 0, &[]);
        }
        let timeline = ring.read_events();
        assert_eq!(timeline.dropped, 10);
        assert_eq!(timeline.events.len(), RING_CAP);
        assert_eq!(timeline.events[0].ts_ns, 10, "oldest events evicted");
        assert_eq!(timeline.events.last().unwrap().ts_ns, total - 1);
    }
}
