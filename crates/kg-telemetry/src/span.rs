//! Wall-time span guards. Spans nest per thread; entering writes a
//! begin event into the thread's flight-recorder ring, and dropping the
//! guard writes the end event (with fields and duration), folds the
//! elapsed time into the lock-free per-name span statistics, and — only
//! when one is installed — forwards a [`SpanRecord`] to the
//! [`crate::Collector`]. The enter/drop path takes no lock.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A typed span/event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(&'static str),
    String(String),
}

impl FieldValue {
    /// Renders the value as a JSON fragment (numbers bare, text quoted).
    pub fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) if v.is_finite() => format!("{v:?}"),
            FieldValue::F64(_) => "null".to_string(),
            FieldValue::Bool(v) => v.to_string(),
            FieldValue::Str(s) => crate::export::json_string(s),
            FieldValue::String(s) => crate::export::json_string(s),
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(s) => write!(f, "{s}"),
            FieldValue::String(s) => write!(f, "{s}"),
        }
    }
}

macro_rules! impl_field_from {
    ($($ty:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(v: $ty) -> Self { FieldValue::$variant(v as $conv) }
        })*
    };
}

impl_field_from! {
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, isize => I64 as i64,
    f32 => F64 as f64, f64 => F64 as f64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::String(v)
    }
}

/// A completed span as delivered to collectors and the recent-span ring.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// The span's own name, e.g. `votekg.cluster.ap`.
    pub name: &'static str,
    /// Dot-joined path of enclosing span names including this one.
    pub path: String,
    /// Nesting depth at entry (0 for a root span).
    pub depth: usize,
    /// Small process-local id of the recording thread (attribution for
    /// per-worker phases), assigned in thread-spawn order starting at 0.
    pub thread: u64,
    /// Wall time between enter and drop.
    pub duration: Duration,
    /// Fields captured by the `span!` macro.
    pub fields: Vec<(&'static str, FieldValue)>,
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The calling thread's small process-local id, as stamped into
/// [`SpanRecord::thread`] — lets tests and collectors attribute spans to
/// the thread that produced them.
pub fn current_thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    depth: usize,
    fields: Vec<(&'static str, FieldValue)>,
}

/// RAII span guard produced by the [`crate::span!`] macro.
pub struct Span(Option<ActiveSpan>);

impl Span {
    /// Starts a span. Prefer the [`crate::span!`] macro, which skips the
    /// field evaluation and this call entirely while telemetry is off.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> Span {
        let depth = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.len() - 1
        });
        crate::recorder::on_span_enter(name, depth);
        Span(Some(ActiveSpan {
            name,
            start: Instant::now(),
            depth,
            fields,
        }))
    }

    /// An inert guard: drop does nothing.
    pub const fn inert() -> Span {
        Span(None)
    }

    /// Attaches a field after entry (e.g. an iteration count known only
    /// at the end of the phase). No-op on inert spans.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(active) = &mut self.0 {
            active.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let duration = active.start.elapsed();
        // The dotted path is reconstructed from ring begin/end events on
        // demand; only a collector needs it eagerly (and pays the join).
        let has_collector = crate::registry::has_collector();
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if has_collector {
                stack.join(".")
            } else {
                String::new()
            };
            stack.pop();
            path
        });
        crate::recorder::on_span_end(active.name, active.depth, duration, &active.fields);
        if has_collector {
            let record = SpanRecord {
                name: active.name,
                path,
                depth: active.depth,
                thread: current_thread_id(),
                duration,
                fields: active.fields,
            };
            crate::registry::with_collector(|c| c.on_span(&record));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_value_json_forms() {
        assert_eq!(FieldValue::from(3u32).to_json(), "3");
        assert_eq!(FieldValue::from(-2i64).to_json(), "-2");
        assert_eq!(FieldValue::from(0.5f64).to_json(), "0.5");
        assert_eq!(FieldValue::from(f64::NAN).to_json(), "null");
        assert_eq!(FieldValue::from(true).to_json(), "true");
        assert_eq!(FieldValue::from("a\"b").to_json(), "\"a\\\"b\"");
    }

    #[test]
    fn inert_span_records_nothing() {
        // Must not touch the thread-local stack either.
        let before = SPAN_STACK.with(|s| s.borrow().len());
        {
            let mut span = Span::inert();
            span.field("k", 1u64);
        }
        assert_eq!(SPAN_STACK.with(|s| s.borrow().len()), before);
    }
}
