//! Snapshot + exporters. JSON and Prometheus text are hand-rolled so the
//! crate stays dependency-free.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::time::Duration;

use crate::metrics::{interpolate_quantile, HistogramCore, HISTOGRAM_BUCKETS};
use crate::registry::{registry, RECENT_SPAN_CAP};
use crate::span::SpanRecord;

/// One histogram in a [`Snapshot`]:
/// `(rendered key, count, sum, non-empty (lower_bound, count) buckets)`.
pub type HistogramEntry = (String, u64, u64, Vec<(u64, u64)>);

/// Point-in-time copy of the registry, ordered deterministically.
pub struct Snapshot {
    /// `(rendered key, value)`, sorted by key.
    pub counters: Vec<(String, u64)>,
    /// `(rendered key, value)`, sorted by key.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by key.
    pub histograms: Vec<HistogramEntry>,
    /// `(span name, count, total, max)`, sorted by name.
    pub spans: Vec<(String, u64, Duration, Duration)>,
    /// Retained finished spans, oldest first.
    pub recent: Vec<SpanRecord>,
}

impl Snapshot {
    /// Captures the current registry contents plus the lock-free
    /// flight-recorder state (span statistics, unlabeled counters, and
    /// the reconstructed recent-span view) — all without stopping
    /// writers.
    pub fn capture() -> Snapshot {
        let (mut counter_map, gauges, histograms) = {
            let inner = match registry().inner.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            let counter_map: BTreeMap<String, u64> = inner
                .counters
                .iter()
                .map(|(k, v)| (k.render(), v.load(Ordering::Relaxed)))
                .collect();
            let mut gauges: Vec<(String, f64)> = inner
                .gauges
                .iter()
                .map(|(k, v)| (k.render(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect();
            gauges.sort_by(|a, b| a.0.cmp(&b.0));
            let mut histograms: Vec<HistogramEntry> = inner
                .histograms
                .iter()
                .map(|(k, core)| {
                    let buckets: Vec<(u64, u64)> = (0..HISTOGRAM_BUCKETS)
                        .filter_map(|i| {
                            let n = core.buckets[i].load(Ordering::Relaxed);
                            (n > 0).then(|| (HistogramCore::bucket_lower_bound(i), n))
                        })
                        .collect();
                    (
                        k.render(),
                        core.count.load(Ordering::Relaxed),
                        core.sum.load(Ordering::Relaxed),
                        buckets,
                    )
                })
                .collect();
            histograms.sort_by(|a, b| a.0.cmp(&b.0));
            (counter_map, gauges, histograms)
        };

        // Merge in the lock-free unlabeled-counter table and the ring
        // loss counter (summed on the spot from every thread's ring).
        for (name, value) in crate::recorder::counters_snapshot() {
            *counter_map.entry(name.to_string()).or_insert(0) += value;
        }
        *counter_map
            .entry("votekg.telemetry.dropped_events".to_string())
            .or_insert(0) += crate::recorder::dropped_events();
        let counters: Vec<(String, u64)> = counter_map.into_iter().collect();

        // Span statistics come from the lock-free table; distinct static
        // strings with equal contents merge here.
        let mut span_map: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
        for (name, count, total_ns, max_ns) in crate::recorder::span_stats_snapshot() {
            let entry = span_map.entry(name.to_string()).or_insert((0, 0, 0));
            entry.0 += count;
            entry.1 += total_ns;
            entry.2 = entry.2.max(max_ns);
        }
        let spans: Vec<(String, u64, Duration, Duration)> = span_map
            .into_iter()
            .map(|(name, (count, total_ns, max_ns))| {
                (
                    name,
                    count,
                    Duration::from_nanos(total_ns),
                    Duration::from_nanos(max_ns),
                )
            })
            .collect();

        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
            recent: crate::recorder::reconstruct_recent_spans(RECENT_SPAN_CAP),
        }
    }

    /// Renders the snapshot as a JSON object. Shape:
    ///
    /// ```json
    /// {
    ///   "counters": {"votekg.sgp.iterations": 840},
    ///   "gauges": {"votekg.sim.ppr_residual": 1e-9},
    ///   "histograms": {"name": {"count": 3, "sum": 10,
    ///                            "buckets": [[2, 2], [4, 1]]}},
    ///   "spans": {"votekg.cluster.ap": {"count": 1, "total_ns": 12,
    ///              "mean_ns": 12, "max_ns": 12}},
    ///   "recent_spans": [{"name": "...", "path": "...", "depth": 0,
    ///                      "thread": 0, "duration_ns": 12,
    ///                      "fields": {"clusters": 4}}]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_entries(&mut out, self.counters.iter(), |out, (k, v)| {
            out.push_str(&json_string(k));
            out.push_str(": ");
            out.push_str(&v.to_string());
        });
        out.push_str("},\n  \"gauges\": {");
        push_entries(&mut out, self.gauges.iter(), |out, (k, v)| {
            out.push_str(&json_string(k));
            out.push_str(": ");
            if v.is_finite() {
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        });
        out.push_str("},\n  \"histograms\": {");
        push_entries(
            &mut out,
            self.histograms.iter(),
            |out, (k, count, sum, buckets)| {
                out.push_str(&json_string(k));
                out.push_str(&format!(
                    ": {{\"count\": {count}, \"sum\": {sum}, \"buckets\": ["
                ));
                for (i, (lo, n)) in buckets.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("[{lo}, {n}]"));
                }
                out.push(']');
                for (label, q) in QUANTILES {
                    let v = interpolate_quantile(buckets, *count, *q);
                    out.push_str(&format!(", \"{label}\": {v:?}"));
                }
                out.push('}');
            },
        );
        out.push_str("},\n  \"spans\": {");
        push_entries(
            &mut out,
            self.spans.iter(),
            |out, (name, count, total, max)| {
                let total_ns = total.as_nanos();
                let mean_ns = if *count > 0 {
                    total_ns / *count as u128
                } else {
                    0
                };
                out.push_str(&json_string(name));
                out.push_str(&format!(
                    ": {{\"count\": {count}, \"total_ns\": {total_ns}, \
                 \"mean_ns\": {mean_ns}, \"max_ns\": {}}}",
                    max.as_nanos()
                ));
            },
        );
        out.push_str("},\n  \"recent_spans\": [");
        for (i, span) in self.recent.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&span_record_json(span));
        }
        if !self.recent.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// Renders the snapshot in Prometheus text exposition format. Metric
    /// names have `.` rewritten to `_`; counters gain a `_total` suffix;
    /// histograms emit cumulative `_bucket{le="..."}` series; span stats
    /// become `_seconds_count` / `_seconds_sum` / `_seconds_max`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        // One `# TYPE` header per metric family (label variants of a name
        // share one; entries are sorted so variants are adjacent).
        let mut last_family = String::new();
        let mut type_header = |out: &mut String, family: &str, kind: &str| {
            if family != last_family {
                out.push_str(&format!("# TYPE {family} {kind}\n"));
                last_family = family.to_string();
            }
        };
        for (key, value) in &self.counters {
            let (name, labels) = split_rendered_key(key);
            let family = format!("{}_total", prom_name(&name));
            type_header(&mut out, &family, "counter");
            out.push_str(&format!("{}{} {}\n", family, prom_labels(&labels), value));
        }
        for (key, value) in &self.gauges {
            let (name, labels) = split_rendered_key(key);
            let family = prom_name(&name);
            type_header(&mut out, &family, "gauge");
            out.push_str(&format!(
                "{}{} {}\n",
                family,
                prom_labels(&labels),
                prom_f64(*value)
            ));
        }
        for (key, count, sum, buckets) in &self.histograms {
            let (name, labels) = split_rendered_key(key);
            let name = prom_name(&name);
            type_header(&mut out, &name, "histogram");
            let mut cumulative = 0u64;
            for (lo, n) in buckets {
                cumulative += n;
                // Our bucket [2^(i-1), 2^i) with lower bound `lo` is the
                // Prometheus bucket le = upper bound - 1 (inclusive).
                let le = upper_bound_for_lower(*lo);
                let mut bucket_labels = labels.clone();
                bucket_labels.push(("le".to_string(), le));
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    name,
                    prom_labels(&bucket_labels),
                    cumulative
                ));
            }
            let mut inf_labels = labels.clone();
            inf_labels.push(("le".to_string(), "+Inf".to_string()));
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                name,
                prom_labels(&inf_labels),
                count
            ));
            out.push_str(&format!("{}_sum{} {}\n", name, prom_labels(&labels), sum));
            out.push_str(&format!(
                "{}_count{} {}\n",
                name,
                prom_labels(&labels),
                count
            ));
            // Interpolated quantiles as a companion summary-style gauge
            // family (`_quantiles` so the histogram family stays valid).
            let quantile_family = format!("{name}_quantiles");
            type_header(&mut out, &quantile_family, "gauge");
            for (_, q) in QUANTILES {
                let mut q_labels = labels.clone();
                q_labels.push(("quantile".to_string(), format!("{q}")));
                out.push_str(&format!(
                    "{}{} {}\n",
                    quantile_family,
                    prom_labels(&q_labels),
                    prom_f64(interpolate_quantile(buckets, *count, *q))
                ));
            }
        }
        for (name, count, total, max) in &self.spans {
            let name = prom_name(name);
            out.push_str(&format!("{name}_seconds_count {count}\n"));
            out.push_str(&format!(
                "{name}_seconds_sum {}\n",
                prom_f64(total.as_secs_f64())
            ));
            out.push_str(&format!(
                "{name}_seconds_max {}\n",
                prom_f64(max.as_secs_f64())
            ));
        }
        out
    }
}

/// The quantiles surfaced in histogram exports, with their JSON keys.
const QUANTILES: &[(&str, f64)] = &[("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("p999", 0.999)];

fn push_entries<T>(
    out: &mut String,
    entries: impl ExactSizeIterator<Item = T>,
    mut write: impl FnMut(&mut String, T),
) {
    let len = entries.len();
    for (i, entry) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write(out, entry);
    }
    if len > 0 {
        out.push_str("\n  ");
    }
}

fn span_record_json(span: &SpanRecord) -> String {
    let mut fields = String::from("{");
    for (i, (key, value)) in span.fields.iter().enumerate() {
        if i > 0 {
            fields.push_str(", ");
        }
        fields.push_str(&json_string(key));
        fields.push_str(": ");
        fields.push_str(&value.to_json());
    }
    fields.push('}');
    format!(
        "{{\"name\": {}, \"path\": {}, \"depth\": {}, \"thread\": {}, \
         \"duration_ns\": {}, \"fields\": {}}}",
        json_string(span.name),
        json_string(&span.path),
        span.depth,
        span.thread,
        span.duration.as_nanos(),
        fields
    )
}

/// Escapes and quotes a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Splits a rendered key `name{k="v",...}` back into name and label pairs.
fn split_rendered_key(key: &str) -> (String, Vec<(String, String)>) {
    let Some(brace) = key.find('{') else {
        return (key.to_string(), Vec::new());
    };
    let name = key[..brace].to_string();
    let body = &key[brace + 1..key.len() - 1];
    let mut labels = Vec::new();
    let mut rest = body;
    while let Some(eq) = rest.find('=') {
        let label_key = rest[..eq].to_string();
        // Value is a JSON string literal; scan for its closing quote.
        let value_str = &rest[eq + 1..];
        let mut end = 1;
        let bytes = value_str.as_bytes();
        while end < bytes.len() {
            match bytes[end] {
                b'\\' => end += 2,
                b'"' => break,
                _ => end += 1,
            }
        }
        labels.push((
            label_key,
            unescape_json(&value_str[1..end.min(bytes.len())]),
        ));
        rest = value_str.get(end + 1..).unwrap_or("");
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    (name, labels)
}

fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Rewrites a dotted metric name into a valid Prometheus metric name.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders `{k="v",...}` with Prometheus label-value escaping
/// (backslash, double quote, and newline must be escaped).
fn prom_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let rendered: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), prom_label_value(v)))
        .collect();
    format!("{{{}}}", rendered.join(","))
}

fn prom_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v:?}")
    }
}

fn upper_bound_for_lower(lower: u64) -> String {
    let upper = HistogramCore::bucket_upper_bound(HistogramCore::bucket_index(lower));
    if upper == u64::MAX {
        "+Inf".to_string()
    } else {
        // The bucket is `[lower, upper)`; Prometheus `le` is inclusive.
        (upper - 1).to_string()
    }
}

/// Captures the registry and renders it as JSON (see [`Snapshot::to_json`]).
pub fn export_json() -> String {
    Snapshot::capture().to_json()
}

/// Captures the registry and renders Prometheus text exposition format.
pub fn export_prometheus() -> String {
    Snapshot::capture().to_prometheus()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn split_rendered_key_roundtrip() {
        let (name, labels) = split_rendered_key("m{a=\"x\",b=\"y\\\"z\"}");
        assert_eq!(name, "m");
        assert_eq!(
            labels,
            vec![
                ("a".to_string(), "x".to_string()),
                ("b".to_string(), "y\"z".to_string())
            ]
        );
    }

    #[test]
    fn prom_label_value_escaping() {
        assert_eq!(prom_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn prom_name_sanitizes_dots() {
        assert_eq!(prom_name("votekg.sgp.iterations"), "votekg_sgp_iterations");
    }
}
