//! Opt-in stderr event logger filtered by the `VOTEKG_LOG` environment
//! variable. Syntax: comma-separated directives, each either a bare
//! level (`debug`) that sets the default, or `target-prefix=level`
//! (`votekg.sgp=trace`). The longest matching prefix wins. With the
//! variable unset or empty, logging is completely off.

use std::fmt;
use std::sync::OnceLock;

/// Event severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error,
    Warn,
    Info,
    Debug,
    Trace,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            "off" | "none" => None,
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

struct Filter {
    /// Level applied when no prefix matches; `None` = off.
    default: Option<Level>,
    /// `(target prefix, max level)` directives.
    prefixes: Vec<(String, Option<Level>)>,
}

impl Filter {
    fn parse(spec: &str) -> Filter {
        let mut filter = Filter {
            default: None,
            prefixes: Vec::new(),
        };
        for directive in spec.split(',') {
            let directive = directive.trim();
            if directive.is_empty() {
                continue;
            }
            match directive.split_once('=') {
                Some((prefix, level)) => filter
                    .prefixes
                    .push((prefix.trim().to_string(), Level::parse(level))),
                None => filter.default = Level::parse(directive),
            }
        }
        // Longest prefix first so the most specific directive wins.
        filter
            .prefixes
            .sort_by_key(|p| std::cmp::Reverse(p.0.len()));
        filter
    }

    fn enabled(&self, target: &str, level: Level) -> bool {
        for (prefix, max) in &self.prefixes {
            if target.starts_with(prefix.as_str()) {
                return max.is_some_and(|max| level <= max);
            }
        }
        self.default.is_some_and(|max| level <= max)
    }
}

fn filter() -> &'static Filter {
    static FILTER: OnceLock<Filter> = OnceLock::new();
    FILTER.get_or_init(|| Filter::parse(&std::env::var("VOTEKG_LOG").unwrap_or_default()))
}

/// Whether an event at `level` for `target` would be written to stderr.
pub fn log_enabled(target: &str, level: Level) -> bool {
    filter().enabled(target, level)
}

/// Logs a formatted event. Writes to stderr when the `VOTEKG_LOG` filter
/// admits it, and forwards to the installed collector when telemetry is
/// enabled — so events cost nothing unless someone is listening.
pub fn log_event(level: Level, target: &str, args: fmt::Arguments<'_>) {
    let to_stderr = log_enabled(target, level);
    let to_collector = crate::is_enabled();
    if !to_stderr && !to_collector {
        return;
    }
    let message = args.to_string();
    if to_stderr {
        eprintln!("[{level:5}] {target}: {message}");
    }
    if to_collector {
        crate::registry::with_collector(|c| c.on_event(level, target, &message));
    }
}

/// `tevent!(Level::Info, "votekg.sgp", "solved in {} iters", n)`
#[macro_export]
macro_rules! tevent {
    ($level:expr, $target:expr, $($arg:tt)*) => {
        $crate::log_event($level, $target, ::std::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_off() {
        let f = Filter::parse("");
        assert!(!f.enabled("votekg.sgp", Level::Error));
    }

    #[test]
    fn bare_level_sets_default() {
        let f = Filter::parse("debug");
        assert!(f.enabled("anything", Level::Debug));
        assert!(!f.enabled("anything", Level::Trace));
    }

    #[test]
    fn longest_prefix_wins() {
        let f = Filter::parse("warn,votekg.sgp=trace,votekg=info");
        assert!(f.enabled("votekg.sgp.solve", Level::Trace));
        assert!(f.enabled("votekg.cluster", Level::Info));
        assert!(!f.enabled("votekg.cluster", Level::Debug));
        assert!(f.enabled("other.target", Level::Warn));
        assert!(!f.enabled("other.target", Level::Info));
    }

    #[test]
    fn off_directive_silences_prefix() {
        let f = Filter::parse("debug,votekg.sim=off");
        assert!(!f.enabled("votekg.sim.ppr", Level::Error));
        assert!(f.enabled("votekg.sgp", Level::Debug));
    }
}
