//! Flight-recorder exporters: Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`), the per-round timeline report that
//! attributes a round's wall-clock to phases, and panic-time crash
//! dumps.
//!
//! The Chrome format is the "JSON Array Format" subset every trace
//! viewer accepts: an object with a `traceEvents` array of `X`
//! (complete span), `B` (still-open span), `i` (instant), `C`
//! (counter), and `M` (thread-name metadata) events. Timestamps are
//! microseconds; the exact nanosecond values ride along in `args` so
//! round-tripping the file loses nothing.

use crate::export::json_string;
use crate::recorder::{capture_timelines, CapturedEvent, EventKind, ThreadTimeline};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Schema tag stamped into every trace file's `otherData`.
pub const TRACE_SCHEMA: &str = "votekg.trace/v1";

/// A completed span lifted out of a timeline (or parsed back out of a
/// trace file): absolute start time and duration, both in nanoseconds
/// since the recorder epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Recording thread id.
    pub thread: u64,
    /// Span name (owned so parsed traces need no interning).
    pub name: String,
    /// Start time in nanoseconds.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

impl TraceSpan {
    fn end_ns(&self) -> u64 {
        self.ts_ns.saturating_add(self.dur_ns)
    }

    fn contains(&self, other: &TraceSpan) -> bool {
        self.ts_ns <= other.ts_ns && self.end_ns() >= other.end_ns()
    }
}

/// Extracts completed spans from captured timelines (span-end events
/// carry the duration; the start is derived exactly).
pub fn trace_spans(timelines: &[ThreadTimeline]) -> Vec<TraceSpan> {
    let mut spans = Vec::new();
    for timeline in timelines {
        for event in &timeline.events {
            if event.kind == EventKind::SpanEnd {
                spans.push(TraceSpan {
                    thread: timeline.thread,
                    name: event.name.to_string(),
                    ts_ns: event.ts_ns.saturating_sub(event.arg),
                    dur_ns: event.arg,
                });
            }
        }
    }
    spans
}

fn push_ts_us(out: &mut String, ns: u64) {
    // Chrome expects microseconds; keep sub-microsecond precision as a
    // decimal fraction so nothing collapses to equal timestamps.
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

fn push_common(out: &mut String, ph: &str, name: &str, thread: u64, ts_ns: u64) {
    out.push_str(&format!(
        "{{\"ph\": \"{ph}\", \"pid\": 1, \"tid\": {thread}, \"name\": {}, \
         \"cat\": \"votekg\", \"ts\": ",
        json_string(name)
    ));
    push_ts_us(out, ts_ns);
}

fn push_fields_json(out: &mut String, event: &CapturedEvent) {
    for (key, value) in &event.fields {
        out.push_str(&format!(", {}: {}", json_string(key), value.to_json()));
    }
}

/// Renders captured timelines as Chrome trace-event JSON. `extra`
/// key/value pairs (already JSON-encoded values) land in `otherData`
/// next to the schema tag.
pub fn chrome_trace_json_from(timelines: &[ThreadTimeline], extra: &[(&str, String)]) -> String {
    let mut out = String::from("{\n\"traceEvents\": [\n");
    let mut first = true;
    let mut push_event = |out: &mut String, body: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&body);
    };

    let mut total_dropped = 0u64;
    for timeline in timelines {
        total_dropped += timeline.dropped;
        // Thread-name metadata so viewers label the rows.
        push_event(
            &mut out,
            format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {0}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"votekg-thread-{0}\"}}}}",
                timeline.thread
            ),
        );

        let mut open: Vec<&CapturedEvent> = Vec::new();
        let mut counter_totals: HashMap<&'static str, u64> = HashMap::new();
        for event in &timeline.events {
            match event.kind {
                EventKind::SpanBegin => open.push(event),
                EventKind::SpanEnd => {
                    if open.last().map(|b| b.name) == Some(event.name) {
                        open.pop();
                    }
                    let mut body = String::new();
                    push_common(
                        &mut body,
                        "X",
                        event.name,
                        timeline.thread,
                        event.ts_ns.saturating_sub(event.arg),
                    );
                    body.push_str(", \"dur\": ");
                    push_ts_us(&mut body, event.arg);
                    body.push_str(&format!(
                        ", \"args\": {{\"ts_ns\": {}, \"dur_ns\": {}, \"seq\": {}",
                        event.ts_ns.saturating_sub(event.arg),
                        event.arg,
                        event.seq
                    ));
                    push_fields_json(&mut body, event);
                    body.push_str("}}");
                    push_event(&mut out, body);
                }
                EventKind::Instant => {
                    let mut body = String::new();
                    push_common(&mut body, "i", event.name, timeline.thread, event.ts_ns);
                    body.push_str(&format!(
                        ", \"s\": \"t\", \"args\": {{\"ts_ns\": {}, \"seq\": {}}}}}",
                        event.ts_ns, event.seq
                    ));
                    push_event(&mut out, body);
                }
                EventKind::Counter => {
                    let total = counter_totals.entry(event.name).or_insert(0);
                    *total += event.arg;
                    let mut body = String::new();
                    push_common(&mut body, "C", event.name, timeline.thread, event.ts_ns);
                    body.push_str(&format!(", \"args\": {{\"value\": {total}}}}}"));
                    push_event(&mut out, body);
                }
            }
        }
        // Spans still open at capture time (the interesting ones in a
        // crash dump): emit begin events so viewers show them unclosed.
        for begin in open {
            let mut body = String::new();
            push_common(&mut body, "B", begin.name, timeline.thread, begin.ts_ns);
            body.push_str(&format!(
                ", \"args\": {{\"ts_ns\": {}, \"seq\": {}}}}}",
                begin.ts_ns, begin.seq
            ));
            push_event(&mut out, body);
        }
    }

    out.push_str("\n],\n\"otherData\": {");
    out.push_str(&format!(
        "\"schema\": \"{TRACE_SCHEMA}\", \"threads\": {}, \"dropped_events\": {}",
        timelines.len(),
        total_dropped
    ));
    for (key, value) in extra {
        out.push_str(&format!(", {}: {value}", json_string(key)));
    }
    out.push_str("}\n}\n");
    out
}

/// Captures all thread rings and renders them as Chrome trace-event
/// JSON.
pub fn chrome_trace_json() -> String {
    chrome_trace_json_from(&capture_timelines(), &[])
}

// ---------------------------------------------------------------------------
// Timeline report
// ---------------------------------------------------------------------------

/// Span names that demarcate one optimization round. A round-named span
/// nested (in time) inside another candidate is a phase of the outer
/// round, not a round of its own — e.g. the per-cluster
/// `votekg.votes.multi` solves inside `votekg.cluster.round`.
pub const ROUND_NAMES: &[&str] = &[
    "votekg.framework.round",
    "votekg.cluster.round",
    "votekg.votes.multi",
    "votekg.votes.single",
];

/// Aggregate statistics for one phase (span name) within a round.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// Span name.
    pub name: String,
    /// Completed instances inside the round.
    pub count: u64,
    /// Sum of instance durations.
    pub total_ns: u64,
    /// Sum of instance *self* times (duration minus same-thread direct
    /// children) — these sum to at most the round's duration per thread,
    /// so they attribute without double counting.
    pub self_ns: u64,
    /// Median instance duration (nearest rank).
    pub p50_ns: u64,
    /// 99th-percentile instance duration (nearest rank).
    pub p99_ns: u64,
}

/// One optimization round with its wall-clock attributed to phases.
#[derive(Debug, Clone)]
pub struct RoundTimeline {
    /// The round span's name.
    pub name: String,
    /// Thread the round span ran on.
    pub thread: u64,
    /// Round start (ns since recorder epoch).
    pub ts_ns: u64,
    /// Round duration.
    pub dur_ns: u64,
    /// Phases sorted by attributed self time, descending.
    pub phases: Vec<PhaseStat>,
    /// Round time not covered by any same-thread child span.
    pub unattributed_ns: u64,
    /// Fraction of the round's duration covered by child spans on its
    /// own thread (`1.0` = every nanosecond attributed).
    pub coverage: f64,
}

/// Per-round phase attribution built from completed spans.
#[derive(Debug, Clone, Default)]
pub struct TimelineReport {
    /// Rounds in start order.
    pub rounds: Vec<RoundTimeline>,
}

fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl TimelineReport {
    /// Builds the report: computes each span's self time via a
    /// same-thread interval-nesting sweep, picks the outermost
    /// round-named spans as rounds, and attributes every span inside a
    /// round's time window to that round's phase table.
    pub fn build(spans: &[TraceSpan]) -> TimelineReport {
        let mut order: Vec<usize> = (0..spans.len()).collect();
        // Parents sort before children: by thread, then start time, then
        // longer-first on ties.
        order.sort_by(|&a, &b| {
            (
                spans[a].thread,
                spans[a].ts_ns,
                std::cmp::Reverse(spans[a].dur_ns),
            )
                .cmp(&(
                    spans[b].thread,
                    spans[b].ts_ns,
                    std::cmp::Reverse(spans[b].dur_ns),
                ))
        });

        // Same-thread nesting sweep -> per-span direct-children time.
        let mut children_ns = vec![0u64; spans.len()];
        let mut stack: Vec<usize> = Vec::new();
        let mut current_thread = u64::MAX;
        for &i in &order {
            let span = &spans[i];
            if span.thread != current_thread {
                stack.clear();
                current_thread = span.thread;
            }
            while let Some(&top) = stack.last() {
                if spans[top].contains(span) {
                    break;
                }
                stack.pop();
            }
            if let Some(&parent) = stack.last() {
                children_ns[parent] = children_ns[parent].saturating_add(span.dur_ns);
            }
            stack.push(i);
        }

        // Outermost round-named spans are rounds; round-named spans
        // nested in another candidate's time window are phases.
        let mut candidates: Vec<usize> = (0..spans.len())
            .filter(|&i| ROUND_NAMES.contains(&spans[i].name.as_str()))
            .collect();
        candidates.sort_by_key(|&i| std::cmp::Reverse(spans[i].dur_ns));
        let mut round_ids: Vec<usize> = Vec::new();
        for &i in &candidates {
            if !round_ids
                .iter()
                .any(|&r| r != i && spans[r].contains(&spans[i]))
            {
                round_ids.push(i);
            }
        }
        round_ids.sort_by_key(|&i| spans[i].ts_ns);

        let mut rounds = Vec::with_capacity(round_ids.len());
        for &r in &round_ids {
            let round = &spans[r];
            // Group member spans (any thread, inside the round's window,
            // assigned to the *smallest* containing round) by name.
            let mut phases: HashMap<&str, (u64, u64, u64, Vec<u64>)> = HashMap::new();
            for (i, span) in spans.iter().enumerate() {
                if i == r || !round.contains(span) {
                    continue;
                }
                let smallest = round_ids
                    .iter()
                    .filter(|&&o| o != i && spans[o].contains(span))
                    .min_by_key(|&&o| spans[o].dur_ns);
                if smallest != Some(&r) {
                    continue;
                }
                let entry = phases
                    .entry(span.name.as_str())
                    .or_insert((0, 0, 0, Vec::new()));
                entry.0 += 1;
                entry.1 += span.dur_ns;
                entry.2 += span.dur_ns.saturating_sub(children_ns[i]);
                entry.3.push(span.dur_ns);
            }
            let mut phases: Vec<PhaseStat> = phases
                .into_iter()
                .map(|(name, (count, total_ns, self_ns, mut durs))| {
                    durs.sort_unstable();
                    PhaseStat {
                        name: name.to_string(),
                        count,
                        total_ns,
                        self_ns,
                        p50_ns: nearest_rank(&durs, 0.5),
                        p99_ns: nearest_rank(&durs, 0.99),
                    }
                })
                .collect();
            phases.sort_by_key(|p| std::cmp::Reverse(p.self_ns));

            let unattributed_ns = round.dur_ns.saturating_sub(children_ns[r]);
            let coverage = if round.dur_ns == 0 {
                1.0
            } else {
                1.0 - unattributed_ns as f64 / round.dur_ns as f64
            };
            rounds.push(RoundTimeline {
                name: round.name.clone(),
                thread: round.thread,
                ts_ns: round.ts_ns,
                dur_ns: round.dur_ns,
                phases,
                unattributed_ns,
                coverage,
            });
        }
        TimelineReport { rounds }
    }

    /// The lowest per-round coverage, or 1.0 with no rounds. check.sh
    /// gates on this: it is the fraction of round wall-clock the phase
    /// spans account for.
    pub fn min_coverage(&self) -> f64 {
        self.rounds.iter().map(|r| r.coverage).fold(1.0, f64::min)
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        if self.rounds.is_empty() {
            return "no optimization rounds found in trace\n".to_string();
        }
        let mut out = String::new();
        for round in &self.rounds {
            out.push_str(&format!(
                "round {}  thread {}  wall {}  coverage {:.1}%\n",
                round.name,
                round.thread,
                fmt_ns(round.dur_ns),
                round.coverage * 100.0
            ));
            for phase in &round.phases {
                let share = if round.dur_ns > 0 {
                    phase.self_ns as f64 / round.dur_ns as f64 * 100.0
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "  {:<40} n={:<4} self {:>9} ({:>5.1}%)  p50 {:>9}  p99 {:>9}\n",
                    phase.name,
                    phase.count,
                    fmt_ns(phase.self_ns),
                    share,
                    fmt_ns(phase.p50_ns),
                    fmt_ns(phase.p99_ns)
                ));
            }
            out.push_str(&format!(
                "  {:<40} self {:>9}\n",
                "(unattributed round self-time)",
                fmt_ns(round.unattributed_ns)
            ));
        }
        out
    }
}

/// Renders nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

// ---------------------------------------------------------------------------
// Crash dumps
// ---------------------------------------------------------------------------

static CRASH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Dumps every thread's retained events to a Chrome trace file when a
/// pipeline `catch_unwind` trips. Returns the written path, or `None`
/// when telemetry is disabled, no crash directory is configured (via
/// [`crate::set_crash_dir`] or `VOTEKG_CRASH_DIR`), or the write fails —
/// a crash dump must never cascade the failure.
pub fn dump_crash(tag: &str) -> Option<PathBuf> {
    if !crate::is_enabled() {
        return None;
    }
    let dir = crate::registry::crash_dir_override()
        .or_else(|| std::env::var_os("VOTEKG_CRASH_DIR").map(PathBuf::from))?;
    let seq = CRASH_SEQ.fetch_add(1, Ordering::Relaxed);
    let tag: String = tag
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .take(48)
        .collect();
    let path = dir.join(format!(
        "votekg-crash-{}-{}-{}.trace.json",
        std::process::id(),
        seq,
        tag
    ));
    let json = chrome_trace_json_from(&capture_timelines(), &[("crash_reason", json_string(&tag))]);
    std::fs::create_dir_all(&dir).ok()?;
    std::fs::write(&path, json).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(thread: u64, name: &str, ts: u64, dur: u64) -> TraceSpan {
        TraceSpan {
            thread,
            name: name.to_string(),
            ts_ns: ts,
            dur_ns: dur,
        }
    }

    #[test]
    fn report_attributes_self_time_per_phase() {
        // round [0, 100): encode [5, 25), solve [30, 90) with nested
        // inner [40, 80).
        let spans = vec![
            span(0, "votekg.votes.multi", 0, 100),
            span(0, "votekg.votes.encode", 5, 20),
            span(0, "votekg.votes.solve.lbfgs", 30, 60),
            span(0, "votekg.sgp.auglag", 40, 40),
        ];
        let report = TimelineReport::build(&spans);
        assert_eq!(report.rounds.len(), 1);
        let round = &report.rounds[0];
        assert_eq!(round.name, "votekg.votes.multi");
        // Direct children: encode (20) + solve (60) -> 20 ns self.
        assert_eq!(round.unattributed_ns, 20);
        assert!((round.coverage - 0.8).abs() < 1e-9, "{}", round.coverage);
        let solve = round
            .phases
            .iter()
            .find(|p| p.name == "votekg.votes.solve.lbfgs")
            .expect("solve phase");
        assert_eq!(solve.total_ns, 60);
        assert_eq!(solve.self_ns, 20, "inner auglag time excluded from self");
        let inner = round
            .phases
            .iter()
            .find(|p| p.name == "votekg.sgp.auglag")
            .expect("inner phase");
        assert_eq!(inner.self_ns, 40);
        // All self times + unattributed == round duration.
        let total: u64 =
            round.phases.iter().map(|p| p.self_ns).sum::<u64>() + round.unattributed_ns;
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_round_names_are_phases_not_rounds() {
        // cluster.round contains two per-cluster votes.multi solves on
        // worker threads: only the cluster round is a round.
        let spans = vec![
            span(0, "votekg.cluster.round", 0, 100),
            span(1, "votekg.votes.multi", 10, 30),
            span(2, "votekg.votes.multi", 10, 35),
        ];
        let report = TimelineReport::build(&spans);
        assert_eq!(report.rounds.len(), 1);
        assert_eq!(report.rounds[0].name, "votekg.cluster.round");
        let multi = report.rounds[0]
            .phases
            .iter()
            .find(|p| p.name == "votekg.votes.multi")
            .expect("multi phase");
        assert_eq!(multi.count, 2);
        assert_eq!(multi.total_ns, 65);
    }

    #[test]
    fn consecutive_rounds_split_members() {
        let spans = vec![
            span(0, "votekg.votes.multi", 0, 50),
            span(0, "votekg.votes.encode", 10, 10),
            span(0, "votekg.votes.multi", 60, 50),
            span(0, "votekg.votes.encode", 70, 30),
        ];
        let report = TimelineReport::build(&spans);
        assert_eq!(report.rounds.len(), 2);
        assert_eq!(report.rounds[0].phases[0].total_ns, 10);
        assert_eq!(report.rounds[1].phases[0].total_ns, 30);
        assert!(report.min_coverage() <= report.rounds[0].coverage);
    }

    #[test]
    fn chrome_trace_json_is_well_formed() {
        let json = chrome_trace_json_from(&[], &[("note", "\"x\"".to_string())]);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains(TRACE_SCHEMA));
        assert!(json.contains("\"note\": \"x\""));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
