//! Lock-free metric primitives. All handles are cheap clones around an
//! `Arc`; a handle whose inner slot is `None` (telemetry disabled at
//! creation time) is a pure no-op.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A permanently inert counter (what you get while telemetry is off).
    pub const fn noop() -> Self {
        Counter(None)
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Last-write-wins gauge holding an `f64` (stored as bits in an atomic).
#[derive(Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    pub const fn noop() -> Self {
        Gauge(None)
    }

    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Number of buckets in [`HistogramCore`]: one for zero plus one per
/// power of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Log-scale histogram over `u64` samples. Bucket 0 counts exact zeros;
/// bucket `i >= 1` counts samples in `[2^(i-1), 2^i)`, so a sample that
/// is exactly a power of two `2^k` lands in bucket `k + 1` — the bucket
/// boundaries are exact at powers of two.
pub struct HistogramCore {
    pub(crate) buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Maps a sample to its bucket index.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of a bucket (0 for bucket 0, else `2^(i-1)`).
    pub fn bucket_lower_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Exclusive upper bound of a bucket, saturating at `u64::MAX`.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index >= 64 {
            u64::MAX
        } else {
            1u64 << index
        }
    }

    fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }
}

/// Handle to a log-scale histogram.
#[derive(Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    pub const fn noop() -> Self {
        Histogram(None)
    }

    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.record(value);
        }
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// Snapshot of non-empty buckets as `(lower_bound, count)` pairs.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        let Some(core) = &self.0 else {
            return Vec::new();
        };
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let n = core.buckets[i].load(Ordering::Relaxed);
                (n > 0).then(|| (HistogramCore::bucket_lower_bound(i), n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_exact_at_powers_of_two() {
        assert_eq!(HistogramCore::bucket_index(0), 0);
        for k in 0..64u32 {
            let p = 1u64 << k;
            assert_eq!(HistogramCore::bucket_index(p), k as usize + 1, "2^{k}");
            if p > 1 {
                // One below a power of two stays in the previous bucket.
                assert_eq!(HistogramCore::bucket_index(p - 1), k as usize, "2^{k}-1");
            }
        }
        assert_eq!(HistogramCore::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_cover_the_line() {
        for i in 1..HISTOGRAM_BUCKETS {
            let lo = HistogramCore::bucket_lower_bound(i);
            assert_eq!(HistogramCore::bucket_index(lo), i);
            assert_eq!(HistogramCore::bucket_upper_bound(i - 1), lo);
        }
    }

    #[test]
    fn noop_handles_are_inert() {
        let c = Counter::noop();
        c.add(5);
        assert_eq!(c.get(), 0);
        let h = Histogram::noop();
        h.record(9);
        assert_eq!(h.count(), 0);
        assert!(h.buckets().is_empty());
    }
}
