//! Lock-free metric primitives. All handles are cheap clones around an
//! `Arc`; a handle whose inner slot is `None` (telemetry disabled at
//! creation time) is a pure no-op.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where a live counter's cell lives: the mutex-created shared map
/// (labeled counters) or the lock-free static table (unlabeled).
#[derive(Clone)]
pub(crate) enum CounterCell {
    Shared(Arc<AtomicU64>),
    Table(&'static AtomicU64),
}

/// Monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter {
    pub(crate) cell: Option<CounterCell>,
    /// Metric name, kept so increments can be mirrored into the flight
    /// recorder as counter-delta events while recording is on.
    pub(crate) name: &'static str,
}

impl Counter {
    /// A permanently inert counter (what you get while telemetry is off).
    pub const fn noop() -> Self {
        Counter {
            cell: None,
            name: "",
        }
    }

    pub(crate) fn from_shared(name: &'static str, cell: Arc<AtomicU64>) -> Self {
        Counter {
            cell: Some(CounterCell::Shared(cell)),
            name,
        }
    }

    pub(crate) fn from_table(name: &'static str, cell: &'static AtomicU64) -> Self {
        Counter {
            cell: Some(CounterCell::Table(cell)),
            name,
        }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        let Some(cell) = &self.cell else { return };
        match cell {
            CounterCell::Shared(c) => c.fetch_add(n, Ordering::Relaxed),
            CounterCell::Table(c) => c.fetch_add(n, Ordering::Relaxed),
        };
        if crate::recorder::is_recording() {
            crate::recorder::counter_event(self.name, n);
        }
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        match &self.cell {
            None => 0,
            Some(CounterCell::Shared(c)) => c.load(Ordering::Relaxed),
            Some(CounterCell::Table(c)) => c.load(Ordering::Relaxed),
        }
    }
}

/// Last-write-wins gauge holding an `f64` (stored as bits in an atomic).
#[derive(Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    pub const fn noop() -> Self {
        Gauge(None)
    }

    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Number of buckets in [`HistogramCore`]: one for zero plus one per
/// power of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Log-scale histogram over `u64` samples. Bucket 0 counts exact zeros;
/// bucket `i >= 1` counts samples in `[2^(i-1), 2^i)`, so a sample that
/// is exactly a power of two `2^k` lands in bucket `k + 1` — the bucket
/// boundaries are exact at powers of two.
pub struct HistogramCore {
    pub(crate) buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Maps a sample to its bucket index.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of a bucket (0 for bucket 0, else `2^(i-1)`).
    pub fn bucket_lower_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Exclusive upper bound of a bucket, saturating at `u64::MAX`.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index >= 64 {
            u64::MAX
        } else {
            1u64 << index
        }
    }

    fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }
}

/// Handle to a log-scale histogram.
#[derive(Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    pub const fn noop() -> Self {
        Histogram(None)
    }

    /// A live histogram that is not registered anywhere: it records
    /// regardless of the global enable flag and never appears in
    /// exports. Benchmarks use this to summarize latency samples without
    /// perturbing (or depending on) global telemetry state.
    pub fn standalone() -> Self {
        Histogram(Some(Arc::new(HistogramCore::new())))
    }

    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.record(value);
        }
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// Snapshot of non-empty buckets as `(lower_bound, count)` pairs.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        let Some(core) = &self.0 else {
            return Vec::new();
        };
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let n = core.buckets[i].load(Ordering::Relaxed);
                (n > 0).then(|| (HistogramCore::bucket_lower_bound(i), n))
            })
            .collect()
    }

    /// Within-bucket interpolated quantile (`q` in `[0, 1]`): locates
    /// the bucket holding the `q`-th ranked sample and interpolates
    /// linearly inside its `[2^(i-1), 2^i)` range, so p99 is no longer
    /// rounded to a power of two. Returns 0.0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        interpolate_quantile(&self.buckets(), self.count(), q)
    }
}

/// Shared quantile interpolation over `(lower_bound, count)` bucket
/// pairs (as produced by [`Histogram::buckets`] and carried in
/// [`crate::Snapshot`] histogram entries).
pub fn interpolate_quantile(buckets: &[(u64, u64)], count: u64, q: f64) -> f64 {
    if count == 0 || buckets.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    // 1-based rank of the target sample.
    let target = (q * count as f64).max(1.0);
    let mut cumulative = 0u64;
    for &(lower, n) in buckets {
        cumulative += n;
        if cumulative as f64 >= target {
            if lower == 0 {
                return 0.0; // bucket 0 holds exact zeros
            }
            let upper = lower.saturating_mul(2);
            let before = (cumulative - n) as f64;
            let frac = ((target - before) / n as f64).clamp(0.0, 1.0);
            return lower as f64 + frac * (upper - lower) as f64;
        }
    }
    // Unreachable when count matches the buckets; be defensive anyway.
    buckets.last().map_or(0.0, |&(lower, _)| lower as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_exact_at_powers_of_two() {
        assert_eq!(HistogramCore::bucket_index(0), 0);
        for k in 0..64u32 {
            let p = 1u64 << k;
            assert_eq!(HistogramCore::bucket_index(p), k as usize + 1, "2^{k}");
            if p > 1 {
                // One below a power of two stays in the previous bucket.
                assert_eq!(HistogramCore::bucket_index(p - 1), k as usize, "2^{k}-1");
            }
        }
        assert_eq!(HistogramCore::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_cover_the_line() {
        for i in 1..HISTOGRAM_BUCKETS {
            let lo = HistogramCore::bucket_lower_bound(i);
            assert_eq!(HistogramCore::bucket_index(lo), i);
            assert_eq!(HistogramCore::bucket_upper_bound(i - 1), lo);
        }
    }

    #[test]
    fn noop_handles_are_inert() {
        let c = Counter::noop();
        c.add(5);
        assert_eq!(c.get(), 0);
        let h = Histogram::noop();
        h.record(9);
        assert_eq!(h.count(), 0);
        assert!(h.buckets().is_empty());
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn standalone_histograms_record_while_disabled() {
        crate::disable();
        let h = Histogram::standalone();
        h.record(8);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn interpolated_quantiles_land_inside_buckets() {
        let h = Histogram::standalone();
        // 100 samples spread evenly over [64, 128): bucket 7 only.
        for i in 0..100u64 {
            h.record(64 + (i * 64) / 100);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((64.0..128.0).contains(&p50), "p50 = {p50}");
        assert!((64.0..=128.0).contains(&p99), "p99 = {p99}");
        assert!(p50 < p99, "interpolation must order quantiles");
        // The true p50 is ~96; interpolation should be close, not a
        // power-of-two snap.
        assert!((p50 - 96.0).abs() < 8.0, "p50 = {p50}");
    }

    #[test]
    fn quantiles_handle_zeros_and_extremes() {
        let h = Histogram::standalone();
        h.record(0);
        h.record(0);
        h.record(1000);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        let p100 = h.quantile(1.0);
        assert!((512.0..=1024.0).contains(&p100), "p100 = {p100}");
    }
}
