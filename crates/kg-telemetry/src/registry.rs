//! Process-global metric registry and collector plumbing. All lookups go
//! through one mutex; updates after lookup are lock-free atomics. Nothing
//! in this module runs while telemetry is disabled — callers gate on
//! [`crate::is_enabled`] first.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::metrics::{Counter, Gauge, Histogram, HistogramCore};
use crate::span::SpanRecord;

/// How many finished spans the registry retains for detailed dumps.
const RECENT_SPAN_CAP: usize = 1024;

/// Pluggable sink notified of every finished span and logged event while
/// telemetry is enabled, in addition to the built-in aggregation.
pub trait Collector: Send + Sync {
    fn on_span(&self, _record: &SpanRecord) {}
    fn on_event(&self, _level: crate::Level, _target: &str, _message: &str) {}
}

/// Metric identity: static name plus sorted low-cardinality labels.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct Key {
    pub name: &'static str,
    pub labels: Vec<(&'static str, String)>,
}

impl Key {
    /// Display form `name` or `name{k="v",...}` used by the JSON export.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_string();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={}", crate::export::json_string(v)))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// Aggregated wall-time statistics for one span name.
#[derive(Clone, Default)]
pub(crate) struct SpanStats {
    pub count: u64,
    pub total: Duration,
    pub max: Duration,
}

#[derive(Default)]
pub(crate) struct RegistryInner {
    pub counters: HashMap<Key, Arc<AtomicU64>>,
    pub gauges: HashMap<Key, Arc<AtomicU64>>,
    pub histograms: HashMap<Key, Arc<HistogramCore>>,
    pub spans: HashMap<&'static str, SpanStats>,
    pub recent_spans: VecDeque<SpanRecord>,
}

pub(crate) struct Registry {
    pub inner: Mutex<RegistryInner>,
    collector: Mutex<Option<Arc<dyn Collector>>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

pub(crate) fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        inner: Mutex::new(RegistryInner::default()),
        collector: Mutex::new(None),
    })
}

fn lock_inner() -> std::sync::MutexGuard<'static, RegistryInner> {
    // Telemetry must not take the process down: recover from a panic
    // that occurred while the registry lock was held.
    match registry().inner.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Returns the counter `name` (creating it on first use), or a no-op
/// handle while telemetry is disabled.
pub fn counter(name: &'static str) -> Counter {
    counter_labeled(name, &[])
}

/// Returns a labeled counter, e.g.
/// `counter_labeled("votekg.sgp.converged", &[("reason", "Tolerance")])`.
pub fn counter_labeled(name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
    if !crate::is_enabled() {
        return Counter::noop();
    }
    let key = make_key(name, labels);
    let cell = lock_inner().counters.entry(key).or_default().clone();
    Counter(Some(cell))
}

/// Returns the gauge `name`, or a no-op handle while disabled.
pub fn gauge(name: &'static str) -> Gauge {
    if !crate::is_enabled() {
        return Gauge::noop();
    }
    let key = make_key(name, &[]);
    let cell = lock_inner().gauges.entry(key).or_default().clone();
    Gauge(Some(cell))
}

/// Returns the histogram `name`, or a no-op handle while disabled.
pub fn histogram(name: &'static str) -> Histogram {
    if !crate::is_enabled() {
        return Histogram::noop();
    }
    let key = make_key(name, &[]);
    let core = lock_inner()
        .histograms
        .entry(key)
        .or_insert_with(|| Arc::new(HistogramCore::new()))
        .clone();
    Histogram(Some(core))
}

fn make_key(name: &'static str, labels: &[(&'static str, &str)]) -> Key {
    let mut labels: Vec<(&'static str, String)> =
        labels.iter().map(|(k, v)| (*k, v.to_string())).collect();
    labels.sort();
    Key { name, labels }
}

/// Installs (or clears) the collector hook.
pub fn set_collector(collector: Option<Arc<dyn Collector>>) {
    let guard = registry().collector.lock();
    match guard {
        Ok(mut slot) => *slot = collector,
        Err(poisoned) => *poisoned.into_inner() = collector,
    }
}

pub(crate) fn with_collector(f: impl FnOnce(&dyn Collector)) {
    let guard = match registry().collector.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(collector) = guard.as_ref() {
        f(collector.as_ref());
    }
}

pub(crate) fn record_span(record: SpanRecord) {
    {
        let mut inner = lock_inner();
        let stats = inner.spans.entry(record.name).or_default();
        stats.count += 1;
        stats.total += record.duration;
        stats.max = stats.max.max(record.duration);
        if inner.recent_spans.len() == RECENT_SPAN_CAP {
            inner.recent_spans.pop_front();
        }
        inner.recent_spans.push_back(record.clone());
    }
    with_collector(|c| c.on_span(&record));
}

/// Copies out the retained ring of finished spans, oldest first.
pub fn recent_spans() -> Vec<SpanRecord> {
    lock_inner().recent_spans.iter().cloned().collect()
}

/// Clears all metrics, span statistics, and retained spans. Handles
/// obtained before the reset keep updating their (now orphaned) cells,
/// which no longer appear in exports.
pub fn reset() {
    *lock_inner() = RegistryInner::default();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_lookups_are_noop() {
        crate::disable();
        let c = counter("votekg.test.disabled");
        c.add(7);
        assert_eq!(c.get(), 0);
        assert!(gauge("votekg.test.disabled_g").0.is_none());
        assert!(histogram("votekg.test.disabled_h").0.is_none());
    }

    #[test]
    fn labeled_counters_are_distinct() {
        crate::enable();
        let a = counter_labeled("votekg.test.labeled", &[("reason", "a")]);
        let b = counter_labeled("votekg.test.labeled", &[("reason", "b")]);
        a.add(2);
        b.add(5);
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 5);
        // Same labels in any order resolve to the same cell.
        let a2 = counter_labeled("votekg.test.labeled", &[("reason", "a")]);
        assert_eq!(a2.get(), 2);
        crate::disable();
    }

    #[test]
    fn key_render_quotes_labels() {
        let key = make_key("m", &[("k", "v\"x")]);
        assert_eq!(key.render(), "m{k=\"v\\\"x\"}");
    }
}
