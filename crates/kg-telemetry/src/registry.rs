//! Process-global metric registry, the flight-recorder ring pool, and
//! collector plumbing.
//!
//! Since the flight recorder landed, the registry mutex guards only the
//! *cold* paths: creating labeled metric handles, claiming a ring for a
//! brand-new thread, and configuration (collector, crash directory).
//! Per-event work — span completion, counter increments through
//! [`counter`], ring writes — is entirely lock-free (see
//! [`crate::recorder`]). Nothing in this module runs while telemetry is
//! disabled — callers gate on [`crate::is_enabled`] first.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram, HistogramCore};
use crate::recorder::Ring;
use crate::span::SpanRecord;

/// How many finished spans [`recent_spans`] reconstructs for detailed
/// dumps.
pub(crate) const RECENT_SPAN_CAP: usize = 1024;

/// Pluggable sink notified of every finished span and logged event while
/// telemetry is enabled, in addition to the built-in aggregation.
pub trait Collector: Send + Sync {
    fn on_span(&self, _record: &SpanRecord) {}
    fn on_event(&self, _level: crate::Level, _target: &str, _message: &str) {}
}

/// Metric identity: static name plus sorted low-cardinality labels.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct Key {
    pub name: &'static str,
    pub labels: Vec<(&'static str, String)>,
}

impl Key {
    /// Display form `name` or `name{k="v",...}` used by the JSON export.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_string();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={}", crate::export::json_string(v)))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

#[derive(Default)]
pub(crate) struct RegistryInner {
    pub counters: HashMap<Key, Arc<AtomicU64>>,
    pub gauges: HashMap<Key, Arc<AtomicU64>>,
    pub histograms: HashMap<Key, Arc<HistogramCore>>,
}

pub(crate) struct Registry {
    pub inner: Mutex<RegistryInner>,
    collector: Mutex<Option<Arc<dyn Collector>>>,
    /// The flight-recorder ring pool. Locked once per thread lifetime
    /// (claim) and per snapshot — never per event.
    rings: Mutex<Vec<Arc<Ring>>>,
    /// Where crash dumps land; overrides the `VOTEKG_CRASH_DIR` env var.
    crash_dir: Mutex<Option<PathBuf>>,
}

/// Fast collector-presence flag so the span hot path skips building the
/// dotted path (an allocation) when nobody is listening.
static HAS_COLLECTOR: AtomicBool = AtomicBool::new(false);

static REGISTRY: OnceLock<Registry> = OnceLock::new();

pub(crate) fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        inner: Mutex::new(RegistryInner::default()),
        collector: Mutex::new(None),
        rings: Mutex::new(Vec::new()),
        crash_dir: Mutex::new(None),
    })
}

fn lock_inner() -> std::sync::MutexGuard<'static, RegistryInner> {
    // Telemetry must not take the process down: recover from a panic
    // that occurred while the registry lock was held.
    match registry().inner.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn lock_poisonable<'a, T>(mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Claims a ring for a newly seen thread: reuse a retired one (wiped on
/// claim) or grow the pool. Called once per thread, on its first event.
pub(crate) fn acquire_ring(thread: u64) -> Arc<Ring> {
    let mut rings = lock_poisonable(&registry().rings);
    for ring in rings.iter() {
        if ring.try_claim(thread) {
            return Arc::clone(ring);
        }
    }
    let ring = Arc::new(Ring::new());
    assert!(ring.try_claim(thread), "fresh ring must be claimable");
    rings.push(Arc::clone(&ring));
    ring
}

/// All pooled rings — active and retired — for snapshotting.
pub(crate) fn all_rings() -> Vec<Arc<Ring>> {
    lock_poisonable(&registry().rings).clone()
}

/// Returns the counter `name` (creating it on first use), or a no-op
/// handle while telemetry is disabled. Unlabeled counters resolve
/// through a lock-free table, so this is safe to call on hot paths.
pub fn counter(name: &'static str) -> Counter {
    if !crate::is_enabled() {
        return Counter::noop();
    }
    match crate::recorder::table_counter(name) {
        Some(cell) => Counter::from_table(name, cell),
        // Table full: fall back to the mutex-guarded map (correct, just
        // slower). Exports read both sources.
        None => shared_counter(name, &[]),
    }
}

/// Returns a labeled counter, e.g.
/// `counter_labeled("votekg.sgp.converged", &[("reason", "Tolerance")])`.
pub fn counter_labeled(name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
    if !crate::is_enabled() {
        return Counter::noop();
    }
    if labels.is_empty() {
        return counter(name);
    }
    shared_counter(name, labels)
}

fn shared_counter(name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
    let key = make_key(name, labels);
    let cell = lock_inner().counters.entry(key).or_default().clone();
    Counter::from_shared(name, cell)
}

/// Returns the gauge `name`, or a no-op handle while disabled.
pub fn gauge(name: &'static str) -> Gauge {
    if !crate::is_enabled() {
        return Gauge::noop();
    }
    let key = make_key(name, &[]);
    let cell = lock_inner().gauges.entry(key).or_default().clone();
    Gauge(Some(cell))
}

/// Returns the histogram `name`, or a no-op handle while disabled.
pub fn histogram(name: &'static str) -> Histogram {
    if !crate::is_enabled() {
        return Histogram::noop();
    }
    let key = make_key(name, &[]);
    let core = lock_inner()
        .histograms
        .entry(key)
        .or_insert_with(|| Arc::new(HistogramCore::new()))
        .clone();
    Histogram(Some(core))
}

fn make_key(name: &'static str, labels: &[(&'static str, &str)]) -> Key {
    let mut labels: Vec<(&'static str, String)> =
        labels.iter().map(|(k, v)| (*k, v.to_string())).collect();
    labels.sort();
    Key { name, labels }
}

/// Installs (or clears) the collector hook.
pub fn set_collector(collector: Option<Arc<dyn Collector>>) {
    HAS_COLLECTOR.store(collector.is_some(), Ordering::SeqCst);
    *lock_poisonable(&registry().collector) = collector;
}

/// Whether a collector is installed (cheap, lock-free).
#[inline(always)]
pub(crate) fn has_collector() -> bool {
    HAS_COLLECTOR.load(Ordering::Relaxed)
}

pub(crate) fn with_collector(f: impl FnOnce(&dyn Collector)) {
    let guard = lock_poisonable(&registry().collector);
    if let Some(collector) = guard.as_ref() {
        f(collector.as_ref());
    }
}

/// Sets (or clears) the directory crash dumps are written to,
/// overriding the `VOTEKG_CRASH_DIR` environment variable.
pub fn set_crash_dir(dir: Option<PathBuf>) {
    *lock_poisonable(&registry().crash_dir) = dir;
}

pub(crate) fn crash_dir_override() -> Option<PathBuf> {
    lock_poisonable(&registry().crash_dir).clone()
}

/// Reconstructs the retained ring of finished spans from the per-thread
/// flight-recorder rings, oldest first (see
/// [`crate::recorder::capture_timelines`]).
pub fn recent_spans() -> Vec<SpanRecord> {
    crate::recorder::reconstruct_recent_spans(RECENT_SPAN_CAP)
}

/// Clears all metrics, span statistics, and retained events. Handles
/// obtained before the reset keep updating: labeled handles write to
/// orphaned cells that no longer appear in exports, unlabeled counter
/// handles write to their (zeroed) table cell and stay visible.
pub fn reset() {
    *lock_inner() = RegistryInner::default();
    crate::recorder::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_lookups_are_noop() {
        crate::disable();
        let c = counter("votekg.test.disabled");
        c.add(7);
        assert_eq!(c.get(), 0);
        assert!(gauge("votekg.test.disabled_g").0.is_none());
        assert!(histogram("votekg.test.disabled_h").0.is_none());
    }

    #[test]
    fn labeled_counters_are_distinct() {
        crate::enable();
        let a = counter_labeled("votekg.test.labeled", &[("reason", "a")]);
        let b = counter_labeled("votekg.test.labeled", &[("reason", "b")]);
        a.add(2);
        b.add(5);
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 5);
        // Same labels in any order resolve to the same cell.
        let a2 = counter_labeled("votekg.test.labeled", &[("reason", "a")]);
        assert_eq!(a2.get(), 2);
        crate::disable();
    }

    #[test]
    fn key_render_quotes_labels() {
        let key = make_key("m", &[("k", "v\"x")]);
        assert_eq!(key.render(), "m{k=\"v\\\"x\"}");
    }

    #[test]
    fn ring_pool_reuses_retired_rings() {
        let before = all_rings().len();
        let ring_a = std::thread::spawn(|| {
            // Force the thread-local handle into existence, then let the
            // thread exit so its ring retires.
            crate::recorder::on_span_enter("votekg.test.pool", 0);
            Arc::as_ptr(&acquire_ring_for_test()) as usize
        })
        .join()
        .expect("thread a");
        let ring_b = std::thread::spawn(|| {
            crate::recorder::on_span_enter("votekg.test.pool", 0);
            Arc::as_ptr(&acquire_ring_for_test()) as usize
        })
        .join()
        .expect("thread b");
        assert_eq!(ring_a, ring_b, "second thread must reuse the retired ring");
        assert!(all_rings().len() <= before + 1);
    }

    fn acquire_ring_for_test() -> Arc<Ring> {
        // The thread-local already claimed a ring; find the one owned by
        // this thread id.
        let me = crate::current_thread_id();
        all_rings()
            .into_iter()
            .find(|r| r.owner_thread() == me)
            .expect("calling thread owns a ring")
    }
}
