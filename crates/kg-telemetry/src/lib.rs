//! Zero-dependency observability for the vote-optimization pipeline:
//! counters, gauges, log-scale histograms, nesting wall-time spans, a
//! per-thread lock-free **flight recorder** with Chrome-trace export and
//! crash dumps, a pluggable [`Collector`] sink, JSON / Prometheus-text
//! exporters, and an opt-in `VOTEKG_LOG`-filtered stderr event logger.
//!
//! # Naming scheme
//!
//! Every metric and span is named `votekg.<crate>.<phase>`, e.g.
//! `votekg.sgp.solve`, `votekg.cluster.ap`, `votekg.sim.ppr_iters`.
//! Low-cardinality dimensions (solver kind, convergence reason, worker)
//! go in labels or span fields, never in the name.
//!
//! # Cost model
//!
//! Telemetry is **off by default**. Every entry point checks one global
//! `AtomicBool` first and returns an inert handle when disabled — the
//! disabled hot path performs no allocation and acquires no lock (see
//! `tests/no_alloc.rs`). When enabled, the per-event path is lock-free:
//! span completion writes to the calling thread's recorder ring and a
//! CAS-claimed statistics table, and unlabeled [`counter`] lookups
//! resolve through a lock-free table. Only labeled-handle creation and a
//! thread's very first event (ring claim) take the registry mutex; hot
//! loops should still hoist handles.
//!
//! On top of the enabled baseline, [`start_recording`] turns on full
//! event recording: instants and counter deltas join the span
//! begin/ends in the rings, ready for [`chrome_trace_json`] /
//! [`TimelineReport`] export. Each thread retains the last
//! [`RING_CAP`] events; overwrites are counted in the
//! `votekg.telemetry.dropped_events` counter, and [`dump_crash`] writes
//! every thread's retained events to disk when a pipeline catch_unwind
//! trips.
//!
//! ```
//! kg_telemetry::enable();
//! {
//!     let _span = kg_telemetry::span!("votekg.demo.phase", { items: 3usize });
//!     kg_telemetry::counter("votekg.demo.work").add(3);
//! }
//! let json = kg_telemetry::export_json();
//! assert!(json.contains("votekg.demo.phase"));
//! # kg_telemetry::disable();
//! # kg_telemetry::reset();
//! ```

mod export;
mod log;
mod metrics;
mod recorder;
mod registry;
mod span;
mod trace;

pub use export::{export_json, export_prometheus, Snapshot};
pub use log::{log_enabled, log_event, Level};
pub use metrics::{interpolate_quantile, Counter, Gauge, Histogram};
pub use recorder::{
    capture_timelines, dropped_events, instant, is_recording, start_recording, stop_recording,
    CapturedEvent, EventKind, ThreadTimeline, MAX_EVENT_FIELDS, RING_CAP,
};
pub use registry::{
    counter, counter_labeled, gauge, histogram, recent_spans, reset, set_collector, set_crash_dir,
    Collector,
};
pub use span::{current_thread_id, FieldValue, Span, SpanRecord};
pub use trace::{
    chrome_trace_json, chrome_trace_json_from, dump_crash, fmt_ns, trace_spans, PhaseStat,
    RoundTimeline, TimelineReport, TraceSpan, ROUND_NAMES, TRACE_SCHEMA,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns telemetry collection on, process-wide.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns telemetry collection off. Existing handles become inert for
/// exports (their updates still land in the registry but cost only an
/// atomic); newly requested handles are no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether telemetry is currently enabled.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Opens a wall-time span: `span!("votekg.crate.phase")` or
/// `span!("votekg.crate.phase", { field: value, ... })`. The returned
/// guard records the span on drop. When telemetry is disabled this
/// evaluates no field expressions and allocates nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::is_enabled() {
            $crate::Span::enter($name, ::std::vec::Vec::new())
        } else {
            $crate::Span::inert()
        }
    };
    ($name:expr, { $($key:ident : $value:expr),* $(,)? }) => {
        if $crate::is_enabled() {
            $crate::Span::enter(
                $name,
                ::std::vec![$((stringify!($key), $crate::FieldValue::from($value))),*],
            )
        } else {
            $crate::Span::inert()
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn enable_disable_toggle() {
        // Other tests in this binary toggle the same global; just assert
        // the transitions themselves.
        super::enable();
        assert!(super::is_enabled());
        super::disable();
        assert!(!super::is_enabled());
    }
}
