//! Dataset substrate for the `votekg` experiments.
//!
//! The paper evaluates on a Taobao customer-service knowledge graph with
//! real user votes, and on three KONECT graphs (Twitter, Digg, Gnutella)
//! with synthetic votes. Neither the Taobao data nor the KONECT downloads
//! are available offline, so this crate *synthesizes* statistically
//! matching substitutes (documented in DESIGN.md):
//!
//! * [`generators`] — seeded Erdős–Rényi and Barabási–Albert digraph
//!   generators with normalized conditional-probability weights.
//! * [`konect`] — Table II's dataset shapes (|V|, |E|) and offline clones.
//! * [`votes`] — the Section VII-A synthetic vote protocol (`N_Q`, `N_A`,
//!   `N_nodes`, `N_degree`, `k`, `N_aveN`).
//! * [`user_study`] — a simulated version of the paper's five-volunteer
//!   study: a ground-truth graph is corrupted into the deployed graph;
//!   simulated users vote according to the ground truth; a held-out test
//!   set measures ranking quality against the truth.
//! * [`corpus_gen`] — a topic-model corpus generator for end-to-end Q&A
//!   demos over `kg-qa`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus_gen;
pub mod generators;
pub mod konect;
pub mod user_study;
pub mod votes;

pub use generators::{barabasi_albert, erdos_renyi, GeneratorOptions};
pub use konect::{synthesize, DatasetSpec, DIGG, GNUTELLA, TAOBAO, TWITTER};
pub use user_study::{simulate_user_study, UserStudy, UserStudyConfig};
pub use votes::{
    generate_votes, generate_zipf_votes, random_instance, InstanceDistribution, SyntheticVotes,
    VoteGenConfig,
};
