//! Offline clones of the paper's datasets (Table II).
//!
//! The original graphs come from KONECT (Twitter follows, Digg replies,
//! Gnutella host connections) and the Taobao customer-service KG. None
//! are downloadable in this environment, so [`synthesize`] builds graphs
//! matching each dataset's node count, edge count and hence average
//! degree. The social graphs use preferential attachment (their real
//! degree distributions are heavy-tailed); Gnutella, a P2P overlay with a
//! flatter distribution, and Taobao use Erdős–Rényi.

use crate::generators::{barabasi_albert, erdos_renyi, GeneratorOptions};
use kg_graph::KnowledgeGraph;
use serde::{Deserialize, Serialize};

/// Degree-distribution family used to clone a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Family {
    /// Heavy-tailed (social graphs) — Barabási–Albert.
    ScaleFree,
    /// Flat (P2P overlays, co-occurrence KGs) — Erdős–Rényi.
    Uniform,
}

/// A dataset's shape, as reported in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: &'static str,
    /// `|V|`.
    pub nodes: usize,
    /// `|E|`.
    pub edges: usize,
    /// Generator family for the offline clone.
    pub family: Family,
    /// The "Average Degree" value Table II reports. Note the paper mixes
    /// conventions: Taobao is `|E|/|V|`, the KONECT sets are `2|E|/|V|`
    /// (total degree); this field records the printed number verbatim.
    pub reported_degree: f64,
}

impl DatasetSpec {
    /// Average out-degree `|E| / |V|`.
    pub fn average_out_degree(&self) -> f64 {
        self.edges as f64 / self.nodes as f64
    }

    /// Average total degree `2|E| / |V|`.
    pub fn average_total_degree(&self) -> f64 {
        2.0 * self.edges as f64 / self.nodes as f64
    }
}

/// Taobao customer-service KG: 1,663 nodes, 17,591 edges (avg 10.57).
pub const TAOBAO: DatasetSpec = DatasetSpec {
    name: "Taobao",
    nodes: 1_663,
    edges: 17_591,
    family: Family::Uniform,
    reported_degree: 10.57,
};

/// KONECT Twitter follow graph: 23,370 nodes, 33,101 edges (avg 2.83).
pub const TWITTER: DatasetSpec = DatasetSpec {
    name: "Twitter",
    nodes: 23_370,
    edges: 33_101,
    family: Family::ScaleFree,
    reported_degree: 2.83,
};

/// KONECT Digg reply graph: 30,398 nodes, 87,627 edges (avg 5.77).
pub const DIGG: DatasetSpec = DatasetSpec {
    name: "Digg",
    nodes: 30_398,
    edges: 87_627,
    family: Family::ScaleFree,
    reported_degree: 5.77,
};

/// KONECT Gnutella host graph: 62,586 nodes, 147,892 edges (avg 4.73).
pub const GNUTELLA: DatasetSpec = DatasetSpec {
    name: "Gnutella",
    nodes: 62_586,
    edges: 147_892,
    family: Family::Uniform,
    reported_degree: 4.73,
};

/// Builds an offline clone of `spec`, optionally scaled down by
/// `scale ∈ (0, 1]` (both |V| and |E| shrink proportionally — used by the
/// quick modes of the experiment harness).
pub fn synthesize(spec: &DatasetSpec, scale: f64, seed: u64) -> KnowledgeGraph {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let nodes = ((spec.nodes as f64 * scale).round() as usize).max(2);
    let edges = ((spec.edges as f64 * scale).round() as usize).max(1);
    let opts = GeneratorOptions {
        seed,
        normalize: true,
    };
    match spec.family {
        Family::Uniform => erdos_renyi(nodes, edges.min(nodes * (nodes - 1)), &opts),
        Family::ScaleFree => {
            // Choose the per-node attachment count to match |E| closely.
            let m = (edges as f64 / nodes as f64).round().max(1.0) as usize;
            barabasi_albert(nodes, m, &opts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table2() {
        // Taobao's printed degree is |E|/|V|; the KONECT rows are 2|E|/|V|.
        assert!((TAOBAO.average_out_degree() - TAOBAO.reported_degree).abs() < 0.01);
        assert!((TWITTER.average_total_degree() - TWITTER.reported_degree).abs() < 0.01);
        assert!((DIGG.average_total_degree() - DIGG.reported_degree).abs() < 0.01);
        assert!((GNUTELLA.average_total_degree() - GNUTELLA.reported_degree).abs() < 0.01);
    }

    #[test]
    fn synthesized_clone_matches_shape() {
        let g = synthesize(&TAOBAO, 0.1, 1);
        assert_eq!(g.node_count(), 166);
        assert_eq!(g.edge_count(), 1_759);
    }

    #[test]
    fn scale_free_clone_is_close_in_edges() {
        let g = synthesize(&TWITTER, 0.05, 1);
        let want_nodes = (23_370.0f64 * 0.05).round() as usize;
        assert_eq!(g.node_count(), want_nodes);
        // BA hits the edge target only approximately.
        let want_edges = (33_101.0f64 * 0.05).round();
        let got = g.edge_count() as f64;
        assert!(
            (got - want_edges).abs() / want_edges < 0.5,
            "edges {got} vs target {want_edges}"
        );
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize(&DIGG, 0.02, 9);
        let b = synthesize(&DIGG, 0.02, 9);
        assert_eq!(kg_graph::io::to_json(&a), kg_graph::io::to_json(&b));
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        synthesize(&TAOBAO, 0.0, 1);
    }
}
