//! The synthetic vote protocol of Section VII-A.
//!
//! From the paper: *"we generated `N_Q` queries and `N_A` answers
//! randomly linked to a `N_nodes`-node subgraph, with an average degree
//! `N_degree`. After evaluating the similarity between the queries and
//! the answers, we obtained a ranked list of top-k answers for each
//! query. Then, we generated a negative or positive vote by randomly
//! selecting an answer in top-k answers as the best answer of the query.
//! The average position of the best answers for negative votes is set at
//! `N_aveN`."*

use crate::generators::{erdos_renyi, GeneratorOptions};
use kg_graph::{AugmentSpec, Augmented, KnowledgeGraph, NodeId};
use kg_sim::topk::rank_answers;
use kg_sim::SimilarityConfig;
use kg_votes::{Vote, VoteSet};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the vote protocol. Defaults are the paper's
/// (`N_Q = 100`, `N_A = 2379`, `N_degree = 4`, `N_nodes = 10,000`,
/// `k = 20`, `N_aveN = 10`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoteGenConfig {
    /// Number of query nodes `N_Q`.
    pub n_queries: usize,
    /// Number of answer nodes `N_A`.
    pub n_answers: usize,
    /// Size of the entity subgraph queries/answers attach to `N_nodes`
    /// (clamped to the graph size).
    pub subgraph_nodes: usize,
    /// Attachment degree `N_degree` of each query and answer node.
    pub link_degree: usize,
    /// Length of the returned ranked list `k`.
    pub top_k: usize,
    /// Target average best-answer position for negative votes `N_aveN`.
    pub target_best_rank: usize,
    /// Fraction of votes that are positive (the paper's real study had
    /// 53/100).
    pub positive_fraction: f64,
    /// Similarity parameters used to produce the ranked lists.
    pub sim: SimilarityConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VoteGenConfig {
    fn default() -> Self {
        VoteGenConfig {
            n_queries: 100,
            n_answers: 2_379,
            subgraph_nodes: 10_000,
            link_degree: 4,
            top_k: 20,
            target_best_rank: 10,
            positive_fraction: 0.5,
            sim: SimilarityConfig::default(),
            seed: 42,
        }
    }
}

/// Output of [`generate_votes`].
#[derive(Debug, Clone)]
pub struct SyntheticVotes {
    /// The augmented graph: the base entities plus generated query and
    /// answer nodes.
    pub graph: KnowledgeGraph,
    /// The generated query nodes.
    pub queries: Vec<NodeId>,
    /// The generated answer nodes.
    pub answers: Vec<NodeId>,
    /// One vote per usable query (queries whose top-k scores are all zero
    /// are skipped, mirroring the paper's protocol which only votes on
    /// meaningful rankings).
    pub votes: VoteSet,
}

/// Runs the Section VII-A protocol against a base entity graph.
pub fn generate_votes(base: &KnowledgeGraph, cfg: &VoteGenConfig) -> SyntheticVotes {
    assert!(cfg.link_degree >= 1, "need at least one link per node");
    assert!(cfg.top_k >= 2, "top-k must allow a non-first best answer");
    assert!(
        (0.0..=1.0).contains(&cfg.positive_fraction),
        "positive fraction must be a probability"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // Pick the attachment subgraph: a uniform sample of entity nodes.
    let mut pool: Vec<NodeId> = base.nodes().collect();
    pool.shuffle(&mut rng);
    pool.truncate(cfg.subgraph_nodes.min(pool.len()).max(1));

    let mut spec = AugmentSpec::new();
    for qi in 0..cfg.n_queries {
        let links = sample_links(&pool, cfg.link_degree, &mut rng);
        spec.add_query(format!("synthQ{qi}"), links);
    }
    for ai in 0..cfg.n_answers {
        let links = sample_links(&pool, cfg.link_degree, &mut rng);
        spec.add_answer(format!("synthA{ai}"), links);
    }
    let aug = Augmented::build(base, &spec).expect("sampled entities are in range");
    let graph = aug.graph;
    let queries = aug.query_nodes;
    let answers = aug.answer_nodes;

    // Rank and vote.
    let mut votes = VoteSet::new();
    for &q in &queries {
        let ranked = rank_answers(&graph, q, &answers, &cfg.sim, cfg.top_k);
        if ranked.is_empty() || ranked[0].score <= 0.0 {
            continue; // disconnected query: no meaningful ranking to vote on
        }
        // Only the non-zero-score prefix is a meaningful list.
        let list: Vec<NodeId> = ranked
            .iter()
            .take_while(|r| r.score > 0.0)
            .map(|r| r.node)
            .collect();
        let best = if list.len() == 1 || rng.gen::<f64>() < cfg.positive_fraction {
            list[0]
        } else {
            // Negative vote: draw the best-answer position uniformly from
            // [2, 2·N_aveN − 2] so its mean is N_aveN, clamped to the list.
            let hi = (2 * cfg.target_best_rank).saturating_sub(2).max(2);
            let pos = rng.gen_range(2..=hi).min(list.len());
            list[pos - 1]
        };
        votes.push(Vote::new(q, list, best));
    }

    SyntheticVotes {
        graph,
        queries,
        answers,
        votes,
    }
}

/// Parameter ranges for seed-derived random fuzz instances (used by the
/// `kg-fuzz` differential harness). Each inclusive range is sampled
/// uniformly per seed; the defaults produce *tiny* instances — a full
/// {penalty, auglag} × {adam, projgrad, lbfgs} solver matrix must run in
/// milliseconds per case.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceDistribution {
    /// Base entity-node count range.
    pub nodes: (usize, usize),
    /// Edge count as a multiple of the node count.
    pub edges_per_node: (f64, f64),
    /// Query-node count range.
    pub n_queries: (usize, usize),
    /// Answer-node count range.
    pub n_answers: (usize, usize),
    /// Attachment degree range for query/answer nodes.
    pub link_degree: (usize, usize),
    /// Ranked-list length range (`k`, ≥ 2).
    pub top_k: (usize, usize),
    /// Fraction of votes that confirm the current top answer.
    pub positive_fraction: f64,
    /// Similarity parameters (short `L` keeps path enumeration small).
    pub sim: SimilarityConfig,
}

impl Default for InstanceDistribution {
    fn default() -> Self {
        InstanceDistribution {
            nodes: (8, 24),
            edges_per_node: (1.5, 3.0),
            n_queries: (1, 3),
            n_answers: (4, 8),
            link_degree: (2, 3),
            top_k: (3, 4),
            positive_fraction: 0.25,
            sim: SimilarityConfig {
                max_path_len: 3,
                ..SimilarityConfig::default()
            },
        }
    }
}

/// Derives one deterministic random instance from `seed`: a seeded
/// Erdős–Rényi base graph plus a Section VII-A vote batch, with every
/// shape parameter drawn from `dist`. Same seed + same distribution ⇒
/// identical graph and votes, which is what lets the fuzz harness replay
/// any case from its seed alone.
pub fn random_instance(seed: u64, dist: &InstanceDistribution) -> SyntheticVotes {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = rng.gen_range(dist.nodes.0..=dist.nodes.1.max(dist.nodes.0));
    let (flo, fhi) = dist.edges_per_node;
    let factor = rng.gen_range(flo..fhi.max(flo + f64::EPSILON));
    let m = ((n as f64 * factor) as usize).clamp(n, n * (n - 1));
    let cfg = VoteGenConfig {
        n_queries: rng.gen_range(dist.n_queries.0..=dist.n_queries.1.max(dist.n_queries.0)),
        n_answers: rng.gen_range(dist.n_answers.0..=dist.n_answers.1.max(dist.n_answers.0)),
        subgraph_nodes: n,
        link_degree: rng.gen_range(dist.link_degree.0..=dist.link_degree.1.max(dist.link_degree.0)),
        top_k: rng.gen_range(dist.top_k.0.max(2)..=dist.top_k.1.max(dist.top_k.0.max(2))),
        target_best_rank: 2,
        positive_fraction: dist.positive_fraction,
        sim: dist.sim,
        seed: seed ^ 0x9e37_79b9_7f4a_7c15,
    };
    let base = erdos_renyi(
        n,
        m,
        &GeneratorOptions {
            seed: seed.wrapping_mul(0x2545_f491_4f6c_dd1d),
            normalize: true,
        },
    );
    generate_votes(&base, &cfg)
}

/// Samples `degree` distinct entities with unit counts.
fn sample_links(pool: &[NodeId], degree: usize, rng: &mut ChaCha8Rng) -> Vec<(NodeId, f64)> {
    let mut picked: Vec<NodeId> = pool
        .choose_multiple(rng, degree.min(pool.len()))
        .copied()
        .collect();
    picked.sort_unstable();
    picked.into_iter().map(|n| (n, 1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, GeneratorOptions};

    fn small_cfg() -> VoteGenConfig {
        VoteGenConfig {
            n_queries: 20,
            n_answers: 60,
            subgraph_nodes: 150,
            link_degree: 3,
            top_k: 10,
            target_best_rank: 4,
            positive_fraction: 0.4,
            sim: SimilarityConfig::default(),
            seed: 7,
        }
    }

    fn base() -> kg_graph::KnowledgeGraph {
        erdos_renyi(200, 800, &GeneratorOptions::default())
    }

    #[test]
    fn generates_requested_nodes() {
        let out = generate_votes(&base(), &small_cfg());
        assert_eq!(out.queries.len(), 20);
        assert_eq!(out.answers.len(), 60);
        assert_eq!(out.graph.node_count(), 200 + 20 + 60);
    }

    #[test]
    fn votes_reference_valid_ranked_lists() {
        let out = generate_votes(&base(), &small_cfg());
        assert!(!out.votes.is_empty());
        for v in &out.votes.votes {
            assert!(out.queries.contains(&v.query));
            assert!(v.answers.len() <= 10);
            assert!(v.answers.contains(&v.best));
            for a in &v.answers {
                assert!(out.answers.contains(a));
            }
        }
    }

    #[test]
    fn negative_votes_average_near_target() {
        let cfg = VoteGenConfig {
            positive_fraction: 0.0,
            n_queries: 60,
            ..small_cfg()
        };
        let out = generate_votes(&base(), &cfg);
        let neg_ranks: Vec<usize> = out.votes.negatives().map(|(_, v)| v.best_rank()).collect();
        assert!(!neg_ranks.is_empty());
        let mean = neg_ranks.iter().sum::<usize>() as f64 / neg_ranks.len() as f64;
        // Target 4; sampling plus list clamping keeps it in a loose band.
        assert!((2.0..=6.0).contains(&mean), "mean negative rank {mean}");
    }

    #[test]
    fn positive_fraction_one_yields_only_positive_votes() {
        let cfg = VoteGenConfig {
            positive_fraction: 1.0,
            ..small_cfg()
        };
        let out = generate_votes(&base(), &cfg);
        assert!(out.votes.votes.iter().all(|v| v.is_positive()));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_votes(&base(), &small_cfg());
        let b = generate_votes(&base(), &small_cfg());
        assert_eq!(a.votes, b.votes);
    }

    #[test]
    fn answer_links_respect_subgraph() {
        let cfg = VoteGenConfig {
            subgraph_nodes: 10,
            ..small_cfg()
        };
        let out = generate_votes(&base(), &cfg);
        // Each answer's in-edges come from the 10-node pool at most.
        let mut sources: std::collections::HashSet<NodeId> = Default::default();
        for &a in &out.answers {
            for e in out.graph.in_edges(a) {
                sources.insert(e.from);
            }
        }
        assert!(sources.len() <= 10);
    }
}

/// Like [`generate_votes`], but queries and answers attach to entities
/// drawn from a Zipf distribution over the pool instead of uniformly —
/// the realistic regime where a few hot topics receive most questions.
/// Hot topics make vote footprints overlap, which is what exercises the
/// split strategy's conflict handling (Section VI) and the multi-vote
/// solver's conflict resolution.
///
/// `exponent` controls the skew (`0.0` = uniform; `1.0` ≈ classic Zipf).
pub fn generate_zipf_votes(
    base: &KnowledgeGraph,
    cfg: &VoteGenConfig,
    exponent: f64,
) -> SyntheticVotes {
    assert!(exponent >= 0.0, "Zipf exponent must be non-negative");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x5a1f);

    let mut pool: Vec<NodeId> = base.nodes().collect();
    pool.shuffle(&mut rng);
    pool.truncate(cfg.subgraph_nodes.min(pool.len()).max(1));

    // Cumulative Zipf weights over pool ranks.
    let weights: Vec<f64> = (1..=pool.len())
        .map(|r| 1.0 / (r as f64).powf(exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }
    let zipf_links = |rng: &mut ChaCha8Rng, degree: usize| -> Vec<(NodeId, f64)> {
        let mut picked: Vec<NodeId> = Vec::with_capacity(degree);
        let mut guard = 0;
        while picked.len() < degree.min(pool.len()) && guard < 100 * degree {
            guard += 1;
            let u = rng.gen::<f64>();
            let idx = cumulative.partition_point(|&c| c < u).min(pool.len() - 1);
            if !picked.contains(&pool[idx]) {
                picked.push(pool[idx]);
            }
        }
        picked.sort_unstable();
        picked.into_iter().map(|n| (n, 1.0)).collect()
    };

    let mut spec = AugmentSpec::new();
    for qi in 0..cfg.n_queries {
        let links = zipf_links(&mut rng, cfg.link_degree);
        spec.add_query(format!("zipfQ{qi}"), links);
    }
    for ai in 0..cfg.n_answers {
        let links = zipf_links(&mut rng, cfg.link_degree);
        spec.add_answer(format!("zipfA{ai}"), links);
    }
    let aug = Augmented::build(base, &spec).expect("sampled entities are in range");
    let graph = aug.graph;
    let queries = aug.query_nodes;
    let answers = aug.answer_nodes;

    let mut votes = VoteSet::new();
    for &q in &queries {
        let ranked = rank_answers(&graph, q, &answers, &cfg.sim, cfg.top_k);
        if ranked.is_empty() || ranked[0].score <= 0.0 {
            continue;
        }
        let list: Vec<NodeId> = ranked
            .iter()
            .take_while(|r| r.score > 0.0)
            .map(|r| r.node)
            .collect();
        let best = if list.len() == 1 || rng.gen::<f64>() < cfg.positive_fraction {
            list[0]
        } else {
            let hi = (2 * cfg.target_best_rank).saturating_sub(2).max(2);
            let pos = rng.gen_range(2..=hi).min(list.len());
            list[pos - 1]
        };
        votes.push(Vote::new(q, list, best));
    }

    SyntheticVotes {
        graph,
        queries,
        answers,
        votes,
    }
}

#[cfg(test)]
mod zipf_tests {
    use super::*;
    use crate::generators::{erdos_renyi, GeneratorOptions};

    fn base() -> KnowledgeGraph {
        erdos_renyi(300, 1200, &GeneratorOptions::default())
    }

    fn cfg() -> VoteGenConfig {
        VoteGenConfig {
            n_queries: 40,
            n_answers: 80,
            subgraph_nodes: 300,
            link_degree: 3,
            top_k: 10,
            target_best_rank: 4,
            positive_fraction: 0.4,
            sim: kg_sim::SimilarityConfig::default(),
            seed: 11,
        }
    }

    #[test]
    fn zipf_votes_have_valid_structure() {
        let out = generate_zipf_votes(&base(), &cfg(), 1.1);
        assert_eq!(out.queries.len(), 40);
        assert!(!out.votes.is_empty());
        for v in &out.votes.votes {
            assert!(v.answers.contains(&v.best));
        }
    }

    #[test]
    fn skewed_attachment_concentrates_on_hot_entities() {
        let g = base();
        let uniform = generate_zipf_votes(&g, &cfg(), 0.0);
        let skewed = generate_zipf_votes(&g, &cfg(), 1.5);
        // Count distinct entities queried, per regime: the skewed one must
        // use significantly fewer.
        let distinct = |w: &SyntheticVotes| -> usize {
            let mut s: std::collections::HashSet<NodeId> = Default::default();
            for &q in &w.queries {
                for e in w.graph.out_edges(q) {
                    s.insert(e.to);
                }
            }
            s.len()
        };
        let du = distinct(&uniform);
        let ds = distinct(&skewed);
        assert!(
            (ds as f64) < 0.8 * du as f64,
            "skewed {ds} vs uniform {du} distinct entities"
        );
    }

    #[test]
    fn zipf_generation_is_deterministic() {
        let g = base();
        let a = generate_zipf_votes(&g, &cfg(), 1.0);
        let b = generate_zipf_votes(&g, &cfg(), 1.0);
        assert_eq!(a.votes, b.votes);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn negative_exponent_panics() {
        generate_zipf_votes(&base(), &cfg(), -1.0);
    }
}
