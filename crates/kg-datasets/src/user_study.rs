//! Simulated user study (substitute for the paper's five-volunteer Taobao
//! study — see DESIGN.md).
//!
//! A *ground-truth* knowledge graph is built first; the *deployed* graph
//! is the same topology with corrupted weights (multiplicative noise on
//! every entity edge plus a fraction of edges completely re-drawn —
//! modelling source-data and statistical errors, the paper's stated
//! motivation). Simulated users see the deployed system's top-k list and
//! vote for the answer the ground truth ranks best, which is exactly the
//! information content of a real best-answer vote. A held-out test set
//! measures how well a graph ranks the ground-truth best answers — before
//! and after vote-based optimization.

use crate::generators::{erdos_renyi, GeneratorOptions};
use kg_graph::{AugmentSpec, Augmented, KnowledgeGraph, NodeId, NodeKind};
use kg_sim::topk::rank_answers;
use kg_sim::{phi_vector, SimilarityConfig};
use kg_votes::{Vote, VoteSet};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the simulated study. Defaults shrink the paper's sizes
/// (1,663 entities / 17,591 edges / 2,379 docs / 100+100 queries) to a
/// fast profile; the Table IV/V harness passes the full sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserStudyConfig {
    /// Entity count of the knowledge graph.
    pub entities: usize,
    /// Entity-entity edge count.
    pub edges: usize,
    /// Number of answer documents.
    pub n_docs: usize,
    /// Number of voting (training) questions.
    pub n_votes: usize,
    /// Number of held-out test questions.
    pub n_test: usize,
    /// Length of the ranked list shown to voters.
    pub top_k: usize,
    /// Entities linked by each query/answer node.
    pub link_degree: usize,
    /// Relative multiplicative noise on deployed entity weights
    /// (uniform in `[1−noise, 1+noise]`).
    pub noise: f64,
    /// Fraction of entity edges whose deployed weight is re-drawn
    /// uniformly (gross errors).
    pub corrupt_fraction: f64,
    /// Fraction of a test question's entity links shared with the
    /// training question it derives from. The paper's premise is that
    /// optimization helps "if a similar question is asked" — test
    /// questions are perturbed variants of voting questions, not fresh
    /// uniform draws.
    pub test_overlap: f64,
    /// Similarity parameters.
    pub sim: SimilarityConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UserStudyConfig {
    fn default() -> Self {
        UserStudyConfig {
            entities: 300,
            edges: 3_000,
            n_docs: 150,
            n_votes: 40,
            n_test: 40,
            top_k: 10,
            link_degree: 4,
            noise: 0.6,
            corrupt_fraction: 0.2,
            test_overlap: 0.9,
            sim: SimilarityConfig::default(),
            seed: 42,
        }
    }
}

impl UserStudyConfig {
    /// The paper-scale profile: Taobao's graph and study sizes.
    pub fn paper_scale() -> Self {
        UserStudyConfig {
            entities: 1_663,
            edges: 17_591,
            n_docs: 2_379,
            n_votes: 100,
            n_test: 100,
            ..Default::default()
        }
    }
}

/// The simulated study: graphs, votes and test set.
#[derive(Debug, Clone)]
pub struct UserStudy {
    /// Ground-truth graph (weights the users' judgments follow).
    pub truth: KnowledgeGraph,
    /// Deployed graph (corrupted weights; the one to optimize).
    pub deployed: KnowledgeGraph,
    /// Votes collected from the simulated users.
    pub votes: VoteSet,
    /// Query nodes of the voting questions.
    pub train_queries: Vec<NodeId>,
    /// Query nodes of the held-out test questions.
    pub test_queries: Vec<NodeId>,
    /// All answer nodes.
    pub answers: Vec<NodeId>,
    /// Ground-truth best answer for each test query (parallel to
    /// `test_queries`).
    pub test_best: Vec<NodeId>,
}

impl UserStudy {
    /// Rank of each test query's ground-truth best answer under `graph`
    /// (1-based, parallel to `test_queries`).
    pub fn test_ranks(&self, graph: &KnowledgeGraph, sim: &SimilarityConfig) -> Vec<usize> {
        self.test_queries
            .iter()
            .zip(&self.test_best)
            .map(|(&q, &best)| {
                rank_answers(graph, q, &self.answers, sim, self.answers.len())
                    .into_iter()
                    .find(|r| r.node == best)
                    .map(|r| r.rank)
                    .expect("best answer is among the answers")
            })
            .collect()
    }
}

/// Builds the simulated study.
pub fn simulate_user_study(cfg: &UserStudyConfig) -> UserStudy {
    assert!(
        cfg.noise >= 0.0 && cfg.noise < 1.0,
        "noise must be in [0,1)"
    );
    assert!(
        (0.0..=1.0).contains(&cfg.corrupt_fraction),
        "corrupt fraction must be a probability"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // Ground-truth entity graph.
    let base = erdos_renyi(
        cfg.entities,
        cfg.edges.min(cfg.entities * (cfg.entities - 1)),
        &GeneratorOptions {
            seed: cfg.seed ^ 0x9e37_79b9,
            normalize: true,
        },
    );
    let pool: Vec<NodeId> = base.nodes().collect();

    // Attach answers, then train and test queries.
    let mut spec = AugmentSpec::new();
    for d in 0..cfg.n_docs {
        spec.add_answer(format!("doc{d}"), links(&pool, cfg.link_degree, &mut rng));
    }
    let mut train_links: Vec<Vec<(NodeId, f64)>> = Vec::with_capacity(cfg.n_votes);
    for qi in 0..cfg.n_votes {
        let l = links(&pool, cfg.link_degree, &mut rng);
        spec.add_query(format!("train{qi}"), l.clone());
        train_links.push(l);
    }
    for qi in 0..cfg.n_test {
        // A test question is a perturbed variant of a voting question:
        // each entity link is kept with probability `test_overlap`,
        // otherwise swapped for a random one.
        let source = &train_links[qi % train_links.len().max(1)];
        let mut chosen: Vec<NodeId> = Vec::with_capacity(source.len());
        for &(e, _) in source {
            let keep = rng.gen::<f64>() < cfg.test_overlap;
            let pick = if keep {
                e
            } else {
                *pool.choose(&mut rng).expect("non-empty pool")
            };
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        chosen.sort_unstable();
        spec.add_query(
            format!("test{qi}"),
            chosen.into_iter().map(|n| (n, 1.0)).collect(),
        );
    }
    let aug = Augmented::build(&base, &spec).expect("entities in range");
    let truth = aug.graph;
    let answers = aug.answer_nodes;
    let train_queries: Vec<NodeId> = aug.query_nodes[..cfg.n_votes].to_vec();
    let test_queries_all: Vec<NodeId> = aug.query_nodes[cfg.n_votes..].to_vec();

    // Corrupt entity-entity weights into the deployed graph.
    let mut deployed = truth.clone();
    let entity_edges: Vec<_> = deployed
        .edges()
        .filter(|e| {
            deployed.kind(e.from) == NodeKind::Entity && deployed.kind(e.to) == NodeKind::Entity
        })
        .map(|e| e.edge)
        .collect();
    for e in entity_edges {
        let w = deployed.weight(e);
        let new_w = if rng.gen::<f64>() < cfg.corrupt_fraction {
            rng.gen_range(0.01..1.0)
        } else {
            w * rng.gen_range(1.0 - cfg.noise..1.0 + cfg.noise)
        };
        // No re-normalization: rows that no longer sum to one are exactly
        // the "source data errors" the paper motivates; individual weights
        // stay inside (0, 1].
        deployed
            .set_weight(e, new_w.clamp(1e-6, 1.0))
            .expect("clamped weight is valid");
    }

    // Votes: users judge the deployed top-k by the ground truth.
    let mut votes = VoteSet::new();
    for &q in &train_queries {
        let ranked = rank_answers(&deployed, q, &answers, &cfg.sim, cfg.top_k);
        let list: Vec<NodeId> = ranked
            .iter()
            .take_while(|r| r.score > 0.0)
            .map(|r| r.node)
            .collect();
        if list.len() < 2 {
            continue;
        }
        let truth_phi = phi_vector(&truth, q, &cfg.sim);
        let best = *list
            .iter()
            .max_by(|&&a, &&b| {
                truth_phi[a.index()]
                    .total_cmp(&truth_phi[b.index()])
                    .then(b.cmp(&a))
            })
            .expect("non-empty list");
        votes.push(Vote::new(q, list, best));
    }

    // Test set: ground-truth best over all answers; drop queries the
    // truth graph cannot rank at all.
    let mut test_queries = Vec::with_capacity(test_queries_all.len());
    let mut test_best = Vec::with_capacity(test_queries_all.len());
    for &q in &test_queries_all {
        let truth_phi = phi_vector(&truth, q, &cfg.sim);
        let (best, score) = answers
            .iter()
            .map(|&a| (a, truth_phi[a.index()]))
            .max_by(|(a, sa), (b, sb)| sa.total_cmp(sb).then(b.cmp(a)))
            .expect("answers exist");
        if score > 0.0 {
            test_queries.push(q);
            test_best.push(best);
        }
    }

    UserStudy {
        truth,
        deployed,
        votes,
        train_queries,
        test_queries,
        answers,
        test_best,
    }
}

fn links(pool: &[NodeId], degree: usize, rng: &mut ChaCha8Rng) -> Vec<(NodeId, f64)> {
    let mut picked: Vec<NodeId> = pool
        .choose_multiple(rng, degree.min(pool.len()))
        .copied()
        .collect();
    picked.sort_unstable();
    picked.into_iter().map(|n| (n, 1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> UserStudyConfig {
        UserStudyConfig {
            entities: 80,
            edges: 500,
            n_docs: 40,
            n_votes: 15,
            n_test: 15,
            top_k: 8,
            ..Default::default()
        }
    }

    #[test]
    fn shapes_match_config() {
        let s = simulate_user_study(&tiny());
        assert_eq!(s.answers.len(), 40);
        assert_eq!(s.train_queries.len(), 15);
        assert!(s.test_queries.len() <= 15);
        assert_eq!(s.test_queries.len(), s.test_best.len());
        assert!(!s.votes.is_empty());
    }

    #[test]
    fn truth_and_deployed_share_topology_but_not_weights() {
        let s = simulate_user_study(&tiny());
        assert_eq!(s.truth.edge_count(), s.deployed.edge_count());
        let diff: f64 = s
            .truth
            .weights()
            .iter()
            .zip(s.deployed.weights())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.01, "deployed graph was not corrupted");
    }

    #[test]
    fn query_and_answer_edges_are_uncorrupted() {
        let s = simulate_user_study(&tiny());
        for e in s.truth.edges() {
            let from_kind = s.truth.kind(e.from);
            let to_kind = s.truth.kind(e.to);
            if from_kind == NodeKind::Query || to_kind == NodeKind::Answer {
                assert_eq!(
                    s.deployed.weight(e.edge),
                    e.weight,
                    "augmentation edge {:?} should be identical",
                    e.edge
                );
            }
        }
    }

    #[test]
    fn votes_follow_the_ground_truth() {
        let s = simulate_user_study(&tiny());
        let cfg = tiny();
        for v in &s.votes.votes {
            let phi = phi_vector(&s.truth, v.query, &cfg.sim);
            let best_score = phi[v.best.index()];
            for a in &v.answers {
                assert!(
                    best_score >= phi[a.index()] - 1e-15,
                    "vote best is not truth-optimal within the list"
                );
            }
        }
    }

    #[test]
    fn deployed_ranks_worse_than_truth_on_test_set() {
        let s = simulate_user_study(&tiny());
        let cfg = tiny();
        let truth_ranks = s.test_ranks(&s.truth, &cfg.sim);
        let deployed_ranks = s.test_ranks(&s.deployed, &cfg.sim);
        let truth_mean: f64 =
            truth_ranks.iter().sum::<usize>() as f64 / truth_ranks.len().max(1) as f64;
        let deployed_mean: f64 =
            deployed_ranks.iter().sum::<usize>() as f64 / deployed_ranks.len().max(1) as f64;
        // The truth graph ranks its own best answers (near-)perfectly; the
        // corrupted deployment must be strictly worse on average.
        assert!(
            truth_mean <= deployed_mean,
            "{truth_mean} vs {deployed_mean}"
        );
        assert!(
            truth_mean < 1.5,
            "truth should rank its best answers on top"
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = simulate_user_study(&tiny());
        let b = simulate_user_study(&tiny());
        assert_eq!(a.votes, b.votes);
        assert_eq!(a.test_best, b.test_best);
        assert_eq!(
            kg_graph::io::to_json(&a.deployed),
            kg_graph::io::to_json(&b.deployed)
        );
    }
}
