//! Seeded random digraph generators.

use kg_graph::{GraphBuilder, KnowledgeGraph, NodeId, NodeKind};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Common generator knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorOptions {
    /// RNG seed; identical seeds produce identical graphs.
    pub seed: u64,
    /// Normalize each node's out-weights to sum to one after generation.
    pub normalize: bool,
}

impl Default for GeneratorOptions {
    fn default() -> Self {
        GeneratorOptions {
            seed: 42,
            normalize: true,
        }
    }
}

/// Erdős–Rényi `G(n, m)` digraph: exactly `m` distinct directed edges
/// chosen uniformly (no self-loops), with weights drawn uniformly from
/// `(0.05, 1.0)` before optional normalization.
pub fn erdos_renyi(n: usize, m: usize, opts: &GeneratorOptions) -> KnowledgeGraph {
    assert!(n >= 2, "need at least two nodes");
    let max_edges = n * (n - 1);
    assert!(
        m <= max_edges,
        "{m} edges requested but a {n}-node simple digraph holds at most {max_edges}"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for i in 0..n {
        b.add_node(format!("v{i}"), NodeKind::Entity);
    }
    let mut seen = std::collections::HashSet::with_capacity(m);
    while seen.len() < m {
        let from = rng.gen_range(0..n as u32);
        let to = rng.gen_range(0..n as u32);
        if from == to || !seen.insert((from, to)) {
            continue;
        }
        let w = rng.gen_range(0.05..1.0);
        b.add_edge(NodeId(from), NodeId(to), w)
            .expect("pair is fresh");
    }
    finish(b, opts)
}

/// Barabási–Albert-style scale-free digraph: nodes arrive one at a time
/// and attach `m_per_node` out-edges to targets chosen by preferential
/// attachment (probability proportional to current in-degree + 1).
/// Produces the heavy-tailed degree distributions typical of the paper's
/// social-network datasets.
pub fn barabasi_albert(n: usize, m_per_node: usize, opts: &GeneratorOptions) -> KnowledgeGraph {
    assert!(n >= 2 && m_per_node >= 1, "need n >= 2 and m >= 1");
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut b = GraphBuilder::with_capacity(n, n * m_per_node);
    for i in 0..n {
        b.add_node(format!("v{i}"), NodeKind::Entity);
    }
    // Repeated-target list implements preferential attachment in O(1).
    let mut targets: Vec<u32> = vec![0];
    for v in 1..n as u32 {
        let picks = m_per_node.min(v as usize);
        let mut chosen = std::collections::HashSet::with_capacity(picks);
        let mut guard = 0;
        while chosen.len() < picks && guard < 50 * picks {
            guard += 1;
            let t = *targets.choose(&mut rng).expect("non-empty");
            if t != v {
                chosen.insert(t);
            }
        }
        // Fallback for pathological early rounds: connect to v-1.
        if chosen.is_empty() {
            chosen.insert(v - 1);
        }
        // Sort for deterministic edge-id assignment (HashSet order varies).
        let mut chosen: Vec<u32> = chosen.into_iter().collect();
        chosen.sort_unstable();
        for t in chosen {
            let w = rng.gen_range(0.05..1.0);
            b.add_edge(NodeId(v), NodeId(t), w).expect("fresh pair");
            targets.push(t);
        }
        targets.push(v);
    }
    finish(b, opts)
}

fn finish(b: GraphBuilder, opts: &GeneratorOptions) -> KnowledgeGraph {
    let mut g = b.build();
    if opts.normalize {
        g.normalize_out_edges();
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::GraphStats;

    #[test]
    fn erdos_renyi_hits_exact_counts() {
        let g = erdos_renyi(100, 400, &GeneratorOptions::default());
        assert_eq!(g.node_count(), 100);
        assert_eq!(g.edge_count(), 400);
        assert!(g.is_row_stochastic(1e-9));
    }

    #[test]
    fn erdos_renyi_is_deterministic_per_seed() {
        let a = erdos_renyi(50, 200, &GeneratorOptions::default());
        let b = erdos_renyi(50, 200, &GeneratorOptions::default());
        assert_eq!(kg_graph::io::to_json(&a), kg_graph::io::to_json(&b));
        let c = erdos_renyi(
            50,
            200,
            &GeneratorOptions {
                seed: 7,
                ..Default::default()
            },
        );
        assert_ne!(kg_graph::io::to_json(&a), kg_graph::io::to_json(&c));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn erdos_renyi_rejects_impossible_density() {
        erdos_renyi(3, 100, &GeneratorOptions::default());
    }

    #[test]
    fn barabasi_albert_shape() {
        let g = barabasi_albert(200, 3, &GeneratorOptions::default());
        assert_eq!(g.node_count(), 200);
        // Every node after the first attaches up to 3 edges.
        let stats = GraphStats::of(&g);
        assert!(stats.edges >= 197);
        assert!(stats.edges <= 3 * 200);
        assert!(g.is_row_stochastic(1e-9));
    }

    #[test]
    fn barabasi_albert_has_heavy_tail() {
        let g = barabasi_albert(500, 2, &GeneratorOptions::default());
        // Max in-degree should far exceed the mean in-degree for a
        // preferential-attachment graph.
        let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap();
        let mean_in = g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            max_in as f64 > 4.0 * mean_in,
            "max in-degree {max_in} vs mean {mean_in}"
        );
    }

    #[test]
    fn unnormalized_option_keeps_raw_weights() {
        let opts = GeneratorOptions {
            normalize: false,
            ..Default::default()
        };
        let g = erdos_renyi(30, 100, &opts);
        // Raw weights in (0.05, 1): at least one row won't sum to 1.
        assert!(!g.is_row_stochastic(1e-6));
    }
}
