//! Topic-model corpus generator: produces a Taobao-flavoured synthetic
//! HELP-document corpus for end-to-end demos over `kg-qa`.
//!
//! Each topic owns a pool of domain terms; a document mixes one dominant
//! topic with background vocabulary, so the resulting co-occurrence KG
//! has the block structure (topical sub-graphs) the paper's split
//! strategy assumes ("the entities of athletes will be distributed in the
//! sub-graph which represents Sports").

use kg_qa::corpus::{Corpus, Document};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Built-in e-commerce support topics (terms mimic the paper's Taobao
/// examples: Juhuasuan rules, refunds, carts, delivery, accounts...).
pub const TOPICS: &[(&str, &[&str])] = &[
    (
        "refund",
        &[
            "refund",
            "return",
            "money",
            "order",
            "seller",
            "dispute",
            "apply",
            "deadline",
            "juhuasuan",
            "rule",
        ],
    ),
    (
        "cart",
        &[
            "cart",
            "commodity",
            "purchase",
            "guide",
            "checkout",
            "quantity",
            "stock",
            "favorite",
            "price",
            "discount",
        ],
    ),
    (
        "delivery",
        &[
            "delivery", "express", "package", "tracking", "address", "courier", "shipping",
            "delay", "receipt", "sign",
        ],
    ),
    (
        "account",
        &[
            "account", "password", "login", "verify", "phone", "binding", "security", "identity",
            "reset", "profile",
        ],
    ),
    (
        "payment",
        &[
            "payment",
            "alipay",
            "balance",
            "deduct",
            "invoice",
            "bill",
            "installment",
            "credit",
            "limit",
            "fail",
        ],
    ),
];

/// Corpus-generation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusGenConfig {
    /// Number of documents to generate.
    pub n_docs: usize,
    /// Terms per document body.
    pub terms_per_doc: usize,
    /// Probability that a term is drawn from the document's dominant
    /// topic rather than a random other topic.
    pub topic_coherence: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusGenConfig {
    fn default() -> Self {
        CorpusGenConfig {
            n_docs: 120,
            terms_per_doc: 18,
            topic_coherence: 0.8,
            seed: 42,
        }
    }
}

/// Generates the corpus plus, for each document, its dominant topic index
/// (useful as ground truth in demos).
pub fn generate_corpus(cfg: &CorpusGenConfig) -> (Corpus, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&cfg.topic_coherence),
        "coherence must be a probability"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut corpus = Corpus::new();
    let mut topics = Vec::with_capacity(cfg.n_docs);
    for d in 0..cfg.n_docs {
        let topic = d % TOPICS.len();
        let (topic_name, topic_terms) = TOPICS[topic];
        let mut words = Vec::with_capacity(cfg.terms_per_doc);
        for _ in 0..cfg.terms_per_doc {
            let from_topic = rng.gen::<f64>() < cfg.topic_coherence;
            let pool = if from_topic {
                topic_terms
            } else {
                TOPICS[rng.gen_range(0..TOPICS.len())].1
            };
            words.push(*pool.choose(&mut rng).expect("non-empty topic"));
        }
        let title = format!("{topic_name} help {d}");
        corpus.push(Document::new(format!("doc-{d}"), title, words.join(" ")));
        topics.push(topic);
    }
    (corpus, topics)
}

/// Generates `n` user questions, each drawn from one topic; returns the
/// questions and their topic indices.
pub fn generate_questions(
    n: usize,
    terms_per_question: usize,
    seed: u64,
) -> (Vec<String>, Vec<usize>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut questions = Vec::with_capacity(n);
    let mut topics = Vec::with_capacity(n);
    for _ in 0..n {
        let topic = rng.gen_range(0..TOPICS.len());
        let terms: Vec<&str> = TOPICS[topic]
            .1
            .choose_multiple(&mut rng, terms_per_question)
            .copied()
            .collect();
        questions.push(format!("how to {}", terms.join(" ")));
        topics.push(topic);
    }
    (questions, topics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_documents() {
        let (c, topics) = generate_corpus(&CorpusGenConfig::default());
        assert_eq!(c.len(), 120);
        assert_eq!(topics.len(), 120);
        assert!(topics.iter().all(|&t| t < TOPICS.len()));
    }

    #[test]
    fn documents_are_topically_coherent() {
        let cfg = CorpusGenConfig {
            topic_coherence: 1.0,
            ..Default::default()
        };
        let (c, topics) = generate_corpus(&cfg);
        for (doc, &t) in c.docs.iter().zip(&topics) {
            let terms = TOPICS[t].1;
            for w in doc.text.split(' ') {
                assert!(terms.contains(&w), "term {w} outside topic {t}");
            }
        }
    }

    #[test]
    fn questions_use_topic_terms() {
        let (qs, topics) = generate_questions(10, 3, 1);
        assert_eq!(qs.len(), 10);
        for (q, &t) in qs.iter().zip(&topics) {
            let terms = TOPICS[t].1;
            let used: Vec<&str> = q.split(' ').filter(|w| terms.contains(w)).collect();
            assert!(used.len() >= 3, "question {q:?} vs topic {t}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = generate_corpus(&CorpusGenConfig::default());
        let (b, _) = generate_corpus(&CorpusGenConfig::default());
        assert_eq!(a, b);
    }
}
