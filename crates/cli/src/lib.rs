//! Implementation of the `votekg` command-line tool.
//!
//! The CLI persists a *system bundle* (knowledge graph + vocabulary +
//! answer nodes + similarity settings) as JSON and a vote log as JSON
//! lines, and exposes the paper's workflow as subcommands:
//!
//! ```text
//! votekg gen-corpus --docs 120 --out corpus.json        # demo corpus
//! votekg build --corpus corpus.json --out system.json   # corpus -> KG
//! votekg ask --system system.json --question "refund an order"
//! votekg vote --system system.json --log votes.jsonl \
//!             --question "refund an order" --best doc-3
//! votekg optimize --system system.json --log votes.jsonl --strategy multi
//! votekg stats --system system.json
//! ```
//!
//! All command functions are plain library functions over paths and
//! writers so the integration tests can drive them without spawning
//! processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod commands;
pub mod error;
pub mod fuzz;
pub mod serve;
pub mod trace;

pub use bundle::SystemBundle;
pub use commands::{
    ask, build, explain, gen_corpus, optimize, optimize_instrumented, recover, stats, vote,
    AskOutcome, OptimizeStrategy, RecoverOutcome, TelemetryMode,
};
pub use error::CliError;
pub use fuzz::{fuzz_campaign, fuzz_replay, parse_inject_skew, parse_seed_range, FuzzArgs};
pub use serve::{serve, ServeArgs};
pub use trace::{parse_chrome_trace, trace_export, trace_record, trace_report, ParsedTrace};
