//! `votekg serve`: the network front-end over a persisted system
//! bundle.
//!
//! Loads the bundle, wraps it in a [`votekg::Framework`] (durable when
//! `--wal DIR` is given — votes are then fsynced to the write-ahead log
//! before they are acknowledged), and runs a [`kg_server::KgServer`]
//! until `POST /shutdown` arrives or `--max-seconds` elapses. Prints
//! exactly one `listening on HOST:PORT` line to stdout once the socket
//! is bound, so scripts and tests can discover an OS-assigned port.

use crate::bundle::SystemBundle;
use crate::error::CliError;
use kg_server::{DrainReport, KgServer, ServerConfig};
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Everything `votekg serve` needs.
#[derive(Debug, Clone)]
pub struct ServeArgs {
    /// Path of the system bundle to serve.
    pub system: PathBuf,
    /// Bind address (port 0 picks a free port).
    pub addr: String,
    /// Connection-handling worker threads.
    pub server_workers: usize,
    /// Serving-cache re-rank workers (1 = inline; results identical).
    pub serve_workers: usize,
    /// Serving-cache shards (0 keeps the default).
    pub shards: usize,
    /// Bounded accept-queue depth.
    pub queue_depth: usize,
    /// Per-socket read timeout.
    pub read_timeout: Duration,
    /// Durable directory: arms the vote WAL and fsynced acks.
    pub wal: Option<PathBuf>,
    /// Hard wall-clock cap; the server drains itself when it elapses
    /// (keeps orphaned test servers from lingering).
    pub max_seconds: Option<u64>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            system: PathBuf::new(),
            addr: "127.0.0.1:0".to_string(),
            server_workers: 4,
            serve_workers: 1,
            shards: 0,
            queue_depth: 128,
            read_timeout: Duration::from_secs(5),
            wal: None,
            max_seconds: None,
        }
    }
}

/// Serves the bundle until shutdown, returning the drain report.
pub fn serve(args: &ServeArgs) -> Result<DrainReport, CliError> {
    let bundle = SystemBundle::load(&args.system)?;
    let (qa, _doc_ids) = bundle.into_system()?;
    let mut config = votekg::FrameworkConfig::default();
    config.single.encode.sim = qa.sim;
    config.multi.encode.sim = qa.sim;
    config.split_merge.multi.encode.sim = qa.sim;

    let mut fw = match &args.wal {
        Some(wal_dir) => {
            let opts = votekg::DurableOptions {
                snapshot_every: 4,
                ..Default::default()
            };
            let (fw, recovery) = votekg::Framework::open_durable(wal_dir, qa.graph, config, opts)
                .map_err(|e| CliError::Wal(e.to_string()))?;
            if recovery.votes_recovered > 0 || recovery.rounds_applied > 0 {
                eprintln!(
                    "recovered from {}: version {}, {} round(s) applied, {} pending vote(s)",
                    wal_dir.display(),
                    recovery.recovered_version,
                    recovery.rounds_applied,
                    recovery.votes_recovered
                );
            }
            fw
        }
        None => votekg::Framework::new(qa.graph, config),
    };
    fw = fw.with_serve_workers(args.serve_workers.max(1));
    if args.shards > 0 {
        fw = fw.with_serve_shards(args.shards);
    }

    let server = KgServer::start(
        fw,
        ServerConfig {
            addr: args.addr.clone(),
            workers: args.server_workers,
            queue_depth: args.queue_depth,
            read_timeout: args.read_timeout,
            ..Default::default()
        },
    )
    .map_err(|e| CliError::io(args.addr.clone(), e))?;

    // The discovery line: must reach the pipe before we block, so flush
    // past stdout's block buffering explicitly.
    {
        let mut out = std::io::stdout();
        writeln!(out, "listening on {}", server.addr())
            .and_then(|()| out.flush())
            .map_err(|e| CliError::io("stdout", e))?;
    }

    let started = Instant::now();
    loop {
        if server.shutdown_requested() {
            break;
        }
        if let Some(max) = args.max_seconds {
            if started.elapsed() >= Duration::from_secs(max) {
                eprintln!("serve: --max-seconds {max} elapsed, draining");
                server.request_shutdown();
                break;
            }
        }
        std::thread::park_timeout(Duration::from_millis(25));
    }
    Ok(server.shutdown())
}
