//! The `votekg trace` subcommand: record a flight-recorder trace of an
//! optimization run, round-trip/validate Chrome trace-event files, and
//! render the per-round timeline report (see DESIGN.md "Observability").
//!
//! Trace files are the Chrome "JSON Array Format" written by
//! [`kg_telemetry::chrome_trace_json`]: every `X` (complete-span) event
//! carries exact nanosecond `ts_ns`/`dur_ns` in its `args`, so parsing a
//! file back recovers the spans losslessly. `otherData.schema` must be
//! [`kg_telemetry::TRACE_SCHEMA`].

use crate::commands::{optimize_inner, OptimizeStrategy};
use crate::error::CliError;
use kg_telemetry::{TimelineReport, TraceSpan, TRACE_SCHEMA};
use kg_votes::OptimizationReport;
use serde::Value;
use std::path::Path;

/// A trace file parsed back into spans, with its header metadata.
#[derive(Debug, Clone)]
pub struct ParsedTrace {
    /// Completed (`X`) spans, in file order.
    pub spans: Vec<TraceSpan>,
    /// Total `traceEvents` entries of any kind.
    pub events: usize,
    /// `otherData.dropped_events` — events lost to ring overwrite.
    pub dropped: u64,
}

/// `votekg trace record`: runs one optimization pass with the flight
/// recorder on and writes the Chrome trace to `out`. Unlike
/// `votekg optimize --trace`, the optimized bundle is **not** persisted —
/// recording is a pure observation of the run.
pub fn trace_record(
    system_path: &Path,
    log_path: &Path,
    strategy: OptimizeStrategy,
    batch: usize,
    out: &Path,
) -> Result<(OptimizationReport, ParsedTrace), CliError> {
    kg_telemetry::reset();
    kg_telemetry::enable();
    kg_telemetry::start_recording();
    let result = optimize_inner(system_path, log_path, strategy, batch, None, 1, false, None);
    kg_telemetry::stop_recording();
    let json = kg_telemetry::chrome_trace_json();
    kg_telemetry::disable();
    let report = result?;
    std::fs::write(out, &json).map_err(|e| CliError::io(out.display().to_string(), e))?;
    // Parse our own output: guarantees everything `record` writes is
    // loadable by `export`/`report` (and any Chrome-format viewer).
    let parsed = parse_chrome_trace(&json)
        .map_err(|e| CliError::Trace(format!("recorded trace failed to round-trip: {e}")))?;
    Ok((report, parsed))
}

fn bad(msg: impl Into<String>) -> CliError {
    CliError::Trace(msg.into())
}

fn as_number(v: &Value) -> Option<f64> {
    match *v {
        Value::UInt(u) => Some(u as f64),
        Value::Int(i) => Some(i as f64),
        Value::Float(f) => Some(f),
        _ => None,
    }
}

fn ns_of(event: &Value, exact_key: &str, us_key: &str) -> Option<u64> {
    // Prefer the exact nanosecond value our exporter stashes in `args`;
    // fall back to the Chrome-standard microsecond field (possibly
    // fractional) for traces produced by other tools.
    if let Some(ns) = event
        .get("args")
        .and_then(|args| args.get(exact_key))
        .and_then(Value::as_u64)
    {
        return Some(ns);
    }
    event
        .get(us_key)
        .and_then(as_number)
        .map(|us| (us * 1_000.0).round() as u64)
}

/// Parses Chrome trace-event JSON, validating the `votekg` schema tag
/// and lifting every complete (`X`) span back into a [`TraceSpan`].
pub fn parse_chrome_trace(json: &str) -> Result<ParsedTrace, CliError> {
    let doc: Value = serde_json::from_str(json).map_err(|e| bad(format!("not valid JSON: {e}")))?;
    let other_data = doc.get("otherData");
    let schema = other_data
        .and_then(|o| o.get("schema"))
        .and_then(Value::as_str)
        .unwrap_or("<missing>");
    if schema != TRACE_SCHEMA {
        return Err(bad(format!(
            "unsupported trace schema {schema:?} (expected {TRACE_SCHEMA:?})"
        )));
    }
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| bad("missing traceEvents array"))?;
    let mut spans = Vec::new();
    for (i, event) in events.iter().enumerate() {
        if event.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let name = event
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| bad(format!("event {i}: X event without a name")))?;
        let thread = event
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| bad(format!("event {i}: X event without a tid")))?;
        let ts_ns = ns_of(event, "ts_ns", "ts")
            .ok_or_else(|| bad(format!("event {i}: X event without a timestamp")))?;
        let dur_ns = ns_of(event, "dur_ns", "dur")
            .ok_or_else(|| bad(format!("event {i}: X event without a duration")))?;
        spans.push(TraceSpan {
            thread,
            name: name.to_string(),
            ts_ns,
            dur_ns,
        });
    }
    Ok(ParsedTrace {
        spans,
        events: events.len(),
        dropped: other_data
            .and_then(|o| o.get("dropped_events"))
            .and_then(Value::as_u64)
            .unwrap_or(0),
    })
}

/// `votekg trace export`: validates a trace file and re-emits it as
/// normalized Chrome trace-event JSON containing exactly the complete
/// spans (one `X` event each, exact `ts_ns`/`dur_ns` preserved). The
/// output loads in Perfetto / `chrome://tracing` and parses back with
/// [`parse_chrome_trace`] to the identical span set.
pub fn trace_export(input: &Path) -> Result<(ParsedTrace, String), CliError> {
    let json =
        std::fs::read_to_string(input).map_err(|e| CliError::io(input.display().to_string(), e))?;
    let parsed = parse_chrome_trace(&json)
        .map_err(|e| CliError::Trace(format!("{}: {e}", input.display())))?;
    let obj = |fields: Vec<(&str, Value)>| {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };
    let mut events = Vec::with_capacity(parsed.spans.len());
    for span in &parsed.spans {
        events.push(obj(vec![
            ("ph", Value::Str("X".to_string())),
            ("pid", Value::UInt(1)),
            ("tid", Value::UInt(span.thread)),
            ("name", Value::Str(span.name.clone())),
            ("cat", Value::Str("votekg".to_string())),
            ("ts", Value::Float(span.ts_ns as f64 / 1_000.0)),
            ("dur", Value::Float(span.dur_ns as f64 / 1_000.0)),
            (
                "args",
                obj(vec![
                    ("ts_ns", Value::UInt(span.ts_ns)),
                    ("dur_ns", Value::UInt(span.dur_ns)),
                ]),
            ),
        ]));
    }
    let doc = obj(vec![
        ("traceEvents", Value::Array(events)),
        (
            "otherData",
            obj(vec![
                ("schema", Value::Str(TRACE_SCHEMA.to_string())),
                ("dropped_events", Value::UInt(parsed.dropped)),
            ]),
        ),
    ]);
    let out = serde_json::to_string_pretty(&doc)
        .map_err(|e| CliError::Trace(format!("normalized trace failed to serialize: {e}")))?;
    Ok((parsed, out))
}

/// `votekg trace report`: parses a trace file and renders the per-round
/// timeline (wall-clock attributed to phases with p50/p99 per phase).
/// With `min_coverage` set, errors when any round's phase spans cover
/// less than that fraction of its wall-clock — the check.sh gate.
pub fn trace_report(
    input: &Path,
    min_coverage: Option<f64>,
) -> Result<(TimelineReport, String), CliError> {
    let json =
        std::fs::read_to_string(input).map_err(|e| CliError::io(input.display().to_string(), e))?;
    let parsed = parse_chrome_trace(&json)
        .map_err(|e| CliError::Trace(format!("{}: {e}", input.display())))?;
    let report = TimelineReport::build(&parsed.spans);
    let mut rendered = report.render();
    if parsed.dropped > 0 {
        rendered.push_str(&format!(
            "warning: {} events lost to ring overwrite; timings above are from the retained window\n",
            parsed.dropped
        ));
    }
    if let Some(floor) = min_coverage {
        if report.rounds.is_empty() {
            return Err(CliError::Trace(format!(
                "{}: no optimization rounds in trace, cannot check coverage",
                input.display()
            )));
        }
        let min = report.min_coverage();
        if min < floor {
            return Err(CliError::Trace(format!(
                "{}: phase coverage {:.1}% below required {:.1}%",
                input.display(),
                min * 100.0,
                floor * 100.0
            )));
        }
    }
    Ok((report, rendered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    // The recorder is process-global; tests that reset/record must not
    // interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    fn serialized() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn sample_trace() -> String {
        kg_telemetry::reset();
        kg_telemetry::enable();
        kg_telemetry::start_recording();
        {
            let _round = kg_telemetry::span!("votekg.votes.multi");
            let _encode = kg_telemetry::span!("votekg.votes.encode", { votes: 2usize });
        }
        kg_telemetry::stop_recording();
        let json = kg_telemetry::chrome_trace_json();
        kg_telemetry::disable();
        kg_telemetry::reset();
        json
    }

    #[test]
    fn recorded_trace_parses_back() {
        let _lock = serialized();
        let json = sample_trace();
        let parsed = parse_chrome_trace(&json).expect("parses");
        let names: Vec<_> = parsed.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"votekg.votes.multi"), "{names:?}");
        assert!(names.contains(&"votekg.votes.encode"), "{names:?}");
        let report = TimelineReport::build(&parsed.spans);
        assert_eq!(report.rounds.len(), 1);
        assert_eq!(report.rounds[0].name, "votekg.votes.multi");
    }

    #[test]
    fn bad_schema_is_rejected() {
        let json = r#"{"traceEvents": [], "otherData": {"schema": "speedscope/v9"}}"#;
        let err = parse_chrome_trace(json).unwrap_err();
        assert!(err.to_string().contains("speedscope/v9"), "{err}");
        assert!(parse_chrome_trace("{not json").is_err());
    }

    #[test]
    fn microsecond_fallback_when_args_missing() {
        let json = format!(
            r#"{{"traceEvents": [
                {{"ph": "X", "tid": 3, "name": "votekg.votes.multi", "ts": 1.5, "dur": 2.0}}
            ], "otherData": {{"schema": "{TRACE_SCHEMA}"}}}}"#
        );
        let parsed = parse_chrome_trace(&json).expect("parses");
        assert_eq!(parsed.spans.len(), 1);
        assert_eq!(parsed.spans[0].ts_ns, 1_500);
        assert_eq!(parsed.spans[0].dur_ns, 2_000);
        assert_eq!(parsed.spans[0].thread, 3);
    }

    #[test]
    fn export_round_trips_span_set() {
        let _lock = serialized();
        let json = sample_trace();
        let dir = std::env::temp_dir().join(format!("votekg-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace.json");
        std::fs::write(&path, &json).unwrap();
        let (parsed, normalized) = trace_export(&path).expect("export");
        let reparsed = parse_chrome_trace(&normalized).expect("normalized parses");
        assert_eq!(parsed.spans, reparsed.spans);
        std::fs::remove_dir_all(&dir).ok();
    }
}
