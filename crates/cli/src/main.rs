//! The `votekg` command-line entry point. See `votekg help`.

use std::path::PathBuf;
use std::process::ExitCode;
use votekg_cli::{
    ask, build, explain, fuzz_campaign, fuzz_replay, gen_corpus, optimize_instrumented,
    parse_inject_skew, parse_seed_range, recover, serve, stats, trace_export, trace_record,
    trace_report, vote, CliError, FuzzArgs, OptimizeStrategy, ServeArgs, TelemetryMode,
};

const HELP: &str = "\
votekg — voting-based knowledge-graph optimization (ICDE 2020)

USAGE:
  votekg gen-corpus --docs N --out corpus.json [--seed S]
  votekg build      --corpus corpus.json --out system.json
                    [--min-doc-count N] [--max-path-len L]
  votekg ask        --system system.json --question TEXT [-k N]
  votekg vote       --system system.json --log votes.jsonl
                    --question TEXT --best DOC_ID [-k N]
  votekg optimize   --system system.json --log votes.jsonl
                    [--strategy single|multi|split-merge[:WORKERS]]
                    [--batch N] [--telemetry json|prom|off]
                    [--solve-timeout-ms N] [--serve-workers N]
                    [--trace trace.json] [--wal DIR]
  votekg serve      --system system.json [--addr HOST:PORT]
                    [--server-workers N] [--serve-workers N] [--shards N]
                    [--queue-depth N] [--read-timeout-ms N]
                    [--wal DIR] [--max-seconds N]
  votekg recover    --system system.json --wal DIR [--out recovered.json]
  votekg explain    --system system.json --question TEXT --doc DOC_ID
                    [--top N]
  votekg stats      --system system.json
  votekg trace record --system system.json --log votes.jsonl
                    --out trace.json [--strategy S] [--batch N]
  votekg trace export --in trace.json [--out normalized.json]
  votekg trace report --in trace.json [--min-coverage FRAC]
  votekg fuzz       --seed-range A..B [--timeout-ms N] [--out DIR]
                    [--inject-skew INNER:FRAC] [--shrink-checks N]
                    [--telemetry json|prom|off] [--trace trace.json]
  votekg fuzz       --replay FILE [--telemetry json|prom|off]
                    [--trace trace.json]
  votekg help

`trace record` profiles one optimization run with the flight recorder on
(without persisting the bundle) and writes a Chrome trace-event file
loadable in Perfetto / chrome://tracing; `trace report` attributes each
round's wall-clock to phases (p50/p99 per phase).

`serve` exposes the bundle over HTTP/1.1 and a compact binary protocol
on one port (rank, vote, optimize, stats, Prometheus metrics); it prints
`listening on HOST:PORT` once bound and drains on `POST /shutdown`.
With `--wal DIR` every acknowledged vote is fsynced to the write-ahead
log first, so acked votes survive a crash (`votekg recover`).

`optimize --wal DIR` journals accepted votes and every committed round to
an fsynced write-ahead log (plus periodic compacted graph snapshots) in
DIR; after a crash, `votekg recover` replays it onto the bundle and
restores the exact committed weights, bit for bit.
";

/// Tiny flag map: `--name value` pairs plus `-k N`.
struct Flags(std::collections::HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut map = std::collections::HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .or_else(|| a.strip_prefix('-'))
                .ok_or_else(|| CliError::Usage(format!("unexpected argument {a:?}")))?;
            let value = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("flag --{key} requires a value")))?;
            map.insert(key.to_string(), value.clone());
        }
        Ok(Flags(map))
    }

    fn req(&self, key: &str) -> Result<&str, CliError> {
        self.0
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{key}")))
    }

    fn opt(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid value for --{key}: {v:?}"))),
        }
    }
}

fn run_trace(sub: &str, flags: &Flags) -> Result<(), CliError> {
    match sub {
        "record" => {
            let system = PathBuf::from(flags.req("system")?);
            let log = PathBuf::from(flags.req("log")?);
            let out = PathBuf::from(flags.req("out")?);
            let strategy = OptimizeStrategy::parse(flags.opt("strategy").unwrap_or("multi"))?;
            let batch = flags.num("batch", 0usize)?;
            let (report, parsed) = trace_record(&system, &log, strategy, batch, &out)?;
            println!(
                "recorded {} events ({} spans, {} dropped) from optimizing {} votes -> {}",
                parsed.events,
                parsed.spans.len(),
                parsed.dropped,
                report.outcomes.len(),
                out.display()
            );
            println!("view in Perfetto / chrome://tracing, or run `votekg trace report`");
        }
        "export" => {
            let input = PathBuf::from(flags.req("in")?);
            let (parsed, normalized) = trace_export(&input)?;
            match flags.opt("out") {
                Some(out) => {
                    std::fs::write(out, &normalized).map_err(|e| CliError::io(out, e))?;
                    println!(
                        "exported {} spans ({} events in, {} dropped) -> {out}",
                        parsed.spans.len(),
                        parsed.events,
                        parsed.dropped
                    );
                }
                None => println!("{normalized}"),
            }
        }
        "report" => {
            let input = PathBuf::from(flags.req("in")?);
            let min_coverage = match flags.opt("min-coverage") {
                None => None,
                Some(v) => Some(v.parse::<f64>().map_err(|_| {
                    CliError::Usage(format!("invalid value for --min-coverage: {v:?}"))
                })?),
            };
            let (_, rendered) = trace_report(&input, min_coverage)?;
            print!("{rendered}");
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown trace subcommand {other:?} (expected record | export | report)"
            )))
        }
    }
    Ok(())
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        print!("{HELP}");
        return Ok(());
    };
    // `trace` takes a positional subcommand before its flags.
    if cmd == "trace" {
        let sub = args.get(1).ok_or_else(|| {
            CliError::Usage("trace requires a subcommand: record | export | report".into())
        })?;
        let flags = Flags::parse(&args[2..])?;
        return run_trace(sub, &flags);
    }
    let flags = Flags::parse(&args[1..])?;

    match cmd.as_str() {
        "gen-corpus" => {
            let out = PathBuf::from(flags.req("out")?);
            let docs = flags.num("docs", 120usize)?;
            let seed = flags.num("seed", 42u64)?;
            let n = gen_corpus(docs, seed, &out)?;
            println!("wrote {n} documents to {}", out.display());
        }
        "build" => {
            let corpus = PathBuf::from(flags.req("corpus")?);
            let out = PathBuf::from(flags.req("out")?);
            let min_doc_count = flags.num("min-doc-count", 2usize)?;
            let max_path_len = flags.num("max-path-len", 2usize)?;
            let bundle = build(&corpus, &out, min_doc_count, max_path_len)?;
            println!(
                "built system: {} entities, {} edges, {} documents -> {}",
                bundle.vocab.len(),
                bundle.graph.edges.len(),
                bundle.doc_ids.len(),
                out.display()
            );
        }
        "ask" => {
            let system = PathBuf::from(flags.req("system")?);
            let question = flags.req("question")?;
            let k = flags.num("k", 10usize)?;
            let outcome = ask(&system, question, k)?;
            for (rank, (doc, score)) in outcome.ranked.iter().enumerate() {
                println!("#{:<3} {doc}  (score {score:.6})", rank + 1);
            }
        }
        "vote" => {
            let system = PathBuf::from(flags.req("system")?);
            let log = PathBuf::from(flags.req("log")?);
            let question = flags.req("question")?;
            let best = flags.req("best")?;
            let k = flags.num("k", 10usize)?;
            let (v, negative) = vote(&system, &log, question, best, k)?;
            println!(
                "recorded {} vote: best answer ranked #{} of {}",
                if negative { "negative" } else { "positive" },
                v.best_rank(),
                v.answers.len()
            );
        }
        "optimize" => {
            let system = PathBuf::from(flags.req("system")?);
            let log = PathBuf::from(flags.req("log")?);
            let strategy = OptimizeStrategy::parse(flags.opt("strategy").unwrap_or("multi"))?;
            let telemetry = TelemetryMode::parse(flags.opt("telemetry").unwrap_or("off"))?;
            let batch = flags.num("batch", 0usize)?;
            let solve_timeout = match flags.opt("solve-timeout-ms") {
                None => None,
                Some(v) => {
                    let ms: u64 = v.parse().map_err(|_| {
                        CliError::Usage(format!("invalid value for --solve-timeout-ms: {v:?}"))
                    })?;
                    Some(std::time::Duration::from_millis(ms))
                }
            };
            let serve_workers = flags.num("serve-workers", 1usize)?;
            let trace = flags.opt("trace").map(PathBuf::from);
            let wal = flags.opt("wal").map(PathBuf::from);
            let (report, dump) = optimize_instrumented(
                &system,
                &log,
                strategy,
                batch,
                telemetry,
                solve_timeout,
                serve_workers,
                trace.as_deref(),
                wal.as_deref(),
            )?;
            let mode = if batch > 0 {
                format!(" (incremental, batches of {batch})")
            } else {
                String::new()
            };
            let mut summary = format!(
                "optimized {} votes{mode}: omega = {} (omega_avg {:.2}), {} satisfied, {} discarded, {} edges adjusted",
                report.outcomes.len(),
                report.omega(),
                report.omega_avg(),
                report.satisfied_votes(),
                report.discarded_votes,
                report.edges_changed,
            );
            let (failed, timed_out, degraded) = (
                report.failed_solves(),
                report.timed_out_solves(),
                report.degraded_solves(),
            );
            if failed + timed_out + degraded + report.quarantined_votes > 0 {
                summary.push_str(&format!(
                    "; solver faults: {failed} failed, {timed_out} timed out, \
                     {degraded} degraded, {} votes quarantined",
                    report.quarantined_votes
                ));
            }
            match dump {
                // With a telemetry dump requested, the dump owns stdout
                // (so `--telemetry json > out.json` yields valid JSON)
                // and the human summary moves to stderr.
                Some(dump) => {
                    eprintln!("{summary}");
                    println!("{dump}");
                }
                None => println!("{summary}"),
            }
        }
        "serve" => {
            let max_seconds = match flags.opt("max-seconds") {
                None => None,
                Some(v) => Some(v.parse::<u64>().map_err(|_| {
                    CliError::Usage(format!("invalid value for --max-seconds: {v:?}"))
                })?),
            };
            let serve_args = ServeArgs {
                system: PathBuf::from(flags.req("system")?),
                addr: flags.opt("addr").unwrap_or("127.0.0.1:0").to_string(),
                server_workers: flags.num("server-workers", 4usize)?,
                serve_workers: flags.num("serve-workers", 1usize)?,
                shards: flags.num("shards", 0usize)?,
                queue_depth: flags.num("queue-depth", 128usize)?,
                read_timeout: std::time::Duration::from_millis(
                    flags.num("read-timeout-ms", 5_000u64)?,
                ),
                wal: flags.opt("wal").map(PathBuf::from),
                max_seconds,
            };
            let report = serve(&serve_args)?;
            let s = &report.stats;
            eprintln!(
                "drained {}: {} http + {} binary requests, {} votes acked, \
                 {} optimization rounds, {} panics",
                if report.clean { "clean" } else { "UNCLEAN" },
                s.http_requests,
                s.bin_requests,
                s.votes_positive + s.votes_negative,
                s.optimize_rounds,
                s.handler_panics
            );
            if !report.clean {
                return Err(CliError::Usage(
                    "serve drained uncleanly (handler panics)".into(),
                ));
            }
        }
        "recover" => {
            let system = PathBuf::from(flags.req("system")?);
            let wal = PathBuf::from(flags.req("wal")?);
            let out = flags.opt("out").map(PathBuf::from);
            let outcome = recover(&system, &wal, out.as_deref())?;
            let r = &outcome.report;
            // The first line and the `verified` line are deterministic
            // functions of the recovered state, so repeated recoveries of
            // the same WAL print them identically.
            println!(
                "recovered: version {}, weights crc 0x{:08x}, {} pending vote(s)",
                r.recovered_version, r.weights_crc, r.votes_recovered
            );
            let snapshot = match (&r.snapshot_path, r.snapshot_version) {
                (Some(path), Some(v)) => format!("snapshot {} (version {v})", path.display()),
                _ => "no snapshot (replayed full WAL)".to_string(),
            };
            println!(
                "replay: {snapshot}, {} round(s) applied, {} skipped",
                r.rounds_applied, r.rounds_skipped
            );
            if let Some(torn) = &r.torn_tail {
                println!(
                    "torn tail: dropped {} incomplete byte(s) at offset {} (uncommitted write)",
                    torn.bytes_dropped, torn.offset
                );
            }
            for (path, reason) in &r.corrupt_snapshots {
                println!("skipped damaged snapshot {}: {reason}", path.display());
            }
            println!("verified: applied rounds match their committed weight checksums");
            println!("wrote {}", outcome.out_path.display());
        }
        "explain" => {
            let system = PathBuf::from(flags.req("system")?);
            let question = flags.req("question")?;
            let doc = flags.req("doc")?;
            let top = flags.num("top", 5usize)?;
            for line in explain(&system, question, doc, top)? {
                println!("{line}");
            }
        }
        "stats" => {
            let system = PathBuf::from(flags.req("system")?);
            println!("{}", stats(&system)?);
        }
        "fuzz" => {
            let telemetry = TelemetryMode::parse(flags.opt("telemetry").unwrap_or("off"))?;
            let trace = flags.opt("trace").map(PathBuf::from);
            if let Some(replay_path) = flags.opt("replay") {
                let path = PathBuf::from(replay_path);
                let (report, dump) = fuzz_replay(&path, telemetry, trace.as_deref())?;
                let summary = format!(
                    "replayed {}: verdict {} ({} solves, stored {}) — deterministic across 2 runs",
                    path.display(),
                    report.verdict,
                    report.solves,
                    report.stored_verdict
                );
                match dump {
                    Some(dump) => {
                        eprintln!("{summary}");
                        println!("{dump}");
                    }
                    None => println!("{summary}"),
                }
                if !report.reproduced {
                    return Err(CliError::Fuzz(format!(
                        "{}: stored verdict {} no longer reproduces (got {})",
                        path.display(),
                        report.stored_verdict,
                        report.verdict
                    )));
                }
            } else {
                let args = FuzzArgs {
                    seeds: parse_seed_range(flags.req("seed-range")?)?,
                    timeout: match flags.opt("timeout-ms") {
                        None => None,
                        Some(v) => {
                            let ms: u64 = v.parse().map_err(|_| {
                                CliError::Usage(format!("invalid value for --timeout-ms: {v:?}"))
                            })?;
                            Some(std::time::Duration::from_millis(ms))
                        }
                    },
                    out_dir: flags.opt("out").map(PathBuf::from),
                    inject: flags
                        .opt("inject-skew")
                        .map(parse_inject_skew)
                        .transpose()?,
                    shrink_checks: flags.num("shrink-checks", 600usize)?,
                    telemetry,
                    trace,
                };
                let (summary, dump) = fuzz_campaign(&args)?;
                for d in &summary.divergences {
                    let loc = d
                        .path
                        .as_ref()
                        .map(|p| format!(" -> {}", p.display()))
                        .unwrap_or_default();
                    eprintln!(
                        "divergence at seed {}: {} (shrunk to {} votes in {} steps){loc}",
                        d.seed, d.verdict, d.votes, d.shrink_steps
                    );
                }
                match dump {
                    Some(dump) => {
                        eprintln!("{}", summary.line());
                        println!("{dump}");
                    }
                    None => println!("{}", summary.line()),
                }
                if !summary.divergences.is_empty() {
                    return Err(CliError::Fuzz(format!(
                        "found {} divergence(s); replay with `votekg fuzz --replay FILE`",
                        summary.divergences.len()
                    )));
                }
            }
        }
        "help" | "--help" | "-h" => print!("{HELP}"),
        other => {
            return Err(CliError::Usage(format!(
                "unknown command {other:?}; run `votekg help`"
            )))
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("votekg: {e}");
            ExitCode::FAILURE
        }
    }
}
