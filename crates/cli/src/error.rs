//! CLI error type: everything a subcommand can fail with, with
//! user-facing messages.

use std::fmt;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// File-system failure, with the offending path.
    Io {
        /// The path being read or written.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A file's contents could not be parsed.
    Parse {
        /// The path being parsed.
        path: String,
        /// Parser message.
        message: String,
    },
    /// Invalid command-line usage.
    Usage(String),
    /// A referenced entity (document id, strategy name…) does not exist.
    NotFound(String),
    /// A vote log that does not match the system bundle's graph.
    LogMismatch(String),
    /// A fuzzing campaign found divergences or a replay failed to
    /// reproduce — a nonzero-exit outcome, not a malfunction.
    Fuzz(String),
    /// A trace file failed validation or a coverage gate
    /// (`votekg trace report --min-coverage`).
    Trace(String),
    /// A durability failure: the vote WAL or a graph snapshot could not
    /// be written, read, or replayed (`votekg optimize --wal`,
    /// `votekg recover`).
    Wal(String),
}

impl CliError {
    /// Wraps an I/O error with its path.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        CliError::Io {
            path: path.into(),
            source,
        }
    }

    /// Wraps a parse failure with its path.
    pub fn parse(path: impl Into<String>, message: impl fmt::Display) -> Self {
        CliError::Parse {
            path: path.into(),
            message: message.to_string(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Parse { path, message } => write!(f, "{path}: {message}"),
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::NotFound(what) => write!(f, "not found: {what}"),
            CliError::LogMismatch(msg) => write!(f, "vote log mismatch: {msg}"),
            CliError::Fuzz(msg) => write!(f, "fuzz: {msg}"),
            CliError::Trace(msg) => write!(f, "trace: {msg}"),
            CliError::Wal(msg) => write!(f, "durability: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_user_readable() {
        let e = CliError::io("x.json", std::io::Error::other("disk on fire"));
        assert!(e.to_string().contains("x.json"));
        assert!(e.to_string().contains("disk on fire"));
        assert!(CliError::Usage("bad flag".into())
            .to_string()
            .contains("bad flag"));
        assert!(CliError::NotFound("doc-9".into())
            .to_string()
            .contains("doc-9"));
    }
}
