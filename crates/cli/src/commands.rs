//! The CLI subcommand implementations.

use crate::bundle::SystemBundle;
use crate::error::CliError;
use kg_cluster::{solve_split_merge, SplitMergeOptions};
use kg_datasets::corpus_gen::{generate_corpus, CorpusGenConfig};
use kg_qa::{Corpus, Document, QaSystem, QaSystemOptions, VocabularyOptions};
use kg_sim::SimilarityConfig;
use kg_votes::{
    read_log, solve_multi_votes, solve_single_votes, write_log, MultiVoteOptions,
    OptimizationReport, SingleVoteOptions, Vote, VoteSet,
};
use std::io::Write as _;
use std::path::Path;

/// Which optimization pipeline `votekg optimize` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizeStrategy {
    /// Algorithm 1 (greedy per-negative-vote).
    Single,
    /// The batch multi-vote solution (default).
    Multi,
    /// Split-and-merge with the given worker count.
    SplitMerge {
        /// Worker threads for per-cluster solves.
        workers: usize,
    },
}

impl OptimizeStrategy {
    /// Parses a strategy name (`single`, `multi`, `split-merge[:N]`).
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "single" => Ok(OptimizeStrategy::Single),
            "multi" => Ok(OptimizeStrategy::Multi),
            _ => {
                if let Some(rest) = s.strip_prefix("split-merge") {
                    let workers = match rest.strip_prefix(':') {
                        None if rest.is_empty() => 1,
                        Some(n) => n
                            .parse()
                            .map_err(|_| CliError::Usage(format!("bad worker count in {s:?}")))?,
                        _ => return Err(CliError::Usage(format!("unknown strategy {s:?}"))),
                    };
                    Ok(OptimizeStrategy::SplitMerge { workers })
                } else {
                    Err(CliError::Usage(format!(
                        "unknown strategy {s:?} (expected single | multi | split-merge[:N])"
                    )))
                }
            }
        }
    }
}

/// Output format of `votekg optimize --telemetry`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryMode {
    /// No instrumentation (default): the zero-cost disabled path.
    Off,
    /// Enable telemetry for the run and dump the registry as JSON.
    Json,
    /// Enable telemetry and dump Prometheus text exposition format.
    Prom,
}

impl TelemetryMode {
    /// Parses a `--telemetry` value (`json`, `prom`, `off`).
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "off" => Ok(TelemetryMode::Off),
            "json" => Ok(TelemetryMode::Json),
            "prom" | "prometheus" => Ok(TelemetryMode::Prom),
            _ => Err(CliError::Usage(format!(
                "unknown telemetry mode {s:?} (expected json | prom | off)"
            ))),
        }
    }
}

/// `votekg gen-corpus`: writes a synthetic demo corpus as JSON.
pub fn gen_corpus(docs: usize, seed: u64, out: &Path) -> Result<usize, CliError> {
    let (corpus, _) = generate_corpus(&CorpusGenConfig {
        n_docs: docs,
        seed,
        ..Default::default()
    });
    let json = serde_json::to_string_pretty(&corpus.docs).expect("documents serialize");
    std::fs::write(out, json).map_err(|e| CliError::io(out.display().to_string(), e))?;
    Ok(corpus.len())
}

/// `votekg build`: compiles a corpus JSON (array of `{id,title,text}`)
/// into a system bundle.
pub fn build(
    corpus_path: &Path,
    out: &Path,
    min_doc_count: usize,
    max_path_len: usize,
) -> Result<SystemBundle, CliError> {
    let text = std::fs::read_to_string(corpus_path)
        .map_err(|e| CliError::io(corpus_path.display().to_string(), e))?;
    let docs: Vec<Document> = serde_json::from_str(&text)
        .map_err(|e| CliError::parse(corpus_path.display().to_string(), e))?;
    if docs.is_empty() {
        return Err(CliError::Usage("corpus contains no documents".into()));
    }
    let corpus = Corpus { docs };
    let qa = QaSystem::build(
        &corpus,
        &QaSystemOptions {
            vocab: VocabularyOptions {
                min_doc_count,
                max_doc_fraction: 0.8,
                min_token_len: 3,
            },
            sim: SimilarityConfig::new(0.15, max_path_len),
        },
    );
    let doc_ids = corpus.docs.iter().map(|d| d.id.clone()).collect();
    let bundle = SystemBundle::from_system(&qa, doc_ids);
    bundle.save(out)?;
    Ok(bundle)
}

/// Result of `votekg ask`.
#[derive(Debug, Clone)]
pub struct AskOutcome {
    /// `(document id, similarity score)` rows, best first.
    pub ranked: Vec<(String, f64)>,
}

/// `votekg ask`: ranks documents for a question. Does not persist the
/// transient query node.
pub fn ask(system_path: &Path, question: &str, k: usize) -> Result<AskOutcome, CliError> {
    let bundle = SystemBundle::load(system_path)?;
    let (mut qa, doc_ids) = bundle.into_system()?;
    let (_, ranked) = qa.ask(question, k);
    Ok(AskOutcome {
        ranked: ranked
            .into_iter()
            .map(|r| {
                let d = qa.document_of(r.node).expect("ranked nodes are answers");
                (doc_ids[d].clone(), r.score)
            })
            .collect(),
    })
}

/// `votekg vote`: ranks documents for the question, records a vote for
/// `best_doc_id`, appends it to the log, and persists the updated bundle
/// (the question's query node must survive for the log to stay valid).
/// Returns the vote's position list and whether it was negative.
pub fn vote(
    system_path: &Path,
    log_path: &Path,
    question: &str,
    best_doc_id: &str,
    k: usize,
) -> Result<(Vote, bool), CliError> {
    let bundle = SystemBundle::load(system_path)?;
    let (mut qa, doc_ids) = bundle.into_system()?;
    let (query, ranked) = qa.ask(question, k);
    let list: Vec<_> = ranked
        .iter()
        .take_while(|r| r.score > 0.0)
        .map(|r| r.node)
        .collect();
    if list.is_empty() {
        return Err(CliError::NotFound(format!(
            "question {question:?} matches no document (no vote recorded)"
        )));
    }
    let best = doc_ids
        .iter()
        .position(|d| d == best_doc_id)
        .map(|i| qa.answers[i])
        .ok_or_else(|| CliError::NotFound(format!("document id {best_doc_id:?}")))?;
    if !list.contains(&best) {
        return Err(CliError::NotFound(format!(
            "document {best_doc_id:?} is not in the top-{k} list for this question"
        )));
    }
    let v = Vote::new(query, list, best);
    let negative = !v.is_positive();

    // Append to the log: votes reference the *updated* graph (with the new
    // query node), so the log is rewritten against it.
    let mut votes = if log_path.exists() {
        // Existing entries were recorded against earlier versions of the
        // graph; queries are append-only so old node ids remain valid.
        let file = std::fs::File::open(log_path)
            .map_err(|e| CliError::io(log_path.display().to_string(), e))?;
        match read_log(file, &qa.graph) {
            Ok(votes) => votes,
            Err(kg_votes::LogError::GraphMismatch { .. }) => {
                // The graph gained this question's query node since the log
                // header was written; re-read leniently by skipping the
                // fingerprint check via a fresh header below.
                let file = std::fs::File::open(log_path)
                    .map_err(|e| CliError::io(log_path.display().to_string(), e))?;
                read_log_lenient(file, log_path)?
            }
            Err(e) => return Err(CliError::LogMismatch(e.to_string())),
        }
    } else {
        VoteSet::new()
    };
    votes.push(v.clone());
    let mut out = Vec::new();
    write_log(&mut out, &qa.graph, &votes).map_err(|e| CliError::LogMismatch(e.to_string()))?;
    std::fs::File::create(log_path)
        .and_then(|mut f| f.write_all(&out))
        .map_err(|e| CliError::io(log_path.display().to_string(), e))?;

    // Persist the bundle with the new query node.
    let bundle = SystemBundle::from_system(&qa, doc_ids);
    bundle.save(system_path)?;
    Ok((v, negative))
}

/// Reads a vote log without the fingerprint check (used when the graph
/// has legitimately grown since the header was written).
fn read_log_lenient(r: impl std::io::Read, path: &Path) -> Result<VoteSet, CliError> {
    use std::io::BufRead;
    let reader = std::io::BufReader::new(r);
    let mut votes = VoteSet::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| CliError::io(path.display().to_string(), e))?;
        if i == 0 || line.trim().is_empty() {
            continue; // header
        }
        let vote: Vote = serde_json::from_str(&line)
            .map_err(|e| CliError::parse(format!("{}:{}", path.display(), i + 1), e))?;
        votes.push(vote);
    }
    Ok(votes)
}

/// `votekg optimize`: applies the vote log to the bundle's graph with the
/// chosen strategy and persists the optimized bundle. `batch = 0` solves
/// all votes at once; `batch = n > 0` runs the incremental pipeline in
/// arrival-order batches of `n` with delta-based re-ranking in between.
pub fn optimize(
    system_path: &Path,
    log_path: &Path,
    strategy: OptimizeStrategy,
    batch: usize,
) -> Result<OptimizationReport, CliError> {
    Ok(optimize_instrumented(
        system_path,
        log_path,
        strategy,
        batch,
        TelemetryMode::Off,
        None,
        1,
        None,
        None,
    )?
    .0)
}

/// [`optimize`] with the telemetry layer switched on for the duration of
/// the run and an optional wall-clock budget per solve (`votekg optimize
/// --solve-timeout-ms`; a solve that hits it applies its best iterate so
/// far). `serve_workers` sets the serving cache's worker-thread count for
/// the between-batch re-ranking of the incremental pipeline (`votekg
/// optimize --serve-workers`; results are identical for any value).
/// `trace` additionally turns on the flight recorder for the run and
/// writes a Chrome trace-event file there (`votekg optimize --trace`).
/// `wal` routes the whole run through the durable framework (`votekg
/// optimize --wal DIR`): accepted votes and every committed round are
/// written to an fsynced write-ahead log in that directory, so a crash
/// mid-run loses at most the uncommitted round — `votekg recover`
/// replays the rest. Returns the report plus the rendered telemetry
/// dump (`None` with [`TelemetryMode::Off`]).
#[allow(clippy::too_many_arguments)]
pub fn optimize_instrumented(
    system_path: &Path,
    log_path: &Path,
    strategy: OptimizeStrategy,
    batch: usize,
    telemetry: TelemetryMode,
    solve_timeout: Option<std::time::Duration>,
    serve_workers: usize,
    trace: Option<&Path>,
    wal: Option<&Path>,
) -> Result<(OptimizationReport, Option<String>), CliError> {
    let instrumented = telemetry != TelemetryMode::Off || trace.is_some();
    if instrumented {
        kg_telemetry::reset();
        kg_telemetry::enable();
    }
    if trace.is_some() {
        kg_telemetry::start_recording();
    }
    let result = optimize_inner(
        system_path,
        log_path,
        strategy,
        batch,
        solve_timeout,
        serve_workers,
        true,
        wal,
    );
    let trace_result = trace.map(|path| {
        kg_telemetry::stop_recording();
        std::fs::write(path, kg_telemetry::chrome_trace_json())
            .map_err(|e| CliError::io(path.display().to_string(), e))
    });
    let dump = match telemetry {
        TelemetryMode::Off => None,
        TelemetryMode::Json => Some(kg_telemetry::export_json()),
        TelemetryMode::Prom => Some(kg_telemetry::export_prometheus()),
    };
    if instrumented {
        kg_telemetry::disable();
    }
    let report = result?;
    if let Some(trace_result) = trace_result {
        trace_result?;
    }
    Ok((report, dump))
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn optimize_inner(
    system_path: &Path,
    log_path: &Path,
    strategy: OptimizeStrategy,
    batch: usize,
    solve_timeout: Option<std::time::Duration>,
    serve_workers: usize,
    persist: bool,
    wal: Option<&Path>,
) -> Result<OptimizationReport, CliError> {
    let bundle = SystemBundle::load(system_path)?;
    let (mut qa, doc_ids) = bundle.into_system()?;
    let file = std::fs::File::open(log_path)
        .map_err(|e| CliError::io(log_path.display().to_string(), e))?;
    let votes = read_log(file, &qa.graph).map_err(|e| CliError::LogMismatch(e.to_string()))?;
    if votes.is_empty() {
        return Err(CliError::Usage("vote log contains no votes".into()));
    }

    // Pipelines default to L = 5; honor the bundle's similarity settings.
    let report = if let Some(wal_dir) = wal {
        optimize_durable(
            &mut qa.graph,
            qa.sim,
            &votes,
            strategy,
            batch,
            solve_timeout,
            serve_workers,
            wal_dir,
        )?
    } else if batch > 0 {
        optimize_incremental(
            &mut qa.graph,
            qa.sim,
            &votes,
            strategy,
            batch,
            solve_timeout,
            serve_workers,
        )
    } else {
        match strategy {
            OptimizeStrategy::Single => {
                let mut opts = SingleVoteOptions::default();
                opts.encode.sim = qa.sim;
                opts.solve.time_budget = solve_timeout;
                solve_single_votes(&mut qa.graph, &votes, &opts)
            }
            OptimizeStrategy::Multi => {
                let mut opts = MultiVoteOptions::default();
                opts.encode.sim = qa.sim;
                opts.solve.time_budget = solve_timeout;
                solve_multi_votes(&mut qa.graph, &votes, &opts)
            }
            OptimizeStrategy::SplitMerge { workers } => {
                let mut opts = SplitMergeOptions {
                    workers,
                    ..Default::default()
                };
                opts.multi.encode.sim = qa.sim;
                opts.multi.solve.time_budget = solve_timeout;
                solve_split_merge(&mut qa.graph, &votes, &opts).report
            }
        }
    };

    if persist {
        let bundle = SystemBundle::from_system(&qa, doc_ids);
        bundle.save(system_path)?;
    }
    Ok(report)
}

/// Builds a framework configuration for the bundle's similarity settings
/// and the CLI strategy, returning the matching framework strategy.
fn framework_config(
    sim: SimilarityConfig,
    strategy: OptimizeStrategy,
    solve_timeout: Option<std::time::Duration>,
) -> (votekg::FrameworkConfig, votekg::Strategy) {
    let mut config = votekg::FrameworkConfig::default();
    config.single.encode.sim = sim;
    config.multi.encode.sim = sim;
    config.split_merge.multi.encode.sim = sim;
    config.set_solve_timeout(solve_timeout);
    let fw_strategy = match strategy {
        OptimizeStrategy::Single => votekg::Strategy::SingleVote,
        OptimizeStrategy::Multi => votekg::Strategy::MultiVote,
        OptimizeStrategy::SplitMerge { workers } => {
            config.split_merge.workers = workers;
            votekg::Strategy::SplitMerge
        }
    };
    (config, fw_strategy)
}

/// Folds per-batch reports into one.
fn merge_reports(reports: Vec<OptimizationReport>) -> OptimizationReport {
    let mut merged = OptimizationReport::default();
    for r in reports {
        merged.outcomes.extend(r.outcomes);
        merged.discarded_votes += r.discarded_votes;
        merged.quarantined_votes += r.quarantined_votes;
        merged.discards.extend(r.discards);
        merged.solves.extend(r.solves);
        merged.edges_changed += r.edges_changed;
        merged.solver_inner_iterations += r.solver_inner_iterations;
        merged.solver_elapsed += r.solver_elapsed;
        merged.total_elapsed += r.total_elapsed;
    }
    merged
}

/// Runs the framework's incremental pipeline (batched solves with
/// delta-based re-ranking through the serving cache between batches) and
/// folds the per-batch reports into one.
fn optimize_incremental(
    graph: &mut kg_graph::KnowledgeGraph,
    sim: SimilarityConfig,
    votes: &VoteSet,
    strategy: OptimizeStrategy,
    batch: usize,
    solve_timeout: Option<std::time::Duration>,
    serve_workers: usize,
) -> OptimizationReport {
    let (config, fw_strategy) = framework_config(sim, strategy, solve_timeout);
    let mut fw = votekg::Framework::new(std::mem::replace(graph, empty_graph()), config)
        .with_serve_workers(serve_workers.max(1));
    for v in &votes.votes {
        fw.record_vote(v.clone());
    }
    let reports = fw.optimize_incremental(fw_strategy, batch);
    *graph = std::mem::replace(fw.graph_mut(), empty_graph());
    merge_reports(reports)
}

/// Runs an optimization through the durable framework (`votekg optimize
/// --wal DIR`): opens (or creates) the write-ahead log in `wal_dir`,
/// recovering any state a previous crashed run committed there, records
/// the log's votes, optimizes with per-round fsynced WAL commits, and
/// checkpoints a compacted snapshot on completion.
///
/// Votes still pending in the WAL from a crashed run take precedence:
/// when any are recovered, the legacy vote log is *not* re-ingested
/// (its votes are already in the WAL), so re-running after a crash never
/// applies a vote twice.
#[allow(clippy::too_many_arguments)]
fn optimize_durable(
    graph: &mut kg_graph::KnowledgeGraph,
    sim: SimilarityConfig,
    votes: &VoteSet,
    strategy: OptimizeStrategy,
    batch: usize,
    solve_timeout: Option<std::time::Duration>,
    serve_workers: usize,
    wal_dir: &Path,
) -> Result<OptimizationReport, CliError> {
    let (config, fw_strategy) = framework_config(sim, strategy, solve_timeout);
    let opts = votekg::DurableOptions {
        snapshot_every: 4,
        ..Default::default()
    };
    let (fw, recovery) = votekg::Framework::open_durable(
        wal_dir,
        std::mem::replace(graph, empty_graph()),
        config,
        opts,
    )
    .map_err(|e| CliError::Wal(e.to_string()))?;
    let mut fw = fw.with_serve_workers(serve_workers.max(1));
    if recovery.votes_recovered > 0 {
        eprintln!(
            "recovered {} pending vote(s) from {} (committed version {}); \
             optimizing those instead of re-reading the vote log",
            recovery.votes_recovered,
            wal_dir.display(),
            recovery.recovered_version
        );
    } else {
        for v in &votes.votes {
            fw.record_vote_durable(v.clone())
                .map_err(|e| CliError::Wal(e.to_string()))?;
        }
    }
    let reports = if batch > 0 {
        fw.optimize_incremental_durable(fw_strategy, batch)
            .map_err(|e| CliError::Wal(e.to_string()))?
    } else {
        vec![fw
            .optimize_durable(fw_strategy)
            .map_err(|e| CliError::Wal(e.to_string()))?]
    };
    // Completed cleanly: snapshot + compact so the WAL stays bounded and
    // the next open is O(snapshot) instead of O(history).
    fw.checkpoint().map_err(|e| CliError::Wal(e.to_string()))?;
    *graph = std::mem::replace(fw.graph_mut(), empty_graph());
    Ok(merge_reports(reports))
}

/// What `votekg recover` reconstructed, ready for rendering.
#[derive(Debug)]
pub struct RecoverOutcome {
    /// The durable layer's replay report.
    pub report: votekg::RecoveryReport,
    /// Where the recovered bundle was written.
    pub out_path: std::path::PathBuf,
}

/// `votekg recover`: loads the system bundle, replays the WAL directory
/// on top of it (newest valid snapshot + WAL tail — every applied round
/// is verified against its committed weight checksum), and persists the
/// recovered bundle to `out` (defaulting to the system path itself).
/// Idempotent: running it again recovers the identical state.
pub fn recover(
    system_path: &Path,
    wal_dir: &Path,
    out: Option<&Path>,
) -> Result<RecoverOutcome, CliError> {
    let bundle = SystemBundle::load(system_path)?;
    let (mut qa, doc_ids) = bundle.into_system()?;
    let (mut fw, report) = votekg::Framework::open_durable(
        wal_dir,
        std::mem::replace(&mut qa.graph, empty_graph()),
        votekg::FrameworkConfig::default(),
        votekg::DurableOptions::default(),
    )
    .map_err(|e| CliError::Wal(e.to_string()))?;
    qa.graph = std::mem::replace(fw.graph_mut(), empty_graph());
    drop(fw); // syncs the WAL; the pending votes stay queued in it
    let out_path = out.unwrap_or(system_path).to_path_buf();
    let bundle = SystemBundle::from_system(&qa, doc_ids);
    bundle.save(&out_path)?;
    Ok(RecoverOutcome { report, out_path })
}

fn empty_graph() -> kg_graph::KnowledgeGraph {
    kg_graph::GraphBuilder::new().build()
}

/// `votekg explain`: the top contributing relation chains behind a
/// document's score for a question.
pub fn explain(
    system_path: &Path,
    question: &str,
    doc_id: &str,
    top_n: usize,
) -> Result<Vec<String>, CliError> {
    let bundle = SystemBundle::load(system_path)?;
    let (mut qa, doc_ids) = bundle.into_system()?;
    let answer = doc_ids
        .iter()
        .position(|d| d == doc_id)
        .map(|i| qa.answers[i])
        .ok_or_else(|| CliError::NotFound(format!("document id {doc_id:?}")))?;
    let (query, _) = qa.ask(question, 1);
    let sim = qa.sim;
    let explanations = kg_sim::explain_ranking(&qa.graph, query, answer, &sim, top_n, 500_000);
    if explanations.is_empty() {
        return Err(CliError::NotFound(format!(
            "no relation chain links this question to {doc_id:?} within L = {}",
            sim.max_path_len
        )));
    }
    Ok(explanations
        .iter()
        .map(|e| format!("{:5.1}%  {}", 100.0 * e.share, e.render(&qa.graph)))
        .collect())
}

/// `votekg stats`: human-readable bundle summary.
pub fn stats(system_path: &Path) -> Result<String, CliError> {
    let bundle = SystemBundle::load(system_path)?;
    let (qa, doc_ids) = bundle.into_system()?;
    let s = kg_graph::GraphStats::of(&qa.graph);
    Ok(format!(
        "{s}\nvocabulary: {} entities\ndocuments: {}\nregistered questions: {}\nsimilarity: c = {}, L = {}",
        qa.vocab.len(),
        doc_ids.len(),
        qa.queries.len(),
        qa.sim.restart,
        qa.sim.max_path_len,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_parsing() {
        assert_eq!(
            OptimizeStrategy::parse("single").unwrap(),
            OptimizeStrategy::Single
        );
        assert_eq!(
            OptimizeStrategy::parse("multi").unwrap(),
            OptimizeStrategy::Multi
        );
        assert_eq!(
            OptimizeStrategy::parse("split-merge").unwrap(),
            OptimizeStrategy::SplitMerge { workers: 1 }
        );
        assert_eq!(
            OptimizeStrategy::parse("split-merge:4").unwrap(),
            OptimizeStrategy::SplitMerge { workers: 4 }
        );
        assert!(OptimizeStrategy::parse("magic").is_err());
        assert!(OptimizeStrategy::parse("split-merge:x").is_err());
    }
}
