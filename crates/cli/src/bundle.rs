//! The persisted *system bundle*: everything needed to answer questions
//! and apply votes across CLI invocations.

use crate::error::CliError;
use kg_graph::io::GraphDoc;
use kg_graph::NodeId;
use kg_qa::{QaSystem, Vocabulary};
use kg_sim::SimilarityConfig;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// On-disk representation of a Q&A system (JSON).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemBundle {
    /// Format version.
    pub version: u32,
    /// The augmented knowledge graph.
    pub graph: GraphDoc,
    /// The entity vocabulary.
    pub vocab: Vocabulary,
    /// Answer node per corpus document.
    pub answers: Vec<NodeId>,
    /// Query nodes registered so far (persisted so votes stay valid).
    pub queries: Vec<NodeId>,
    /// Similarity parameters.
    pub sim: SimilarityConfig,
    /// Document ids, parallel to `answers` (for user-facing output).
    pub doc_ids: Vec<String>,
}

impl SystemBundle {
    /// Converts a live [`QaSystem`] (plus its document ids) into a bundle.
    pub fn from_system(qa: &QaSystem, doc_ids: Vec<String>) -> Self {
        assert_eq!(doc_ids.len(), qa.answers.len(), "one id per answer");
        SystemBundle {
            version: 1,
            graph: GraphDoc::from_graph(&qa.graph),
            vocab: qa.vocab.clone(),
            answers: qa.answers.clone(),
            queries: qa.queries.clone(),
            sim: qa.sim,
            doc_ids,
        }
    }

    /// Rebuilds the live [`QaSystem`].
    pub fn into_system(self) -> Result<(QaSystem, Vec<String>), CliError> {
        let graph = self
            .graph
            .into_graph()
            .map_err(|e| CliError::parse("system bundle", e))?;
        Ok((
            QaSystem {
                graph,
                vocab: self.vocab,
                answers: self.answers,
                queries: self.queries,
                sim: self.sim,
            },
            self.doc_ids,
        ))
    }

    /// Loads a bundle from a JSON file.
    pub fn load(path: &Path) -> Result<Self, CliError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::io(path.display().to_string(), e))?;
        serde_json::from_str(&text).map_err(|e| CliError::parse(path.display().to_string(), e))
    }

    /// Saves the bundle as JSON.
    pub fn save(&self, path: &Path) -> Result<(), CliError> {
        let text = serde_json::to_string(self).expect("bundle serializes");
        std::fs::write(path, text).map_err(|e| CliError::io(path.display().to_string(), e))
    }

    /// The document ordinal of an answer node.
    pub fn doc_of(&self, node: NodeId) -> Option<usize> {
        self.answers.iter().position(|&a| a == node)
    }

    /// The answer node of a document id.
    pub fn answer_of(&self, doc_id: &str) -> Option<NodeId> {
        self.doc_ids
            .iter()
            .position(|d| d == doc_id)
            .map(|i| self.answers[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_qa::{Corpus, Document, QaSystemOptions};

    fn sample() -> (QaSystem, Vec<String>) {
        let mut c = Corpus::new();
        c.push(Document::new(
            "d0",
            "email outbox",
            "email outlook outbox stuck",
        ));
        c.push(Document::new(
            "d1",
            "send fail",
            "outlook send email account",
        ));
        let qa = QaSystem::build(
            &c,
            &QaSystemOptions {
                vocab: kg_qa::VocabularyOptions {
                    min_doc_count: 1,
                    max_doc_fraction: 1.0,
                    min_token_len: 3,
                },
                ..Default::default()
            },
        );
        let ids = c.docs.iter().map(|d| d.id.clone()).collect();
        (qa, ids)
    }

    #[test]
    fn bundle_roundtrips_through_json() {
        let (qa, ids) = sample();
        let bundle = SystemBundle::from_system(&qa, ids);
        let json = serde_json::to_string(&bundle).unwrap();
        let back: SystemBundle = serde_json::from_str(&json).unwrap();
        let (qa2, ids2) = back.into_system().unwrap();
        assert_eq!(qa2.answers, qa.answers);
        assert_eq!(ids2, vec!["d0", "d1"]);
        assert_eq!(qa2.graph.edge_count(), qa.graph.edge_count());
    }

    #[test]
    fn lookups_work_both_ways() {
        let (qa, ids) = sample();
        let bundle = SystemBundle::from_system(&qa, ids);
        let a0 = bundle.answers[0];
        assert_eq!(bundle.doc_of(a0), Some(0));
        assert_eq!(bundle.answer_of("d1"), Some(bundle.answers[1]));
        assert_eq!(bundle.answer_of("nope"), None);
    }

    #[test]
    fn save_and_load_via_tempfile() {
        let (qa, ids) = sample();
        let bundle = SystemBundle::from_system(&qa, ids);
        let path = std::env::temp_dir().join("votekg-bundle-test.json");
        bundle.save(&path).unwrap();
        let back = SystemBundle::load(&path).unwrap();
        assert_eq!(back.doc_ids, bundle.doc_ids);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_of_missing_file_is_io_error() {
        let err = SystemBundle::load(Path::new("/definitely/not/here.json")).unwrap_err();
        assert!(matches!(err, CliError::Io { .. }));
    }
}
