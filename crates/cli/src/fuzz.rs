//! The `votekg fuzz` subcommand: differential solver fuzzing campaigns
//! and repro replay (see the kg-fuzz crate and DESIGN.md "Testing &
//! fuzzing").

use crate::commands::TelemetryMode;
use crate::error::CliError;
use kg_fuzz::{
    replay, run_campaign, CampaignOptions, CampaignSummary, ReplayReport, ReproFault, ReproFile,
};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Parsed arguments of a `votekg fuzz` campaign run.
#[derive(Debug, Clone)]
pub struct FuzzArgs {
    /// Seed range to fuzz (`--seed-range A..B`).
    pub seeds: Range<u64>,
    /// Per-solve wall-clock budget (`--timeout-ms`).
    pub timeout: Option<Duration>,
    /// Directory for `seed-<n>.repro.json` files (`--out`).
    pub out_dir: Option<PathBuf>,
    /// Planted fault for harness self-tests (`--inject-skew INNER:FRAC`).
    pub inject: Option<ReproFault>,
    /// Cap on matrix re-runs per divergence while shrinking
    /// (`--shrink-checks`).
    pub shrink_checks: usize,
    /// Telemetry dump mode (`--telemetry`).
    pub telemetry: TelemetryMode,
}

/// Parses `A..B` into a half-open seed range.
pub fn parse_seed_range(s: &str) -> Result<Range<u64>, CliError> {
    let bad = || CliError::Usage(format!("invalid --seed-range {s:?}; expected A..B"));
    let (a, b) = s.split_once("..").ok_or_else(bad)?;
    let lo: u64 = a.trim().parse().map_err(|_| bad())?;
    let hi: u64 = b.trim().parse().map_err(|_| bad())?;
    if hi <= lo {
        return Err(CliError::Usage(format!(
            "empty --seed-range {s:?}; the end must exceed the start"
        )));
    }
    Ok(lo..hi)
}

/// Parses `INNER:FRAC` (e.g. `lbfgs:0.35`) into a planted-fault record.
pub fn parse_inject_skew(s: &str) -> Result<ReproFault, CliError> {
    let bad = || {
        CliError::Usage(format!(
            "invalid --inject-skew {s:?}; expected INNER:FRAC, e.g. lbfgs:0.35"
        ))
    };
    let (inner, frac) = s.split_once(':').ok_or_else(bad)?;
    let skew: f64 = frac.trim().parse().map_err(|_| bad())?;
    let fault = ReproFault {
        inner: inner.trim().to_string(),
        skew,
    };
    // Validate the inner label eagerly so typos fail before the campaign.
    fault.plan().map_err(|e| CliError::Usage(e.to_string()))?;
    Ok(fault)
}

fn with_telemetry<T>(mode: TelemetryMode, f: impl FnOnce() -> T) -> (T, Option<String>) {
    if mode != TelemetryMode::Off {
        kg_telemetry::reset();
        kg_telemetry::enable();
    }
    let value = f();
    let dump = match mode {
        TelemetryMode::Off => None,
        TelemetryMode::Json => Some(kg_telemetry::export_json()),
        TelemetryMode::Prom => Some(kg_telemetry::export_prometheus()),
    };
    if mode != TelemetryMode::Off {
        kg_telemetry::disable();
    }
    (value, dump)
}

/// Runs a fuzzing campaign. Returns the summary and the telemetry dump
/// (when requested); the caller decides the exit code from
/// `summary.divergences`.
pub fn fuzz_campaign(args: &FuzzArgs) -> Result<(CampaignSummary, Option<String>), CliError> {
    let mut opts = CampaignOptions {
        shrink_checks: args.shrink_checks,
        out_dir: args.out_dir.clone(),
        fault: args.inject.clone(),
        ..CampaignOptions::default()
    };
    opts.cfg.solve.time_budget = args.timeout;
    let seeds = args.seeds.clone();
    let (summary, dump) = with_telemetry(args.telemetry, || match &args.inject {
        Some(fault) => {
            // The plan was validated at parse time; install it for the
            // whole campaign so every solve sees the planted bug.
            let plan = fault.plan().expect("inject fault validated at parse");
            let _guard = sgp::fault::inject(plan);
            run_campaign(seeds, &opts)
        }
        None => run_campaign(seeds, &opts),
    });
    Ok((summary, dump))
}

/// Replays a committed repro file twice and checks determinism: both
/// runs must produce the stored verdict and identical solve counts.
/// Returns the first report and the telemetry dump (when requested).
pub fn fuzz_replay(
    path: &Path,
    telemetry: TelemetryMode,
) -> Result<(ReplayReport, Option<String>), CliError> {
    let repro =
        ReproFile::read(path).map_err(|e| CliError::parse(path.display().to_string(), e))?;
    let (reports, dump) = with_telemetry(telemetry, || {
        let first = replay(&repro);
        let second = replay(&repro);
        (first, second)
    });
    let first = reports
        .0
        .map_err(|e| CliError::parse(path.display().to_string(), e))?;
    let second = reports
        .1
        .map_err(|e| CliError::parse(path.display().to_string(), e))?;
    if first.verdict != second.verdict || first.solves != second.solves {
        return Err(CliError::Fuzz(format!(
            "{}: replay is nondeterministic: verdict {} ({} solves) then {} ({} solves)",
            path.display(),
            first.verdict,
            first.solves,
            second.verdict,
            second.solves
        )));
    }
    Ok((first, dump))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_range_parses() {
        assert_eq!(parse_seed_range("0..25").unwrap(), 0..25);
        assert_eq!(parse_seed_range("7 .. 9").unwrap(), 7..9);
        assert!(parse_seed_range("5").is_err());
        assert!(parse_seed_range("9..9").is_err());
        assert!(parse_seed_range("a..b").is_err());
    }

    #[test]
    fn inject_skew_parses_and_validates_inner() {
        let f = parse_inject_skew("lbfgs:0.35").unwrap();
        assert_eq!(f.inner, "lbfgs");
        assert!((f.skew - 0.35).abs() < 1e-12);
        assert!(parse_inject_skew("lbfgs").is_err());
        assert!(parse_inject_skew("newton:0.2").is_err());
        assert!(parse_inject_skew("adam:x").is_err());
    }
}
