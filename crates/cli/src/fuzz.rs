//! The `votekg fuzz` subcommand: differential solver fuzzing campaigns
//! and repro replay (see the kg-fuzz crate and DESIGN.md "Testing &
//! fuzzing").

use crate::commands::TelemetryMode;
use crate::error::CliError;
use kg_fuzz::{
    replay, run_campaign, CampaignOptions, CampaignSummary, ReplayReport, ReproFault, ReproFile,
};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Parsed arguments of a `votekg fuzz` campaign run.
#[derive(Debug, Clone)]
pub struct FuzzArgs {
    /// Seed range to fuzz (`--seed-range A..B`).
    pub seeds: Range<u64>,
    /// Per-solve wall-clock budget (`--timeout-ms`).
    pub timeout: Option<Duration>,
    /// Directory for `seed-<n>.repro.json` files (`--out`).
    pub out_dir: Option<PathBuf>,
    /// Planted fault for harness self-tests (`--inject-skew INNER:FRAC`).
    pub inject: Option<ReproFault>,
    /// Cap on matrix re-runs per divergence while shrinking
    /// (`--shrink-checks`).
    pub shrink_checks: usize,
    /// Telemetry dump mode (`--telemetry`).
    pub telemetry: TelemetryMode,
    /// Write a Chrome trace of the whole run here (`--trace`).
    pub trace: Option<PathBuf>,
}

/// Parses `A..B` into a half-open seed range.
pub fn parse_seed_range(s: &str) -> Result<Range<u64>, CliError> {
    let bad = || CliError::Usage(format!("invalid --seed-range {s:?}; expected A..B"));
    let (a, b) = s.split_once("..").ok_or_else(bad)?;
    let lo: u64 = a.trim().parse().map_err(|_| bad())?;
    let hi: u64 = b.trim().parse().map_err(|_| bad())?;
    if hi <= lo {
        return Err(CliError::Usage(format!(
            "empty --seed-range {s:?}; the end must exceed the start"
        )));
    }
    Ok(lo..hi)
}

/// Parses `INNER:FRAC` (e.g. `lbfgs:0.35`) into a planted-fault record.
pub fn parse_inject_skew(s: &str) -> Result<ReproFault, CliError> {
    let bad = || {
        CliError::Usage(format!(
            "invalid --inject-skew {s:?}; expected INNER:FRAC, e.g. lbfgs:0.35"
        ))
    };
    let (inner, frac) = s.split_once(':').ok_or_else(bad)?;
    let skew: f64 = frac.trim().parse().map_err(|_| bad())?;
    let fault = ReproFault {
        inner: inner.trim().to_string(),
        skew,
    };
    // Validate the inner label eagerly so typos fail before the campaign.
    fault.plan().map_err(|e| CliError::Usage(e.to_string()))?;
    Ok(fault)
}

fn with_telemetry<T>(
    mode: TelemetryMode,
    trace: Option<&Path>,
    f: impl FnOnce() -> T,
) -> Result<(T, Option<String>), CliError> {
    let instrumented = mode != TelemetryMode::Off || trace.is_some();
    if instrumented {
        kg_telemetry::reset();
        kg_telemetry::enable();
    }
    if trace.is_some() {
        kg_telemetry::start_recording();
    }
    let value = f();
    let trace_result = trace.map(|path| {
        kg_telemetry::stop_recording();
        std::fs::write(path, kg_telemetry::chrome_trace_json())
            .map_err(|e| CliError::io(path.display().to_string(), e))
    });
    let dump = match mode {
        TelemetryMode::Off => None,
        TelemetryMode::Json => Some(kg_telemetry::export_json()),
        TelemetryMode::Prom => Some(kg_telemetry::export_prometheus()),
    };
    if instrumented {
        kg_telemetry::disable();
    }
    if let Some(trace_result) = trace_result {
        trace_result?;
    }
    Ok((value, dump))
}

/// Runs a fuzzing campaign. Returns the summary and the telemetry dump
/// (when requested); the caller decides the exit code from
/// `summary.divergences`.
pub fn fuzz_campaign(args: &FuzzArgs) -> Result<(CampaignSummary, Option<String>), CliError> {
    let mut opts = CampaignOptions {
        shrink_checks: args.shrink_checks,
        out_dir: args.out_dir.clone(),
        fault: args.inject.clone(),
        ..CampaignOptions::default()
    };
    opts.cfg.solve.time_budget = args.timeout;
    let seeds = args.seeds.clone();
    let (summary, dump) = with_telemetry(args.telemetry, args.trace.as_deref(), || {
        match &args.inject {
            Some(fault) => {
                // The plan was validated at parse time; install it for the
                // whole campaign so every solve sees the planted bug.
                let plan = fault.plan().expect("inject fault validated at parse");
                let _guard = sgp::fault::inject(plan);
                run_campaign(seeds, &opts)
            }
            None => run_campaign(seeds, &opts),
        }
    })?;
    Ok((summary, dump))
}

/// One flight-recorder event flattened for replay comparison:
/// `(thread, kind, name)`.
type SeqEvent = (u64, kg_telemetry::EventKind, String);

/// Next unseen ring sequence number per thread — the cut point from
/// which [`events_since`] collects.
fn ring_cut() -> std::collections::HashMap<u64, u64> {
    kg_telemetry::capture_timelines()
        .iter()
        .map(|t| {
            let next = t.events.last().map(|e| e.seq + 1).unwrap_or(t.dropped);
            (t.thread, next)
        })
        .collect()
}

/// Events recorded after `cut`, in (thread, ring) order.
fn events_since(cut: &std::collections::HashMap<u64, u64>) -> Vec<SeqEvent> {
    let mut timelines = kg_telemetry::capture_timelines();
    timelines.sort_by_key(|t| t.thread);
    let mut out = Vec::new();
    for timeline in &timelines {
        let from = cut.get(&timeline.thread).copied().unwrap_or(0);
        for event in &timeline.events {
            if event.seq >= from {
                out.push((timeline.thread, event.kind, event.name.to_string()));
            }
        }
    }
    out
}

/// Pinpoints where two replays' event sequences first disagree.
fn first_divergent_event(a: &[SeqEvent], b: &[SeqEvent]) -> String {
    if a.is_empty() && b.is_empty() {
        return "no events captured; re-run with --telemetry json or --trace for an \
                event-level diff"
            .to_string();
    }
    for (i, (ea, eb)) in a.iter().zip(b.iter()).enumerate() {
        if ea != eb {
            return format!(
                "first divergent event #{i}: {:?} {} (thread {}) vs {:?} {} (thread {})",
                ea.1, ea.2, ea.0, eb.1, eb.2, eb.0
            );
        }
    }
    format!(
        "event sequences agree for {} events, then replay 1 recorded {} and replay 2 {}",
        a.len().min(b.len()),
        a.len(),
        b.len()
    )
}

/// Replays a committed repro file twice and checks determinism: both
/// runs must produce the stored verdict and identical solve counts. When
/// they disagree and telemetry is on, the error pinpoints the first
/// flight-recorder event where the two runs diverged. Returns the first
/// report and the telemetry dump (when requested).
pub fn fuzz_replay(
    path: &Path,
    telemetry: TelemetryMode,
    trace: Option<&Path>,
) -> Result<(ReplayReport, Option<String>), CliError> {
    let repro =
        ReproFile::read(path).map_err(|e| CliError::parse(path.display().to_string(), e))?;
    let (outcome, dump) = with_telemetry(telemetry, trace, || {
        let instrumented = kg_telemetry::is_enabled();
        let cut = if instrumented {
            ring_cut()
        } else {
            Default::default()
        };
        let first = replay(&repro);
        let (seq1, cut) = if instrumented {
            (events_since(&cut), ring_cut())
        } else {
            (Vec::new(), cut)
        };
        let second = replay(&repro);
        let seq2 = if instrumented {
            events_since(&cut)
        } else {
            Vec::new()
        };
        (first, second, seq1, seq2)
    })?;
    let (first, second, seq1, seq2) = outcome;
    let first = first.map_err(|e| CliError::parse(path.display().to_string(), e))?;
    let second = second.map_err(|e| CliError::parse(path.display().to_string(), e))?;
    if first.verdict != second.verdict || first.solves != second.solves {
        return Err(CliError::Fuzz(format!(
            "{}: replay is nondeterministic: verdict {} ({} solves) then {} ({} solves); {}",
            path.display(),
            first.verdict,
            first.solves,
            second.verdict,
            second.solves,
            first_divergent_event(&seq1, &seq2)
        )));
    }
    Ok((first, dump))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_range_parses() {
        assert_eq!(parse_seed_range("0..25").unwrap(), 0..25);
        assert_eq!(parse_seed_range("7 .. 9").unwrap(), 7..9);
        assert!(parse_seed_range("5").is_err());
        assert!(parse_seed_range("9..9").is_err());
        assert!(parse_seed_range("a..b").is_err());
    }

    #[test]
    fn inject_skew_parses_and_validates_inner() {
        let f = parse_inject_skew("lbfgs:0.35").unwrap();
        assert_eq!(f.inner, "lbfgs");
        assert!((f.skew - 0.35).abs() < 1e-12);
        assert!(parse_inject_skew("lbfgs").is_err());
        assert!(parse_inject_skew("newton:0.2").is_err());
        assert!(parse_inject_skew("adam:x").is_err());
    }
}
