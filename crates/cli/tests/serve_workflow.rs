//! End-to-end durability of the network front-end: votes acknowledged
//! over the wire land in the write-ahead log, survive both a clean
//! drain and a crash mid-optimization-round (the
//! `VOTEKG_WAL_CRASH_AFTER_COMMITS` abort hook), and recover
//! bit-identically. The server runs as a real `votekg serve` child
//! process, so the whole path — socket, protocol, framework, WAL,
//! process death — is the production one.

use kg_server::HttpClient;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use votekg_cli::{build, gen_corpus, recover, SystemBundle};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("votekg-serve-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A question the server can answer over the wire: its registered
/// query node plus the node ids of its positively-scoring documents.
struct WireQuestion {
    query: u32,
    answers: Vec<u32>,
}

/// Builds a corpus + bundle and registers a few query nodes in it, so
/// wire requests can reference them by node id.
fn setup(tag: &str) -> (TempDir, PathBuf, Vec<WireQuestion>) {
    let tmp = TempDir::new(tag);
    let corpus = tmp.path("corpus.json");
    let system = tmp.path("system.json");
    gen_corpus(80, 7, &corpus).unwrap();
    build(&corpus, &system, 2, 2).unwrap();

    let (mut qa, doc_ids) = SystemBundle::load(&system).unwrap().into_system().unwrap();
    let mut questions = Vec::new();
    for q in [
        "refund order rules",
        "cart checkout quantity",
        "delivery tracking package",
    ] {
        let (query, ranked) = qa.ask(q, 10);
        let answers: Vec<u32> = ranked
            .iter()
            .take_while(|r| r.score > 0.0)
            .map(|r| r.node.0)
            .collect();
        if answers.len() >= 2 {
            questions.push(WireQuestion {
                query: query.0,
                answers,
            });
        }
    }
    assert!(
        questions.len() >= 2,
        "corpus must answer the test questions"
    );
    SystemBundle::from_system(&qa, doc_ids)
        .save(&system)
        .unwrap();
    (tmp, system, questions)
}

struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `votekg serve` as a child process and reads the
/// `listening on HOST:PORT` discovery line off its stdout.
fn spawn_server(system: &PathBuf, wal: &PathBuf, crash_after: Option<u32>) -> ServerProc {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_votekg"));
    cmd.arg("serve")
        .arg("--system")
        .arg(system)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--wal")
        .arg(wal)
        .arg("--server-workers")
        .arg("2")
        .arg("--max-seconds")
        .arg("60")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(n) = crash_after {
        cmd.env("VOTEKG_WAL_CRASH_AFTER_COMMITS", n.to_string());
    }
    let mut child = cmd.spawn().expect("spawn votekg serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read discovery line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected discovery line {line:?}"))
        .parse()
        .expect("parseable address");
    ServerProc { child, addr }
}

fn vote_body(q: &WireQuestion, best: u32) -> String {
    let ids: Vec<String> = q.answers.iter().map(|a| a.to_string()).collect();
    format!(
        "{{\"query\":{},\"answers\":[{}],\"best\":{best}}}",
        q.query,
        ids.join(",")
    )
}

/// Casts one wire vote and asserts the durable (fsynced-before-ack)
/// acknowledgement; returns the server's pending-vote count.
fn cast_vote(client: &mut HttpClient, q: &WireQuestion, best_pos: usize) -> u64 {
    let body = vote_body(q, q.answers[best_pos % q.answers.len()]);
    let doc = client.post_json("/vote", &body).unwrap().json().unwrap();
    assert!(
        matches!(doc.get("durable"), Some(serde::Value::Bool(true))),
        "votes must be fsynced before the ack on a --wal server: {:?}",
        doc.get("durable")
    );
    doc.get("pending_votes").and_then(|v| v.as_u64()).unwrap()
}

#[test]
fn wire_votes_survive_clean_restart() {
    let (tmp, system, questions) = setup("clean");
    let wal = tmp.path("wal");

    // Round 1: vote over the wire, optimize most of the backlog, leave
    // one vote pending, drain cleanly.
    let server = spawn_server(&system, &wal, None);
    let mut client = HttpClient::connect(server.addr).unwrap();
    for (i, q) in questions.iter().enumerate() {
        let pending = cast_vote(&mut client, q, i + 1);
        assert_eq!(pending, i as u64 + 1, "each ack reflects the queue");
    }
    let opt = client
        .post_json("/optimize", "{\"strategy\":\"multi\",\"batch\":1}")
        .unwrap()
        .json()
        .unwrap();
    let rounds = opt.get("rounds").and_then(|v| v.as_u64()).unwrap();
    assert_eq!(rounds, questions.len() as u64, "one round per vote");
    let pending_after = cast_vote(&mut client, &questions[0], 0);
    assert_eq!(pending_after, 1, "optimize consumed the backlog");
    client.post_json("/shutdown", "{}").unwrap();
    let mut server = server;
    let status = server.child.wait().unwrap();
    assert!(status.success(), "clean drain exits 0: {status:?}");

    // Restart over the same WAL: the pending vote must still be queued
    // — the next ack counts from one recovered vote, not zero.
    let server2 = spawn_server(&system, &wal, None);
    let mut client2 = HttpClient::connect(server2.addr).unwrap();
    let pending_restart = cast_vote(&mut client2, &questions[1], 0);
    assert_eq!(
        pending_restart, 2,
        "restart must recover the acked-but-unconsumed vote"
    );
    client2.post_json("/shutdown", "{}").unwrap();
    let mut server2 = server2;
    assert!(server2.child.wait().unwrap().success());

    // Recovery of the WAL is deterministic: two recoveries agree bit
    // for bit on version and weight checksum.
    let r1 = recover(&system, &wal, Some(&tmp.path("r1.json"))).unwrap();
    let r2 = recover(&system, &wal, Some(&tmp.path("r2.json"))).unwrap();
    assert_eq!(r1.report.recovered_version, r2.report.recovered_version);
    assert_eq!(r1.report.weights_crc, r2.report.weights_crc);
    assert_eq!(r1.report.votes_recovered, 2, "both pending votes survive");
}

#[test]
fn crash_mid_round_loses_no_acked_vote() {
    let (tmp, system, questions) = setup("crash");
    let wal = tmp.path("wal");
    let votes = 3usize;

    // The server aborts (std::process::abort) right after the second
    // round-commit fsync — mid-way through a batch=1 optimization of
    // three votes, exactly the torn-state scenario.
    let server = spawn_server(&system, &wal, Some(2));
    let mut client = HttpClient::connect(server.addr).unwrap();
    for i in 0..votes {
        let q = &questions[i % questions.len()];
        cast_vote(&mut client, q, i);
    }
    let crash = client.post_json("/optimize", "{\"strategy\":\"multi\",\"batch\":1}");
    assert!(
        crash.is_err(),
        "the optimize call must die with the server: {crash:?}"
    );
    let mut server = server;
    let status = server.child.wait().unwrap();
    assert!(!status.success(), "abort() must not exit cleanly");

    // Recovery: two committed rounds replay, and the third vote — acked
    // durable before the crash — is still pending. Nothing acked was
    // lost, and recovery is bit-identical across runs.
    let r1 = recover(&system, &wal, Some(&tmp.path("r1.json"))).unwrap();
    assert_eq!(r1.report.rounds_applied, 2, "{:?}", r1.report);
    assert_eq!(
        r1.report.votes_recovered, 1,
        "the acked third vote must survive the crash"
    );
    let r2 = recover(&system, &wal, Some(&tmp.path("r2.json"))).unwrap();
    assert_eq!(r1.report.recovered_version, r2.report.recovered_version);
    assert_eq!(r1.report.weights_crc, r2.report.weights_crc);

    // And the recovered bundle serves again, with the pending vote
    // still queued.
    let server2 = spawn_server(&system, &wal, None);
    let mut client2 = HttpClient::connect(server2.addr).unwrap();
    let pending = cast_vote(&mut client2, &questions[0], 1);
    assert_eq!(pending, 2, "recovered pending vote + the new one");
    client2.post_json("/shutdown", "{}").unwrap();
    let mut server2 = server2;
    assert!(server2.child.wait().unwrap().success());
}

#[test]
fn served_rankings_match_local_evaluation() {
    // The wire ranking must be bit-identical to evaluating the same
    // bundle locally: same nodes, same order, same f64 score bits.
    let (tmp, system, questions) = setup("rankmatch");
    let wal = tmp.path("wal");
    let (qa, _doc_ids) = SystemBundle::load(&system).unwrap().into_system().unwrap();

    let server = spawn_server(&system, &wal, None);
    let mut client = HttpClient::connect(server.addr).unwrap();
    for q in &questions {
        let ids: Vec<String> = q.answers.iter().map(|a| a.to_string()).collect();
        let body = format!("{{\"query\":{},\"answers\":[{}]}}", q.query, ids.join(","));
        let doc = client.post_json("/rank", &body).unwrap().json().unwrap();
        let ranking = doc.get("ranking").and_then(|v| v.as_array()).unwrap();
        let answers: Vec<kg_graph::NodeId> =
            q.answers.iter().map(|&a| kg_graph::NodeId(a)).collect();
        let local = kg_sim::rank_answers(
            &qa.graph,
            kg_graph::NodeId(q.query),
            &answers,
            &qa.sim,
            answers.len(),
        );
        assert_eq!(ranking.len(), local.len());
        for (wire, want) in ranking.iter().zip(&local) {
            assert_eq!(
                wire.get("node").and_then(|v| v.as_u64()),
                Some(want.node.0 as u64)
            );
            assert_eq!(
                wire.get("score_bits").and_then(|v| v.as_u64()),
                Some(want.score.to_bits()),
                "served score must be bit-identical to local evaluation"
            );
        }
    }
    client.post_json("/shutdown", "{}").unwrap();
    let mut server = server;
    assert!(server.child.wait().unwrap().success());
}
