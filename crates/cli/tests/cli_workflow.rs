//! End-to-end CLI workflow: gen-corpus → build → ask → vote → optimize →
//! ask again, all against real files in a temp directory.

use std::path::PathBuf;
use votekg_cli::{ask, build, gen_corpus, optimize, stats, vote, CliError, OptimizeStrategy};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("votekg-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn setup(tag: &str) -> (TempDir, PathBuf, PathBuf) {
    let tmp = TempDir::new(tag);
    let corpus = tmp.path("corpus.json");
    let system = tmp.path("system.json");
    let n = gen_corpus(80, 7, &corpus).unwrap();
    assert_eq!(n, 80);
    build(&corpus, &system, 2, 2).unwrap();
    (tmp, corpus, system)
}

#[test]
fn full_workflow_improves_the_voted_question() {
    let (tmp, _corpus, system) = setup("workflow");
    let log = tmp.path("votes.jsonl");
    let question = "how to refund an order after the deadline";

    // Initial ranking.
    let before = ask(&system, question, 10).unwrap();
    assert!(!before.ranked.is_empty());
    assert!(before.ranked[0].1 > 0.0, "question should match something");

    // Vote for the 3rd-ranked document (a negative vote).
    let target = before.ranked[2].0.clone();
    let (v, negative) = vote(&system, &log, question, &target, 10).unwrap();
    assert!(negative);
    assert_eq!(v.best_rank(), 3);
    assert!(log.exists());

    // Optimize and re-ask: the voted document must now rank first.
    let report = optimize(&system, &log, OptimizeStrategy::Multi, 0).unwrap();
    assert_eq!(report.outcomes.len(), 1);
    assert_eq!(report.outcomes[0].rank_after, 1, "{report:?}");

    let after = ask(&system, question, 10).unwrap();
    assert_eq!(after.ranked[0].0, target, "voted doc should rank first");
}

#[test]
fn multiple_votes_accumulate_in_the_log() {
    let (tmp, _corpus, system) = setup("multilog");
    let log = tmp.path("votes.jsonl");
    for (q, pick) in [
        ("refund order rules", 1usize),
        ("cart checkout quantity", 2),
        ("delivery tracking package", 1),
    ] {
        let ranked = ask(&system, q, 10).unwrap().ranked;
        if ranked.len() > pick && ranked[pick].1 > 0.0 {
            let target = ranked[pick].0.clone();
            vote(&system, &log, q, &target, 10).unwrap();
        }
    }
    let report = optimize(
        &system,
        &log,
        OptimizeStrategy::SplitMerge { workers: 2 },
        0,
    )
    .unwrap();
    assert!(!report.outcomes.is_empty());
    assert!(report.omega() >= 0, "{report:?}");
}

#[test]
fn incremental_optimize_satisfies_the_voted_question() {
    let (tmp, _corpus, system) = setup("incremental");
    let log = tmp.path("votes.jsonl");
    let mut voted = Vec::new();
    for (q, pick) in [
        ("refund order rules", 2usize),
        ("cart checkout quantity", 2),
        ("delivery tracking package", 1),
    ] {
        let ranked = ask(&system, q, 10).unwrap().ranked;
        if ranked.len() > pick && ranked[pick].1 > 0.0 {
            let target = ranked[pick].0.clone();
            vote(&system, &log, q, &target, 10).unwrap();
            voted.push((q, target));
        }
    }
    assert!(!voted.is_empty());
    // Batches of one vote: every vote is its own solve + re-rank round.
    let report = optimize(&system, &log, OptimizeStrategy::Multi, 1).unwrap();
    assert_eq!(report.outcomes.len(), voted.len(), "{report:?}");
    // The last-voted question's pick must now rank first in the
    // persisted bundle (earlier picks may be displaced by later batches).
    let (q, target) = voted.last().unwrap();
    let after = ask(&system, q, 10).unwrap();
    assert_eq!(&after.ranked[0].0, target, "voted doc should rank first");
}

#[test]
fn solve_timeout_is_plumbed_to_the_solver() {
    // `--solve-timeout-ms 0` (the degenerate budget) must reach the
    // solver: every solve stops at its first deadline check and is
    // classified TimedOut, while the bundle stays intact.
    let (tmp, _corpus, system) = setup("timeout");
    let log = tmp.path("votes.jsonl");
    let ranked = ask(&system, "refund order rules", 10).unwrap().ranked;
    assert!(ranked.len() > 2 && ranked[2].1 > 0.0);
    vote(
        &system,
        &log,
        "refund order rules",
        &ranked[2].0.clone(),
        10,
    )
    .unwrap();

    let (report, _) = votekg_cli::optimize_instrumented(
        &system,
        &log,
        OptimizeStrategy::Multi,
        0,
        votekg_cli::TelemetryMode::Off,
        Some(std::time::Duration::ZERO),
        1,
        None,
        None,
    )
    .unwrap();
    assert_eq!(report.timed_out_solves(), 1, "{report:?}");
    // The bundle file is still loadable after the truncated round.
    ask(&system, "refund order rules", 5).unwrap();
}

#[test]
fn durable_optimize_writes_a_recoverable_wal() {
    let (tmp, _corpus, system) = setup("durable");
    let log = tmp.path("votes.jsonl");
    let wal_dir = tmp.path("wal");
    let question = "refund order rules";
    let ranked = ask(&system, question, 10).unwrap().ranked;
    assert!(ranked.len() > 2 && ranked[2].1 > 0.0);
    let target = ranked[2].0.clone();
    vote(&system, &log, question, &target, 10).unwrap();

    // Keep a copy of the pre-optimize bundle: the "crashed before
    // persisting" scenario recovers it from the WAL alone.
    let stale = tmp.path("system-stale.json");
    std::fs::copy(&system, &stale).unwrap();

    let (report, _) = votekg_cli::optimize_instrumented(
        &system,
        &log,
        OptimizeStrategy::Multi,
        1,
        votekg_cli::TelemetryMode::Off,
        None,
        1,
        None,
        Some(&wal_dir),
    )
    .unwrap();
    assert_eq!(report.outcomes.len(), 1);
    assert!(wal_dir.join("wal.log").exists());
    let after = ask(&system, question, 10).unwrap();
    assert_eq!(after.ranked[0].0, target);

    // Recover the stale bundle from the WAL: the ranking must match the
    // persisted optimized bundle exactly.
    let recovered = tmp.path("system-recovered.json");
    let outcome = votekg_cli::recover(&stale, &wal_dir, Some(&recovered)).unwrap();
    assert!(outcome.report.torn_tail.is_none());
    let from_wal = ask(&recovered, question, 10).unwrap();
    assert_eq!(from_wal.ranked, after.ranked);

    // Recovery is idempotent: a second run lands on the same state.
    let again = votekg_cli::recover(&recovered, &wal_dir, Some(&recovered)).unwrap();
    assert_eq!(
        again.report.recovered_version,
        outcome.report.recovered_version
    );
    assert_eq!(again.report.weights_crc, outcome.report.weights_crc);
}

#[test]
fn vote_for_unknown_document_fails_cleanly() {
    let (tmp, _corpus, system) = setup("unknown");
    let log = tmp.path("votes.jsonl");
    let err = vote(&system, &log, "refund order", "no-such-doc", 10).unwrap_err();
    assert!(matches!(err, CliError::NotFound(_)), "{err}");
    assert!(!log.exists(), "failed vote must not write the log");
}

#[test]
fn vote_for_document_outside_topk_fails_cleanly() {
    let (tmp, _corpus, system) = setup("outside");
    let log = tmp.path("votes.jsonl");
    let ranked = ask(&system, "refund order", 3).unwrap().ranked;
    // Find a doc not in the top-3.
    let all = ask(&system, "refund order", 100).unwrap().ranked;
    let outside = all
        .iter()
        .map(|(d, _)| d)
        .find(|d| !ranked.iter().any(|(r, _)| r == *d))
        .expect("corpus has more than 3 docs");
    let err = vote(&system, &log, "refund order", outside, 3).unwrap_err();
    assert!(matches!(err, CliError::NotFound(_)), "{err}");
}

#[test]
fn optimize_without_votes_fails_cleanly() {
    let (tmp, _corpus, system) = setup("novotes");
    let log = tmp.path("votes.jsonl");
    let err = optimize(&system, &log, OptimizeStrategy::Multi, 0).unwrap_err();
    assert!(matches!(err, CliError::Io { .. }), "{err}");
}

#[test]
fn stats_reports_counts() {
    let (_tmp, _corpus, system) = setup("stats");
    let text = stats(&system).unwrap();
    assert!(text.contains("documents: 80"), "{text}");
    assert!(text.contains("vocabulary:"), "{text}");
    assert!(text.contains("L = 2"), "{text}");
}

#[test]
fn build_rejects_garbage_corpus() {
    let tmp = TempDir::new("garbage");
    let corpus = tmp.path("bad.json");
    std::fs::write(&corpus, "not json at all").unwrap();
    let err = build(&corpus, &tmp.path("out.json"), 2, 2).unwrap_err();
    assert!(matches!(err, CliError::Parse { .. }), "{err}");
}

#[test]
fn ask_does_not_mutate_the_bundle() {
    let (_tmp, _corpus, system) = setup("readonly");
    let before = std::fs::read_to_string(&system).unwrap();
    ask(&system, "refund order", 5).unwrap();
    let after = std::fs::read_to_string(&system).unwrap();
    assert_eq!(before, after);
}

#[test]
fn explain_lists_relation_chains() {
    let (_tmp, _corpus, system) = setup("explain");
    let ranked = votekg_cli::ask(&system, "refund order rules", 3)
        .unwrap()
        .ranked;
    assert!(ranked[0].1 > 0.0);
    let lines = votekg_cli::explain(&system, "refund order rules", &ranked[0].0, 4).unwrap();
    assert!(!lines.is_empty() && lines.len() <= 4);
    // Every explanation line carries a percentage and an arrow chain.
    for l in &lines {
        assert!(l.contains('%'), "{l}");
        assert!(l.contains("->"), "{l}");
    }
}

#[test]
fn explain_unreachable_doc_fails_cleanly() {
    let (_tmp, _corpus, system) = setup("explain-miss");
    let err = votekg_cli::explain(&system, "zebra talk", "doc-0", 3).unwrap_err();
    assert!(matches!(err, CliError::NotFound(_)), "{err}");
}
