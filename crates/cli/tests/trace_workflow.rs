//! End-to-end flight-recorder workflow: record a trace of an optimize
//! run, round-trip it through export, and gate the timeline report's
//! phase coverage — the same pipeline `scripts/check.sh` smoke-tests
//! through the binary.
//!
//! Lives in its own integration-test binary so the process-global
//! recorder is not shared with the other CLI test binaries.

use std::path::PathBuf;
use std::sync::Mutex;
use votekg_cli::{
    ask, build, gen_corpus, optimize_instrumented, parse_chrome_trace, trace_export, trace_record,
    trace_report, vote, CliError, OptimizeStrategy, TelemetryMode,
};

/// The recorder is process-global; serialize the tests that use it.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("votekg-trace-wf-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// gen-corpus → build → a few negative votes, ready to optimize.
fn setup(tag: &str) -> (TempDir, PathBuf, PathBuf) {
    let tmp = TempDir::new(tag);
    let corpus = tmp.path("corpus.json");
    let system = tmp.path("system.json");
    let log = tmp.path("votes.jsonl");
    gen_corpus(80, 7, &corpus).unwrap();
    build(&corpus, &system, 2, 2).unwrap();
    for (q, pick) in [
        ("refund order rules", 2usize),
        ("cart checkout quantity", 1),
        ("delivery tracking package", 1),
    ] {
        let ranked = ask(&system, q, 10).unwrap().ranked;
        if ranked.len() > pick && ranked[pick].1 > 0.0 {
            let target = ranked[pick].0.clone();
            vote(&system, &log, q, &target, 10).unwrap();
        }
    }
    (tmp, system, log)
}

#[test]
fn record_export_report_round_trip() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (tmp, system, log) = setup("roundtrip");
    let out = tmp.path("run.trace.json");
    let before = std::fs::read_to_string(&system).unwrap();

    let (report, parsed) = trace_record(&system, &log, OptimizeStrategy::Multi, 0, &out).unwrap();
    assert!(!report.outcomes.is_empty());
    assert!(
        parsed.spans.len() > 1,
        "expected phase spans, got {parsed:?}"
    );
    // `trace record` is a pure observation: the bundle is untouched.
    assert_eq!(before, std::fs::read_to_string(&system).unwrap());

    // The round span and at least one inner phase must be present.
    let names: Vec<&str> = parsed.spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"votekg.votes.multi"), "{names:?}");
    assert!(
        names.iter().any(|n| n.starts_with("votekg.votes.solve.")),
        "{names:?}"
    );

    // Export normalizes; the normalized file parses to the same spans.
    let (exported, normalized) = trace_export(&out).unwrap();
    assert_eq!(exported.spans, parsed.spans);
    let norm_path = tmp.path("normalized.trace.json");
    std::fs::write(&norm_path, &normalized).unwrap();
    let reparsed = parse_chrome_trace(&normalized).unwrap();
    assert_eq!(reparsed.spans, parsed.spans);

    // The report finds the round and attributes >=95% of its wall-clock
    // to phases (the ISSUE acceptance bound).
    let (timeline, rendered) = trace_report(&out, Some(0.95)).unwrap();
    assert!(!timeline.rounds.is_empty());
    assert!(rendered.contains("votekg.votes.multi"), "{rendered}");
    // An impossible floor trips the gate.
    let err = trace_report(&out, Some(1.01)).unwrap_err();
    assert!(matches!(err, CliError::Trace(_)), "{err}");
}

#[test]
fn optimize_trace_flag_writes_loadable_trace() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (tmp, system, log) = setup("optflag");
    let out = tmp.path("opt.trace.json");
    let (report, dump) = optimize_instrumented(
        &system,
        &log,
        OptimizeStrategy::SplitMerge { workers: 2 },
        0,
        TelemetryMode::Off,
        None,
        1,
        Some(&out),
        None,
    )
    .unwrap();
    assert!(!report.outcomes.is_empty());
    assert!(dump.is_none(), "--telemetry off must still produce no dump");
    let parsed = parse_chrome_trace(&std::fs::read_to_string(&out).unwrap()).unwrap();
    let names: Vec<&str> = parsed.spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"votekg.cluster.round"), "{names:?}");
    assert!(names.contains(&"votekg.cluster.solve_all"), "{names:?}");
    let (timeline, _) = trace_report(&out, None).unwrap();
    let round = timeline
        .rounds
        .iter()
        .find(|r| r.name == "votekg.cluster.round")
        .expect("cluster round in report");
    assert!(
        round.coverage >= 0.95,
        "cluster round coverage {:.3} below 95%",
        round.coverage
    );
}

#[test]
fn bad_trace_files_are_rejected() {
    let tmp = TempDir::new("bad");
    let p = tmp.path("x.trace.json");
    std::fs::write(&p, "{\"traceEvents\": []}").unwrap();
    let err = trace_export(&p).unwrap_err();
    assert!(err.to_string().contains("schema"), "{err}");
    let missing = tmp.path("nope.trace.json");
    assert!(matches!(
        trace_report(&missing, None),
        Err(CliError::Io { .. })
    ));
}
