//! Shape of the structured telemetry report emitted by
//! `votekg optimize --telemetry json|prom`.
//!
//! Lives in its own integration-test binary so the process-global
//! telemetry registry is not shared with the workflow tests.

use serde::Value;
use std::path::PathBuf;
use std::sync::Mutex;
use votekg_cli::{
    ask, build, gen_corpus, optimize_instrumented, vote, OptimizeStrategy, TelemetryMode,
};

/// The telemetry registry is process-global; serialize the tests that
/// enable/reset it.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "votekg-telemetry-test-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// gen-corpus → build → a few negative votes, ready to optimize.
fn setup(tag: &str) -> (TempDir, PathBuf, PathBuf) {
    let tmp = TempDir::new(tag);
    let corpus = tmp.path("corpus.json");
    let system = tmp.path("system.json");
    let log = tmp.path("votes.jsonl");
    gen_corpus(80, 7, &corpus).unwrap();
    build(&corpus, &system, 2, 2).unwrap();
    for (q, pick) in [
        ("refund order rules", 2usize),
        ("cart checkout quantity", 1),
        ("delivery tracking package", 1),
    ] {
        let ranked = ask(&system, q, 10).unwrap().ranked;
        if ranked.len() > pick && ranked[pick].1 > 0.0 {
            let target = ranked[pick].0.clone();
            vote(&system, &log, q, &target, 10).unwrap();
        }
    }
    (tmp, system, log)
}

/// The acceptance shape: a split-and-merge run's JSON dump carries the
/// per-phase span durations, the per-solver iteration counters with
/// convergence reasons, and the violated-vote counts before/after.
#[test]
fn json_dump_has_per_phase_and_per_solver_shape() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (_tmp, system, log) = setup("json");
    let (report, dump) = optimize_instrumented(
        &system,
        &log,
        OptimizeStrategy::SplitMerge { workers: 2 },
        0,
        TelemetryMode::Json,
        None,
        2,
        None,
        None,
    )
    .unwrap();
    assert!(!report.outcomes.is_empty());
    let dump = dump.expect("json mode returns a dump");
    let v: Value = serde_json::from_str(&dump).expect("telemetry dump is valid JSON");

    // Per-phase span durations for the split-merge round.
    let spans = v.get("spans").expect("spans section");
    for phase in [
        "votekg.cluster.round",
        "votekg.cluster.footprint",
        "votekg.cluster.similarity",
        "votekg.cluster.ap",
        "votekg.cluster.solve",
        "votekg.cluster.merge",
    ] {
        let stats = spans
            .get(phase)
            .unwrap_or_else(|| panic!("missing span {phase}: {dump}"));
        assert!(
            stats.get("count").unwrap().as_u64().unwrap() >= 1,
            "{phase}"
        );
        for field in ["total_ns", "mean_ns", "max_ns"] {
            assert!(stats.get(field).is_some(), "span {phase} lacks {field}");
        }
    }

    // Per-solver iteration counts and convergence reasons.
    let counters = v.get("counters").expect("counters section");
    let entries = counters.as_object().expect("counters is an object");
    assert!(counters.get("votekg.sgp.solves").is_some(), "{dump}");
    assert!(
        counters
            .get("votekg.sgp.inner_iterations")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0,
        "{dump}"
    );
    assert!(
        entries
            .iter()
            .any(|(k, _)| k.starts_with("votekg.sgp.inner_steps{optimizer=")),
        "no per-optimizer iteration counter: {dump}"
    );
    assert!(
        entries
            .iter()
            .any(|(k, _)| k.starts_with("votekg.sgp.converged{reason=")),
        "no convergence-reason counter: {dump}"
    );

    // Violated-vote counts before/after from the per-cluster multi solves.
    let violated = |which: &str| {
        entries
            .iter()
            .filter(|(k, _)| k.starts_with(&format!("votekg.votes.violated_{which}{{")))
            .map(|(_, v)| v.as_u64().unwrap())
            .sum::<u64>()
    };
    let before = violated("before");
    let after = violated("after");
    assert!(before >= 1, "negative votes start violated: {dump}");
    assert!(after <= before, "optimization should not add violations");
    assert_eq!(
        before,
        report.violated_votes_before() as u64,
        "counter disagrees with the report"
    );

    // Per-vote recent spans carry the solve outcome fields.
    let recent = v.get("recent_spans").expect("recent_spans section");
    let multi = recent
        .as_array()
        .unwrap()
        .iter()
        .find(|s| s.get("name").unwrap().as_str() == Some("votekg.votes.multi"))
        .expect("multi solve span recorded");
    let fields = multi.get("fields").unwrap();
    for f in ["votes", "violated_before", "violated_after", "discarded"] {
        assert!(
            fields.get(f).is_some(),
            "multi span lacks field {f}: {dump}"
        );
    }
}

#[test]
fn prometheus_dump_renders_exposition_format() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (_tmp, system, log) = setup("prom");
    let (_, dump) = optimize_instrumented(
        &system,
        &log,
        OptimizeStrategy::Multi,
        0,
        TelemetryMode::Prom,
        None,
        1,
        None,
        None,
    )
    .unwrap();
    let dump = dump.expect("prom mode returns a dump");
    assert!(
        dump.contains("# TYPE votekg_sgp_solves_total counter"),
        "{dump}"
    );
    assert!(
        dump.contains("votekg_sgp_inner_steps_total{optimizer="),
        "{dump}"
    );
    assert!(
        dump.contains("_bucket{"),
        "histograms render buckets: {}",
        &dump[..dump.len().min(400)]
    );
}

#[test]
fn off_mode_returns_no_dump() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (_tmp, system, log) = setup("off");
    let (report, dump) = optimize_instrumented(
        &system,
        &log,
        OptimizeStrategy::Multi,
        0,
        TelemetryMode::Off,
        None,
        1,
        None,
        None,
    )
    .unwrap();
    assert!(dump.is_none());
    assert!(!report.outcomes.is_empty());
}
