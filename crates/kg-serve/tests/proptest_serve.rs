//! Cache-coherence property: under *arbitrary* interleavings of weight
//! mutations, single-query lookups, batched lookups, and manual cache
//! clears, a [`ScoreServer`]'s output is byte-identical to an uncached
//! [`kg_sim::rank_answers`] evaluation at every step.
//!
//! This is the contract the whole serving design rests on — delta-based
//! invalidation is only a performance trick if it can never serve a stale
//! ranking.

use kg_graph::{EdgeId, GraphBuilder, KnowledgeGraph, NodeId, NodeKind};
use kg_serve::{ScoreServer, ServeConfig};
use kg_sim::{rank_answers, BatchQuery, SimilarityConfig};
use proptest::prelude::*;
use std::collections::HashSet;

const N_QUERIES: usize = 4;
const N_HUBS: usize = 10;
const N_ANSWERS: usize = 5;

/// Builds a layered graph (queries → hubs → hubs/answers) from a raw
/// edge-selector list, so topology itself is property-generated.
fn build_graph(edge_picks: &[(u8, u8, f64)]) -> (KnowledgeGraph, Vec<NodeId>, Vec<NodeId>) {
    let mut b = GraphBuilder::new();
    let queries: Vec<NodeId> = (0..N_QUERIES)
        .map(|i| b.add_node(format!("q{i}"), NodeKind::Query))
        .collect();
    let hubs: Vec<NodeId> = (0..N_HUBS)
        .map(|i| b.add_node(format!("h{i}"), NodeKind::Entity))
        .collect();
    let answers: Vec<NodeId> = (0..N_ANSWERS)
        .map(|i| b.add_node(format!("a{i}"), NodeKind::Answer))
        .collect();
    let mut seen = HashSet::new();
    // Guarantee every query reaches at least one hub and every hub one
    // answer, then sprinkle the generated edges on top.
    for (i, &q) in queries.iter().enumerate() {
        b.add_edge(q, hubs[i % N_HUBS], 0.5).unwrap();
        seen.insert((q, hubs[i % N_HUBS]));
    }
    for (i, &h) in hubs.iter().enumerate() {
        b.add_edge(h, answers[i % N_ANSWERS], 0.5).unwrap();
        seen.insert((h, answers[i % N_ANSWERS]));
    }
    for &(from_sel, to_sel, w) in edge_picks {
        // Sources: queries then hubs. Targets: hubs then answers.
        let from = if (from_sel as usize) < N_QUERIES {
            queries[from_sel as usize]
        } else {
            hubs[(from_sel as usize - N_QUERIES) % N_HUBS]
        };
        let to = if (to_sel as usize) < N_HUBS {
            hubs[to_sel as usize]
        } else {
            answers[(to_sel as usize - N_HUBS) % N_ANSWERS]
        };
        if from != to && seen.insert((from, to)) {
            b.add_edge(from, to, w).unwrap();
        }
    }
    (b.build(), queries, answers)
}

/// One step of the interleaving, decoded from generated integers:
/// `0` → mutate a weight, `1` → single rank, `2` → batch rank,
/// `3` → clear the cache.
type Op = (u8, u8, f64, u8);

fn arb_scenario() -> impl Strategy<Value = (Vec<(u8, u8, f64)>, Vec<Op>)> {
    (
        proptest::collection::vec(
            (
                0u8..(N_QUERIES + N_HUBS) as u8,
                0u8..(N_HUBS + N_ANSWERS) as u8,
                0.05f64..1.0,
            ),
            0..60,
        ),
        proptest::collection::vec((0u8..4, 0u8..64, 0.05f64..1.0, 1u8..6), 1..40),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn server_is_always_identical_to_uncached_ranking(
        (edge_picks, ops) in arb_scenario()
    ) {
        let (mut graph, queries, answers) = build_graph(&edge_picks);
        let sim = SimilarityConfig::default();
        let mut server = ScoreServer::new(ServeConfig {
            sim,
            workers: 2,
            ..Default::default()
        });
        let edge_ids: Vec<EdgeId> = graph.edges().map(|e| e.edge).collect();

        for &(op, sel, weight, k) in &ops {
            match op {
                0 => {
                    let e = edge_ids[sel as usize % edge_ids.len()];
                    graph.set_weight(e, weight).unwrap();
                }
                1 => {
                    let q = queries[sel as usize % queries.len()];
                    let got = server.rank(&graph, q, &answers, k as usize);
                    let want = rank_answers(&graph, q, &answers, &sim, k as usize);
                    prop_assert_eq!(got, want, "single rank diverged at query {}", q);
                }
                2 => {
                    let requests: Vec<BatchQuery> = queries
                        .iter()
                        .map(|&q| BatchQuery { query: q, answers: &answers, k: k as usize })
                        .collect();
                    let got = server.rank_batch(&graph, &requests);
                    for (i, &q) in queries.iter().enumerate() {
                        let want = rank_answers(&graph, q, &answers, &sim, k as usize);
                        prop_assert_eq!(&got[i], &want, "batch rank diverged at query {}", q);
                    }
                }
                _ => server.clear(),
            }
        }
        // The interleaving must actually exercise the cache: by the end,
        // hits + misses covers every rank op issued.
        let stats = server.stats();
        let rank_ops: u64 = ops
            .iter()
            .map(|&(op, ..)| match op {
                1 => 1,
                2 => queries.len() as u64,
                _ => 0,
            })
            .sum();
        prop_assert_eq!(stats.hits + stats.misses, rank_ops);
    }
}
