//! Delta-repair exactness properties: under arbitrary interleavings of
//! weight edits, snapshot capture/restore, version regressions, and
//! single/batched lookups, every ranking the serving layer produces —
//! whether it came from a cache hit, a fresh fill, or an in-place
//! `delta_phi` repair — must be **bit-identical** (`f64::to_bits`) to an
//! uncached [`kg_sim::rank_answers`] evaluation of the same graph.
//!
//! This extends `proptest_serve.rs` (which predates cache repair) with
//! the edge cases `version_regression.rs` pins deterministically: a
//! `WeightSnapshot::restore` moves the version *forward* and must ride
//! the delta path, while handing the server an *older* graph has unknown
//! lineage and must fully clear. Here both events fire at arbitrary
//! points of a generated edit/rank interleaving.

use kg_graph::{EdgeId, GraphBuilder, KnowledgeGraph, NodeId, NodeKind, WeightSnapshot};
use kg_serve::{ScoreServer, ServeConfig, SnapshotServer};
use kg_sim::{rank_answers, BatchQuery, RankedAnswer, SimilarityConfig};
use proptest::prelude::*;
use std::collections::HashSet;

const N_QUERIES: usize = 4;
const N_HUBS: usize = 10;
const N_ANSWERS: usize = 5;

/// Layered graph (queries → hubs → hubs/answers) from a generated edge
/// list, with guaranteed base connectivity — same scheme as
/// `proptest_serve.rs`.
fn build_graph(edge_picks: &[(u8, u8, f64)]) -> (KnowledgeGraph, Vec<NodeId>, Vec<NodeId>) {
    let mut b = GraphBuilder::new();
    let queries: Vec<NodeId> = (0..N_QUERIES)
        .map(|i| b.add_node(format!("q{i}"), NodeKind::Query))
        .collect();
    let hubs: Vec<NodeId> = (0..N_HUBS)
        .map(|i| b.add_node(format!("h{i}"), NodeKind::Entity))
        .collect();
    let answers: Vec<NodeId> = (0..N_ANSWERS)
        .map(|i| b.add_node(format!("a{i}"), NodeKind::Answer))
        .collect();
    let mut seen = HashSet::new();
    for (i, &q) in queries.iter().enumerate() {
        b.add_edge(q, hubs[i % N_HUBS], 0.5).unwrap();
        seen.insert((q, hubs[i % N_HUBS]));
    }
    for (i, &h) in hubs.iter().enumerate() {
        b.add_edge(h, answers[i % N_ANSWERS], 0.5).unwrap();
        seen.insert((h, answers[i % N_ANSWERS]));
    }
    for &(from_sel, to_sel, w) in edge_picks {
        let from = if (from_sel as usize) < N_QUERIES {
            queries[from_sel as usize]
        } else {
            hubs[(from_sel as usize - N_QUERIES) % N_HUBS]
        };
        let to = if (to_sel as usize) < N_HUBS {
            hubs[to_sel as usize]
        } else {
            answers[(to_sel as usize - N_HUBS) % N_ANSWERS]
        };
        if from != to && seen.insert((from, to)) {
            b.add_edge(from, to, w).unwrap();
        }
    }
    (b.build(), queries, answers)
}

/// Bitwise comparison against the uncached oracle — `==` on `f64` would
/// let `-0.0`/`0.0` confusions slide.
fn bits_equal(served: &[RankedAnswer], oracle: &[RankedAnswer]) -> Result<(), String> {
    if served.len() != oracle.len() {
        return Err(format!(
            "length mismatch: served {} vs oracle {}",
            served.len(),
            oracle.len()
        ));
    }
    for (s, o) in served.iter().zip(oracle) {
        if s.node != o.node || s.rank != o.rank || s.score.to_bits() != o.score.to_bits() {
            return Err(format!("entry diverged: served {s:?} vs oracle {o:?}"));
        }
    }
    Ok(())
}

/// One step: `0` → set_weight, `1` → rank, `2` → batch rank,
/// `3` → capture a weight snapshot, `4` → restore the captured snapshot
/// (forward-version rollback), `5` → rank against a stale pre-mutation
/// clone (version regression), then fall back to the live graph.
type Op = (u8, u8, f64, u8);

fn arb_scenario() -> impl Strategy<Value = (Vec<(u8, u8, f64)>, Vec<Op>)> {
    (
        proptest::collection::vec(
            (
                0u8..(N_QUERIES + N_HUBS) as u8,
                0u8..(N_HUBS + N_ANSWERS) as u8,
                0.05f64..1.0,
            ),
            0..60,
        ),
        proptest::collection::vec((0u8..6, 0u8..64, 0.05f64..1.0, 1u8..6), 1..40),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `ScoreServer` with the repair path enabled (the default config)
    /// stays bit-identical to the oracle through edits, rollbacks, and
    /// version regressions.
    #[test]
    fn repaired_rankings_are_bit_identical_to_uncached(
        (edge_picks, ops) in arb_scenario()
    ) {
        let (mut graph, queries, answers) = build_graph(&edge_picks);
        let sim = SimilarityConfig::default();
        let mut server = ScoreServer::new(ServeConfig { sim, ..Default::default() });
        let edge_ids: Vec<EdgeId> = graph.edges().map(|e| e.edge).collect();
        // A stale clone for the regression op: same weights as the start,
        // version counter behind the live graph as soon as any edit lands.
        let stale = graph.clone();
        let mut snapshot: Option<WeightSnapshot> = None;

        for &(op, sel, weight, k) in &ops {
            match op {
                0 => {
                    let e = edge_ids[sel as usize % edge_ids.len()];
                    graph.set_weight(e, weight).unwrap();
                }
                1 => {
                    let q = queries[sel as usize % queries.len()];
                    let got = server.rank(&graph, q, &answers, k as usize);
                    let want = rank_answers(&graph, q, &answers, &sim, k as usize);
                    prop_assert!(bits_equal(&got, &want).is_ok(),
                        "rank: {}", bits_equal(&got, &want).unwrap_err());
                }
                2 => {
                    let requests: Vec<BatchQuery> = queries
                        .iter()
                        .map(|&q| BatchQuery { query: q, answers: &answers, k: k as usize })
                        .collect();
                    let got = server.rank_batch(&graph, &requests);
                    for (i, &q) in queries.iter().enumerate() {
                        let want = rank_answers(&graph, q, &answers, &sim, k as usize);
                        prop_assert!(bits_equal(&got[i], &want).is_ok(),
                            "batch: {}", bits_equal(&got[i], &want).unwrap_err());
                    }
                }
                3 => snapshot = Some(WeightSnapshot::capture(&graph)),
                4 => {
                    if let Some(s) = &snapshot {
                        // Forward-version rollback: must invalidate (or
                        // repair) through the delta path, never serve the
                        // pre-restore scores.
                        s.restore(&mut graph);
                        let q = queries[sel as usize % queries.len()];
                        let got = server.rank(&graph, q, &answers, k as usize);
                        let want = rank_answers(&graph, q, &answers, &sim, k as usize);
                        prop_assert!(bits_equal(&got, &want).is_ok(),
                            "post-restore: {}", bits_equal(&got, &want).unwrap_err());
                    }
                }
                _ => {
                    // Version regression: the stale clone's counter is
                    // behind once any edit has landed, so the server must
                    // clear and still serve the stale graph's true scores
                    // — then recover coherently on the live graph.
                    let q = queries[sel as usize % queries.len()];
                    let got = server.rank(&stale, q, &answers, k as usize);
                    let want = rank_answers(&stale, q, &answers, &sim, k as usize);
                    prop_assert!(bits_equal(&got, &want).is_ok(),
                        "stale graph: {}", bits_equal(&got, &want).unwrap_err());
                    let got = server.rank(&graph, q, &answers, k as usize);
                    let want = rank_answers(&graph, q, &answers, &sim, k as usize);
                    prop_assert!(bits_equal(&got, &want).is_ok(),
                        "back on live graph: {}", bits_equal(&got, &want).unwrap_err());
                }
            }
        }
    }

    /// The sharded `SnapshotServer` holds the same bit-exactness across
    /// epoch transitions: every `rank_at` equals an uncached evaluation
    /// of the snapshot's frozen graph, whatever mix of edits and
    /// publishes came before.
    #[test]
    fn snapshot_server_repairs_are_bit_identical(
        (edge_picks, ops) in arb_scenario()
    ) {
        let (mut graph, queries, answers) = build_graph(&edge_picks);
        let server = SnapshotServer::new(ServeConfig { shards: 4, ..Default::default() });
        let sim = server.config().sim;
        let edge_ids: Vec<EdgeId> = graph.edges().map(|e| e.edge).collect();
        let mut snap = graph.publish();

        for &(op, sel, weight, k) in &ops {
            match op {
                0 | 3 | 4 => {
                    let e = edge_ids[sel as usize % edge_ids.len()];
                    graph.set_weight(e, weight).unwrap();
                    // Publishing on every edit maximizes epoch churn — the
                    // worst case for the per-shard repair bookkeeping.
                    snap = graph.publish();
                }
                _ => {
                    let q = queries[sel as usize % queries.len()];
                    let got = server.rank_at(&snap, q, &answers, k as usize);
                    let want = rank_answers(&snap, q, &answers, &sim, k as usize);
                    prop_assert!(bits_equal(&got, &want).is_ok(),
                        "rank_at: {}", bits_equal(&got, &want).unwrap_err());
                }
            }
        }
    }
}

/// Pins that the property suite above actually drives the repair path:
/// a deterministic edit → re-rank loop on the same layered topology must
/// repair entries in place (no full recomputes, no evictions) while
/// staying bit-identical — if a regression made every edit fall back to
/// eviction, the proptests would still pass but this fails.
#[test]
fn interleaving_workload_exercises_repair_not_just_eviction() {
    let (mut graph, queries, answers) = build_graph(&[]);
    let sim = SimilarityConfig::default();
    let mut server = ScoreServer::new(ServeConfig {
        sim,
        ..Default::default()
    });
    let edge_ids: Vec<EdgeId> = graph.edges().map(|e| e.edge).collect();

    for &q in &queries {
        server.rank(&graph, q, &answers, answers.len());
    }
    for (i, &e) in edge_ids.iter().enumerate() {
        graph.set_weight(e, 0.05 + 0.09 * (i % 10) as f64).unwrap();
        for &q in &queries {
            let got = server.rank(&graph, q, &answers, answers.len());
            let want = rank_answers(&graph, q, &answers, &sim, answers.len());
            assert!(bits_equal(&got, &want).is_ok());
        }
    }
    let stats = server.stats();
    assert!(
        stats.repaired > 0,
        "edit/re-rank loop must exercise delta repair (stats: {stats:?})"
    );
}
