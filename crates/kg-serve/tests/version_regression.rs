//! Version-regression coherence: a server that has validated against a
//! newer graph version must fully clear its cache when handed an *older*
//! graph (unknown lineage — deltas can't prove anything), and a
//! snapshot restore on the same graph (version moves forward) must ride
//! the delta-invalidation path. In both cases every ranking served
//! afterwards must be byte-identical to an uncached
//! [`kg_sim::rank_answers`] evaluation.

use kg_graph::{EdgeId, GraphBuilder, KnowledgeGraph, NodeId, NodeKind, WeightSnapshot};
use kg_serve::{ScoreServer, ServeConfig};
use kg_sim::rank_answers;

fn scene() -> (KnowledgeGraph, NodeId, Vec<NodeId>) {
    let mut b = GraphBuilder::new();
    let q = b.add_node("q", NodeKind::Query);
    let hubs: Vec<NodeId> = (0..4)
        .map(|i| b.add_node(format!("h{i}"), NodeKind::Entity))
        .collect();
    let answers: Vec<NodeId> = (0..3)
        .map(|i| b.add_node(format!("a{i}"), NodeKind::Answer))
        .collect();
    for (i, &h) in hubs.iter().enumerate() {
        b.add_edge(q, h, 0.2 + 0.1 * i as f64).unwrap();
        for (j, &a) in answers.iter().enumerate() {
            b.add_edge(h, a, 0.1 + 0.07 * ((i + j) % 5) as f64).unwrap();
        }
    }
    (b.build(), q, answers)
}

/// Bitwise comparison against the uncached oracle.
fn assert_matches_oracle(
    server: &mut ScoreServer,
    graph: &KnowledgeGraph,
    query: NodeId,
    answers: &[NodeId],
    context: &str,
) {
    let cfg = server.config().sim;
    let served = server.rank(graph, query, answers, answers.len());
    let oracle = rank_answers(graph, query, answers, &cfg, answers.len());
    assert_eq!(served.len(), oracle.len(), "{context}: length mismatch");
    for (s, o) in served.iter().zip(&oracle) {
        assert_eq!(s.node, o.node, "{context}: node order differs");
        assert_eq!(s.rank, o.rank, "{context}: rank differs");
        assert_eq!(
            s.score.to_bits(),
            o.score.to_bits(),
            "{context}: score must be byte-identical ({} vs {})",
            s.score,
            o.score
        );
    }
}

#[test]
fn older_graph_version_forces_a_full_clear() {
    let (mut graph, q, answers) = scene();
    // An old clone: same weights, but its version counter is behind the
    // mutated original — the regression case.
    let old_graph = graph.clone();
    graph.set_weight(EdgeId(0), 0.9).unwrap();
    assert!(old_graph.version() < graph.version());

    let mut server = ScoreServer::new(ServeConfig::default());
    assert_matches_oracle(&mut server, &graph, q, &answers, "warm-up on new graph");
    assert_eq!(server.cached_queries(), 1);
    let clears_before = server.stats().full_clears;

    // Handing the server the older graph must drop the whole cache (its
    // entries were validated against a version the old graph never saw)
    // and still serve oracle-identical rankings.
    assert_matches_oracle(&mut server, &old_graph, q, &answers, "regressed graph");
    assert_eq!(
        server.stats().full_clears,
        clears_before + 1,
        "version regression must fully clear the cache"
    );
    // The post-clear entry is valid for the old graph, and a re-request
    // hits the cache while remaining oracle-identical.
    let hits_before = server.stats().hits;
    assert_matches_oracle(&mut server, &old_graph, q, &answers, "regressed, cached");
    assert_eq!(server.stats().hits, hits_before + 1);
}

#[test]
fn snapshot_restore_invalidates_through_the_delta_path() {
    let (mut graph, q, answers) = scene();
    let snap = WeightSnapshot::capture(&graph);

    let mut server = ScoreServer::new(ServeConfig::default());
    assert_matches_oracle(&mut server, &graph, q, &answers, "initial weights");

    // Perturb, serve, then roll back via the snapshot. The restore moves
    // the version *forward* (kg-graph's restore re-writes weights), so
    // the server must invalidate through changes_since, not a full clear.
    graph.set_weight(EdgeId(0), 0.95).unwrap();
    assert_matches_oracle(&mut server, &graph, q, &answers, "perturbed weights");
    let clears_before = server.stats().full_clears;
    snap.restore(&mut graph);
    assert_matches_oracle(&mut server, &graph, q, &answers, "restored weights");
    assert_eq!(
        server.stats().full_clears,
        clears_before,
        "forward-version restore must not need a full clear"
    );

    // After the restore the rankings must equal a fresh server's output
    // on the restored graph, bit for bit.
    let mut fresh = ScoreServer::new(ServeConfig::default());
    let cached = server.rank(&graph, q, &answers, answers.len());
    let uncached = fresh.rank(&graph, q, &answers, answers.len());
    for (c, u) in cached.iter().zip(&uncached) {
        assert_eq!(c.node, u.node);
        assert_eq!(c.score.to_bits(), u.score.to_bits());
    }
}
