//! Serve-path counters.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative counters of a [`crate::ScoreServer`]'s cache behavior.
///
/// Maintained unconditionally (they are a handful of integer increments);
/// mirrored into `kg-telemetry` counters (`votekg.serve.*`) when
/// collection is enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests answered from cache.
    pub hits: u64,
    /// Requests that had to evaluate phi (no entry, or the entry was
    /// built over a different answer list).
    pub misses: u64,
    /// Cached queries evicted by delta-based invalidation (the repair
    /// path was off, or declined with a fallback).
    pub invalidated: u64,
    /// Cached queries whose ranking was *repaired* in place through
    /// [`kg_sim::delta_phi`] instead of evicted — served afterwards as
    /// hits without re-evaluating phi.
    pub repaired: u64,
    /// Cached queries that survived a sync because the changed edges
    /// cannot reach them — the work the cache saved.
    pub retained: u64,
    /// Version syncs that saw at least one changed edge.
    pub dirty_syncs: u64,
    /// Whole-cache clears (version regression: the graph jumped to an
    /// unknown lineage, e.g. reloaded from disk).
    pub full_clears: u64,
}

impl ServeStats {
    /// Fraction of requests served from cache (`0.0` when no requests).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Atomic mirror of [`ServeStats`] for the concurrent
/// [`crate::SnapshotServer`]: many reader threads bump counters without
/// any lock; [`Self::snapshot`] folds them into a plain [`ServeStats`].
///
/// Individual counters are updated with relaxed atomics, so a snapshot
/// taken *while requests are in flight* may observe one counter of a
/// logically-single event before another (e.g. a miss counted whose
/// ranking is still being computed). Quiescent snapshots are exact.
#[derive(Debug, Default)]
pub struct SharedServeStats {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    repaired: AtomicU64,
    retained: AtomicU64,
    dirty_syncs: AtomicU64,
    full_clears: AtomicU64,
}

impl SharedServeStats {
    pub(crate) fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn invalidated(&self, n: u64) {
        self.invalidated.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn repaired(&self, n: u64) {
        self.repaired.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn retained(&self, n: u64) {
        self.retained.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn dirty_sync(&self) {
        self.dirty_syncs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn full_clear(&self) {
        self.full_clears.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counter values as a plain [`ServeStats`].
    pub fn snapshot(&self) -> ServeStats {
        ServeStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            repaired: self.repaired.load(Ordering::Relaxed),
            retained: self.retained.load(Ordering::Relaxed),
            dirty_syncs: self.dirty_syncs.load(Ordering::Relaxed),
            full_clears: self.full_clears.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_stats_fold_into_plain_stats() {
        let s = SharedServeStats::default();
        s.hit();
        s.hit();
        s.miss();
        s.invalidated(3);
        s.repaired(4);
        s.retained(2);
        s.dirty_sync();
        s.full_clear();
        let snap = s.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.invalidated, 3);
        assert_eq!(snap.repaired, 4);
        assert_eq!(snap.retained, 2);
        assert_eq!(snap.dirty_syncs, 1);
        assert_eq!(snap.full_clears, 1);
        assert!((snap.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        assert_eq!(ServeStats::default().hit_rate(), 0.0);
        let s = ServeStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
