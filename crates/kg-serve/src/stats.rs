//! Serve-path counters.

use serde::{Deserialize, Serialize};

/// Cumulative counters of a [`crate::ScoreServer`]'s cache behavior.
///
/// Maintained unconditionally (they are a handful of integer increments);
/// mirrored into `kg-telemetry` counters (`votekg.serve.*`) when
/// collection is enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests answered from cache.
    pub hits: u64,
    /// Requests that had to evaluate phi (no entry, or the entry was
    /// built over a different answer list).
    pub misses: u64,
    /// Cached queries evicted by delta-based invalidation.
    pub invalidated: u64,
    /// Cached queries that survived a sync because the changed edges
    /// cannot reach them — the work the cache saved.
    pub retained: u64,
    /// Version syncs that saw at least one changed edge.
    pub dirty_syncs: u64,
    /// Whole-cache clears (version regression: the graph jumped to an
    /// unknown lineage, e.g. reloaded from disk).
    pub full_clears: u64,
}

impl ServeStats {
    /// Fraction of requests served from cache (`0.0` when no requests).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        assert_eq!(ServeStats::default().hit_rate(), 0.0);
        let s = ServeStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
