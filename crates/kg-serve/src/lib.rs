//! Serving layer for vote-optimized knowledge graphs.
//!
//! The paper's deployment story (Section VII) is a loop: users query, the
//! system ranks answers by extended inverse P-distance, votes accumulate,
//! an optimization round adjusts edge weights, and the cycle repeats. The
//! expensive step at serve time is ranking — `O(L·|E|)` per query — yet
//! an optimization round touches only a handful of edges, and an edge
//! `(u, v)` can only move the scores of queries within `L − 1` hops of
//! `u`. Recomputing every query after every round throws that locality
//! away.
//!
//! [`ScoreServer`] keeps it: rankings are cached per query and keyed by
//! the graph's monotonic weight [version](kg_graph::KnowledgeGraph::version).
//! On each request the server compares versions, pulls the
//! [`WeightDelta`](kg_graph::WeightDelta) of edges changed since it last
//! looked, and evicts **only** the cached queries that
//! [`kg_sim::affected_queries`] proves reachable from those edges — every
//! other cached ranking is still exact, byte for byte. Misses are
//! evaluated on a warm, allocation-free [`kg_sim::PhiWorkspace`];
//! [`ScoreServer::rank_batch`] fans misses out over scoped worker threads.
//!
//! [`ScoreServer`] is single-threaded (`&mut self`). For concurrent
//! serving under a live optimizer, [`SnapshotServer`] applies the same
//! invalidation rule to immutable, epoch-stamped
//! [`GraphSnapshot`](kg_graph::GraphSnapshot)s behind sharded wait-free
//! cells: readers never take a lock, never block the writer, and a
//! [`ServeHandle`] serves coherent rankings from any thread while
//! optimization rounds publish new epochs (see `concurrent`).
//!
//! The cache is *provably coherent*, not heuristically fresh: the
//! property test in `tests/proptest_serve.rs` interleaves arbitrary
//! weight mutations with lookups and checks the server's output is
//! identical to an uncached [`kg_sim::rank_answers`] call at every step;
//! the workspace-level stress suite `tests/concurrent_serving.rs` does
//! the same for rankings served *during* optimization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
pub mod server;
pub mod stats;

pub use concurrent::{ServeHandle, SnapshotServer};
pub use server::{ScoreServer, ServeConfig};
pub use stats::{ServeStats, SharedServeStats};
