//! The versioned ranking cache.

use crate::stats::ServeStats;
use kg_graph::{KnowledgeGraph, NodeId};
use kg_sim::{
    affected_queries, delta_phi_apply, delta_phi_plan, rank_many, rank_many_recorded, BatchQuery,
    DeltaConfig, PhiRecord, PhiWorkspace, RankedAnswer, RepairScratch, SimilarityConfig,
};
use std::collections::HashMap;

/// Configuration of a [`ScoreServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Similarity parameters used for every evaluation. Must match the
    /// config the optimizer assumes (the invalidation radius is
    /// `sim.max_path_len - 1` hops).
    pub sim: SimilarityConfig,
    /// Worker threads for batch misses; `1` evaluates inline on the
    /// calling thread. Results are identical for any value.
    pub workers: usize,
    /// Cache shards of a [`crate::SnapshotServer`] (ignored by
    /// [`ScoreServer`]). More shards mean less publish contention between
    /// concurrent miss-fills at a small per-sync cost; results are
    /// identical for any value `>= 1` (`0` is treated as `1`).
    pub shards: usize,
    /// Delta-propagation repair: when enabled (the default), cache misses
    /// additionally capture a [`PhiRecord`], and a later sync *repairs*
    /// affected entries through [`kg_sim::delta_phi`] instead of evicting
    /// them — falling back to eviction whenever the repair declines.
    /// Results are identical either way; only the refresh cost differs.
    pub delta: DeltaConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            sim: SimilarityConfig::default(),
            workers: 1,
            shards: 16,
            delta: DeltaConfig::default(),
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    /// The answer list the ranking was computed over (request order).
    answers: Vec<NodeId>,
    /// Full ranking over `answers` (`k = answers.len()`), so any request
    /// with `k <= answers.len()` is served by truncation.
    ranking: Vec<RankedAnswer>,
    /// Replayable capture of the evaluation, for delta repair. `None`
    /// when the delta path is disabled; boxed because the record dwarfs
    /// the ranking.
    record: Option<Box<PhiRecord>>,
}

/// A per-query ranking cache that stays coherent with a mutating
/// [`KnowledgeGraph`] through version tracking and delta-based
/// invalidation.
///
/// The server never observes weight changes directly; it compares
/// [`KnowledgeGraph::version`] against the version it last validated at
/// and, when behind, asks the graph which edges moved
/// ([`KnowledgeGraph::changes_since`]) and [`kg_sim::affected_queries`]
/// which cached queries those edges can reach within `L − 1` hops. Only
/// those entries are evicted; the rest are provably still exact.
///
/// One server instance follows one graph lineage. Handing it a graph
/// whose version is *lower* than the last seen one (a reload, a different
/// graph object) drops the whole cache — correct, just not incremental.
///
/// ```
/// use kg_graph::{GraphBuilder, NodeKind};
/// use kg_serve::ScoreServer;
///
/// let mut b = GraphBuilder::new();
/// let q = b.add_node("q", NodeKind::Query);
/// let h = b.add_node("h", NodeKind::Entity);
/// let a1 = b.add_node("a1", NodeKind::Answer);
/// let a2 = b.add_node("a2", NodeKind::Answer);
/// b.add_edge(q, h, 1.0).unwrap();
/// let e1 = b.add_edge(h, a1, 0.7).unwrap();
/// b.add_edge(h, a2, 0.3).unwrap();
/// let mut g = b.build();
///
/// let mut server = ScoreServer::default();
/// let first = server.rank(&g, q, &[a1, a2], 2);
/// assert_eq!(first[0].node, a1);
/// assert_eq!(server.rank(&g, q, &[a1, a2], 2), first); // cache hit
/// assert_eq!(server.stats().hits, 1);
///
/// g.set_weight(e1, 0.1).unwrap(); // optimizer demotes a1
/// let after = server.rank(&g, q, &[a1, a2], 2); // entry repaired in place
/// assert_eq!(after[0].node, a2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScoreServer {
    cfg: ServeConfig,
    /// Graph version the cache was last validated against.
    validated_version: u64,
    entries: HashMap<NodeId, CacheEntry>,
    /// Warm scratch for single-query misses.
    workspace: PhiWorkspace,
    /// Warm scratch for delta repairs.
    scratch: RepairScratch,
    stats: ServeStats,
}

impl ScoreServer {
    /// Creates an empty server with the given configuration.
    pub fn new(cfg: ServeConfig) -> Self {
        ScoreServer {
            cfg,
            ..Default::default()
        }
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Cumulative cache counters.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Number of queries currently cached.
    pub fn cached_queries(&self) -> usize {
        self.entries.len()
    }

    /// Drops every cached ranking (stats are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Brings the cache in line with `graph`'s current version, evicting
    /// exactly the entries the intervening weight changes can affect.
    /// Called automatically by [`Self::rank`] / [`Self::rank_batch`];
    /// public so callers can absorb invalidation cost at a quiet moment
    /// (e.g. right after an optimization round).
    pub fn sync(&mut self, graph: &KnowledgeGraph) {
        let version = graph.version();
        if version == self.validated_version {
            return;
        }
        let mut span = kg_telemetry::span!("votekg.serve.sync", {
            from_version: self.validated_version,
            to_version: version,
        });
        if version < self.validated_version {
            // Unknown lineage: nothing provable, drop everything.
            self.entries.clear();
            self.stats.full_clears += 1;
            if kg_telemetry::is_enabled() {
                kg_telemetry::counter("votekg.serve.full_clears").incr();
            }
        } else {
            let delta = graph.changes_since(self.validated_version);
            if !delta.is_empty() && !self.entries.is_empty() {
                self.stats.dirty_syncs += 1;
                let cached: Vec<NodeId> = self.entries.keys().copied().collect();
                let affected = affected_queries(graph, &delta.edges, &cached, &self.cfg.sim);
                // Repair affected entries in place where possible; evict
                // only when the repair declines (or records are off).
                // The delta is loaded into the scratch once, so each
                // entry's plan costs O(record), not O(changed edges).
                // Bulk churn past the measured crossover skips repair
                // wholesale — eviction is cheaper there.
                let try_repair = self
                    .cfg
                    .delta
                    .worth_repairing(delta.edges.len(), graph.edge_count());
                if self.cfg.delta.enabled && !try_repair && kg_telemetry::is_enabled() {
                    kg_telemetry::counter("votekg.serve.repair_bulk_skips").incr();
                }
                let mut repaired = 0usize;
                if try_repair {
                    self.scratch.load_delta(graph, &delta.edges);
                }
                for q in &affected {
                    let mut fixed = false;
                    if try_repair {
                        if let Some(entry) = self.entries.get_mut(q) {
                            if let Some(record) = entry.record.as_deref_mut() {
                                if let Ok(mut stats) = delta_phi_plan(
                                    graph,
                                    record,
                                    &self.cfg.sim,
                                    &self.cfg.delta,
                                    &mut self.scratch,
                                ) {
                                    if delta_phi_apply(record, &mut self.scratch, &mut stats)
                                        .is_ok()
                                    {
                                        // Re-sort only when a phi correction
                                        // actually landed on this entry's
                                        // answers; otherwise the cached
                                        // ranking is bitwise current already.
                                        if stats.dirty_phi > 0
                                            && entry
                                                .answers
                                                .iter()
                                                .any(|&a| self.scratch.phi_changed(a))
                                        {
                                            record.rank_into(
                                                &entry.answers,
                                                entry.answers.len(),
                                                &mut self.scratch.scored,
                                                &mut entry.ranking,
                                            );
                                        }
                                        fixed = true;
                                    }
                                }
                            }
                        }
                    }
                    if fixed {
                        repaired += 1;
                    } else {
                        self.entries.remove(q);
                    }
                }
                let evicted = affected.len() - repaired;
                let retained = cached.len() - affected.len();
                self.stats.invalidated += evicted as u64;
                self.stats.repaired += repaired as u64;
                self.stats.retained += retained as u64;
                span.field("changed_edges", delta.len());
                span.field("invalidated", evicted);
                span.field("repaired", repaired);
                span.field("retained", retained);
                if kg_telemetry::is_enabled() {
                    kg_telemetry::counter("votekg.serve.invalidations").add(evicted as u64);
                    kg_telemetry::counter("votekg.serve.repaired").add(repaired as u64);
                    kg_telemetry::counter("votekg.serve.retained").add(retained as u64);
                    kg_telemetry::histogram("votekg.serve.delta_edges").record(delta.len() as u64);
                }
            }
        }
        self.validated_version = version;
    }

    /// Ranks `answers` for `query`, serving from cache when the entry is
    /// still valid for `graph`'s current version and answer list.
    /// Output is always identical to `kg_sim::rank_answers(graph, query,
    /// answers, &cfg.sim, k)`.
    pub fn rank(
        &mut self,
        graph: &KnowledgeGraph,
        query: NodeId,
        answers: &[NodeId],
        k: usize,
    ) -> Vec<RankedAnswer> {
        self.sync(graph);
        if let Some(entry) = self.entries.get(&query) {
            if entry.answers == answers {
                self.stats.hits += 1;
                if kg_telemetry::is_enabled() {
                    kg_telemetry::counter("votekg.serve.hits").incr();
                }
                return entry.ranking.iter().take(k).copied().collect();
            }
        }
        self.stats.misses += 1;
        if kg_telemetry::is_enabled() {
            kg_telemetry::counter("votekg.serve.misses").incr();
        }
        let mut full = Vec::with_capacity(answers.len());
        let mut record = if self.cfg.delta.enabled {
            Some(Box::new(PhiRecord::new()))
        } else {
            None
        };
        if let Some(rec) = record.as_deref_mut() {
            self.workspace.rank_into_recorded(
                graph,
                query,
                answers,
                &self.cfg.sim,
                answers.len(),
                &mut full,
                rec,
            );
        } else {
            self.workspace.rank_into(
                graph,
                query,
                answers,
                &self.cfg.sim,
                answers.len(),
                &mut full,
            );
        }
        let out = full.iter().take(k).copied().collect();
        self.entries.insert(
            query,
            CacheEntry {
                answers: answers.to_vec(),
                ranking: full,
                record,
            },
        );
        out
    }

    /// Ranks a whole batch, evaluating cache misses in parallel over the
    /// configured worker count. Results are in request order and
    /// per-request identical to [`Self::rank`].
    pub fn rank_batch(
        &mut self,
        graph: &KnowledgeGraph,
        requests: &[BatchQuery<'_>],
    ) -> Vec<Vec<RankedAnswer>> {
        self.sync(graph);
        let mut span = kg_telemetry::span!("votekg.serve.batch", {
            requests: requests.len(),
        });
        // Split hits from misses. Duplicate queries within one batch are
        // deduplicated: the first occurrence computes, the rest reuse it.
        let mut miss_requests: Vec<BatchQuery<'_>> = Vec::new();
        let mut miss_index: HashMap<NodeId, usize> = HashMap::new();
        for req in requests {
            let cached_valid = self
                .entries
                .get(&req.query)
                .is_some_and(|e| e.answers == req.answers);
            if cached_valid {
                self.stats.hits += 1;
            } else if let Some(&mi) = miss_index.get(&req.query) {
                if miss_requests[mi].answers == req.answers {
                    self.stats.hits += 1;
                } else {
                    // Same query, different answer list: last one wins the
                    // cache slot, both are computed.
                    self.stats.misses += 1;
                    miss_index.insert(req.query, miss_requests.len());
                    miss_requests.push(BatchQuery {
                        k: req.answers.len(),
                        ..*req
                    });
                }
            } else {
                self.stats.misses += 1;
                miss_index.insert(req.query, miss_requests.len());
                miss_requests.push(BatchQuery {
                    k: req.answers.len(),
                    ..*req
                });
            }
        }
        span.field("misses", miss_requests.len());
        if kg_telemetry::is_enabled() {
            kg_telemetry::counter("votekg.serve.batches").incr();
            kg_telemetry::histogram("votekg.serve.batch_misses").record(miss_requests.len() as u64);
        }
        if self.cfg.delta.enabled {
            let computed =
                rank_many_recorded(graph, &miss_requests, &self.cfg.sim, self.cfg.workers);
            for (req, (ranking, record)) in miss_requests.iter().zip(computed) {
                self.entries.insert(
                    req.query,
                    CacheEntry {
                        answers: req.answers.to_vec(),
                        ranking,
                        record: Some(Box::new(record)),
                    },
                );
            }
        } else {
            let computed = rank_many(graph, &miss_requests, &self.cfg.sim, self.cfg.workers);
            for (req, ranking) in miss_requests.iter().zip(computed) {
                self.entries.insert(
                    req.query,
                    CacheEntry {
                        answers: req.answers.to_vec(),
                        ranking,
                        record: None,
                    },
                );
            }
        }
        requests
            .iter()
            .map(|req| {
                self.entries
                    .get(&req.query)
                    .expect("entry was just cached or already valid")
                    .ranking
                    .iter()
                    .take(req.k)
                    .copied()
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{EdgeId, GraphBuilder, NodeKind};
    use kg_sim::rank_answers;

    /// Two independent regions behind one graph: changing region 0 must
    /// not evict region 1's cache entry.
    fn two_regions() -> (KnowledgeGraph, Vec<NodeId>, Vec<Vec<NodeId>>, Vec<EdgeId>) {
        let mut b = GraphBuilder::new();
        let mut queries = Vec::new();
        let mut answers = Vec::new();
        let mut hub_edges = Vec::new();
        for r in 0..2 {
            let q = b.add_node(format!("q{r}"), NodeKind::Query);
            let h = b.add_node(format!("h{r}"), NodeKind::Entity);
            let a1 = b.add_node(format!("a1_{r}"), NodeKind::Answer);
            let a2 = b.add_node(format!("a2_{r}"), NodeKind::Answer);
            b.add_edge(q, h, 1.0).unwrap();
            hub_edges.push(b.add_edge(h, a1, 0.7).unwrap());
            b.add_edge(h, a2, 0.3).unwrap();
            queries.push(q);
            answers.push(vec![a1, a2]);
        }
        (b.build(), queries, answers, hub_edges)
    }

    #[test]
    fn hit_after_miss_and_results_match_uncached() {
        let (g, queries, answers, _) = two_regions();
        let mut s = ScoreServer::default();
        let cfg = s.config().sim;
        let first = s.rank(&g, queries[0], &answers[0], 2);
        let second = s.rank(&g, queries[0], &answers[0], 2);
        assert_eq!(first, second);
        assert_eq!(first, rank_answers(&g, queries[0], &answers[0], &cfg, 2));
        assert_eq!(s.stats().misses, 1);
        assert_eq!(s.stats().hits, 1);
    }

    #[test]
    fn unrelated_change_keeps_entry_related_change_repairs() {
        let (mut g, queries, answers, hub_edges) = two_regions();
        let mut s = ScoreServer::default();
        s.rank(&g, queries[0], &answers[0], 2);
        s.rank(&g, queries[1], &answers[1], 2);
        assert_eq!(s.cached_queries(), 2);

        // Change region 1's hub edge: only q1 is affected — and with the
        // delta path on (the default) its entry is repaired, not evicted.
        g.set_weight(hub_edges[1], 0.1).unwrap();
        s.sync(&g);
        assert_eq!(s.stats().repaired, 1);
        assert_eq!(s.stats().invalidated, 0);
        assert_eq!(s.stats().retained, 1);
        assert_eq!(s.cached_queries(), 2);

        // Both queries are now hits — and both match uncached evaluation
        // on the *new* weights, bit for bit.
        let cfg = s.config().sim;
        let r0 = s.rank(&g, queries[0], &answers[0], 2);
        let r1 = s.rank(&g, queries[1], &answers[1], 2);
        assert_eq!(r0, rank_answers(&g, queries[0], &answers[0], &cfg, 2));
        assert_eq!(r1, rank_answers(&g, queries[1], &answers[1], &cfg, 2));
        assert_eq!(r1[0].node, answers[1][1], "the demoted answer must drop");
        assert_eq!(s.stats().hits, 2);
        assert_eq!(s.stats().misses, 2);
    }

    #[test]
    fn disabled_delta_restores_evict_and_recompute() {
        let (mut g, queries, answers, hub_edges) = two_regions();
        let mut s = ScoreServer::new(ServeConfig {
            delta: kg_sim::DeltaConfig::disabled(),
            ..Default::default()
        });
        s.rank(&g, queries[0], &answers[0], 2);
        s.rank(&g, queries[1], &answers[1], 2);

        g.set_weight(hub_edges[1], 0.1).unwrap();
        s.sync(&g);
        assert_eq!(s.stats().invalidated, 1);
        assert_eq!(s.stats().repaired, 0);
        assert_eq!(s.cached_queries(), 1);

        let cfg = s.config().sim;
        let r1 = s.rank(&g, queries[1], &answers[1], 2);
        assert_eq!(r1, rank_answers(&g, queries[1], &answers[1], &cfg, 2));
        assert_eq!(s.stats().misses, 3);
    }

    /// A change big enough to trip the repair's churn breaker must fall
    /// back to eviction and still serve coherent results.
    #[test]
    fn repair_fallback_still_serves_coherent_results() {
        let (mut g, queries, answers, _) = two_regions();
        let mut s = ScoreServer::new(ServeConfig {
            delta: kg_sim::DeltaConfig::default().with_max_churn(0.0),
            ..Default::default()
        });
        s.rank(&g, queries[0], &answers[0], 2);
        for e in 0..g.edge_count() as u32 {
            let id = EdgeId(e);
            g.set_weight(id, g.weight(id) * 0.5 + 0.01).unwrap();
        }
        s.sync(&g);
        assert_eq!(s.stats().repaired, 0);
        assert_eq!(s.stats().invalidated, 1);
        let cfg = s.config().sim;
        let r = s.rank(&g, queries[0], &answers[0], 2);
        assert_eq!(r, rank_answers(&g, queries[0], &answers[0], &cfg, 2));
    }

    #[test]
    fn changed_answer_list_is_a_miss() {
        let (g, queries, answers, _) = two_regions();
        let mut s = ScoreServer::default();
        s.rank(&g, queries[0], &answers[0], 2);
        let shorter = &answers[0][..1];
        let r = s.rank(&g, queries[0], shorter, 1);
        assert_eq!(s.stats().misses, 2);
        assert_eq!(r.len(), 1);
        // And the shorter list is now the cached one.
        s.rank(&g, queries[0], shorter, 1);
        assert_eq!(s.stats().hits, 1);
    }

    #[test]
    fn version_regression_clears_everything() {
        let (mut g, queries, answers, hub_edges) = two_regions();
        g.set_weight(hub_edges[0], 0.6).unwrap();
        let mut s = ScoreServer::default();
        s.rank(&g, queries[0], &answers[0], 2);
        // A fresh build of the same topology restarts at version 0.
        let (g2, _, _, _) = two_regions();
        assert!(g2.version() < g.version());
        s.sync(&g2);
        assert_eq!(s.cached_queries(), 0);
        assert_eq!(s.stats().full_clears, 1);
    }

    #[test]
    fn batch_matches_singles_and_dedups_repeated_queries() {
        let (g, queries, answers, _) = two_regions();
        let requests = vec![
            BatchQuery {
                query: queries[0],
                answers: &answers[0],
                k: 2,
            },
            BatchQuery {
                query: queries[1],
                answers: &answers[1],
                k: 1,
            },
            BatchQuery {
                query: queries[0],
                answers: &answers[0],
                k: 1,
            },
        ];
        for workers in [1, 4] {
            let mut s = ScoreServer::new(ServeConfig {
                workers,
                ..Default::default()
            });
            let got = s.rank_batch(&g, &requests);
            let cfg = s.config().sim;
            assert_eq!(got[0], rank_answers(&g, queries[0], &answers[0], &cfg, 2));
            assert_eq!(got[1], rank_answers(&g, queries[1], &answers[1], &cfg, 1));
            assert_eq!(got[2], rank_answers(&g, queries[0], &answers[0], &cfg, 1));
            // Two unique queries computed, the duplicate was a hit.
            assert_eq!(s.stats().misses, 2, "workers {workers}");
            assert_eq!(s.stats().hits, 1, "workers {workers}");
        }
    }

    #[test]
    fn k_larger_than_answers_returns_all() {
        let (g, queries, answers, _) = two_regions();
        let mut s = ScoreServer::default();
        let r = s.rank(&g, queries[0], &answers[0], 10);
        assert_eq!(r.len(), answers[0].len());
    }

    #[test]
    fn clear_forces_recompute_but_keeps_stats() {
        let (g, queries, answers, _) = two_regions();
        let mut s = ScoreServer::default();
        s.rank(&g, queries[0], &answers[0], 2);
        s.clear();
        s.rank(&g, queries[0], &answers[0], 2);
        assert_eq!(s.stats().misses, 2);
        assert_eq!(s.cached_queries(), 1);
    }

    #[test]
    fn telemetry_counters_flow_when_enabled() {
        kg_telemetry::enable();
        let (mut g, queries, answers, hub_edges) = two_regions();
        let mut s = ScoreServer::default();
        s.rank(&g, queries[0], &answers[0], 2);
        s.rank(&g, queries[0], &answers[0], 2);
        g.set_weight(hub_edges[0], 0.2).unwrap();
        s.rank(&g, queries[0], &answers[0], 2);
        let snap = kg_telemetry::Snapshot::capture();
        for name in [
            "votekg.serve.hits",
            "votekg.serve.misses",
            "votekg.serve.repaired",
            "votekg.sim.delta.repaired",
        ] {
            assert!(
                snap.counters.iter().any(|(k, v)| k == name && *v > 0),
                "missing counter {name}: {:?}",
                snap.counters
            );
        }
    }
}
