//! Lock-free snapshot serving: concurrent reads under live optimization.
//!
//! [`ScoreServer`](crate::ScoreServer) is single-threaded by design —
//! `rank(&mut self)` — which forces callers that serve while an optimizer
//! runs to wrap the whole thing in a lock and serialize every read.
//! [`SnapshotServer`] removes that bottleneck:
//!
//! * Readers rank against an immutable, epoch-stamped
//!   [`GraphSnapshot`](kg_graph::GraphSnapshot); the writer mutates a
//!   private graph and publishes via
//!   [`SharedGraph::publish`](kg_graph::SharedGraph::publish), an atomic
//!   pointer swap that never blocks readers.
//! * The ranking cache is split into shards, each an immutable
//!   [`ShardCache`] behind an [`ArcCell`](kg_graph::ArcCell). The read
//!   fast path is: load the snapshot, load the shard, hash-lookup, copy
//!   the ranking out — no lock anywhere, and wait-free with respect to
//!   writers (an in-flight publish never makes a reader spin or retry).
//! * Cache maintenance is RCU: syncs and miss-fills build a *new* shard
//!   map and publish it with [`ArcCell::update`](kg_graph::ArcCell);
//!   concurrent readers keep the old one until their next load.
//!
//! Coherence does not depend on winning races. A cached ranking is served
//! only when its shard's epoch equals the epoch of the snapshot being
//! ranked against, and within one graph lineage equal epochs imply
//! identical weights (every effective change bumps the version). A lost
//! cache update therefore costs a recomputation, never a wrong answer —
//! the stress suite in `tests/concurrent_serving.rs` checks every result
//! byte-for-byte against an uncached evaluation at its reported epoch.
//!
//! Since the delta-repair pass, a sync is cache *repair* before it is
//! cache invalidation: each miss-fill keeps the [`kg_sim::PhiRecord`] of
//! its evaluation, and an affected entry is first offered to
//! [`kg_sim::delta_phi`], which patches the recorded masses downstream of
//! the changed edges and re-ranks bitwise-identically to a fresh
//! evaluation. Only entries whose repair declines (support change, churn
//! budget, config mismatch — see [`kg_sim::RepairFallback`]) are evicted.
//! The changed-edge extraction itself is memoized across shards: the
//! first shard syncing over an epoch transition pays the `O(|E|)` scan,
//! the rest reuse the shared [`WeightDelta`].

use crate::stats::{ServeStats, SharedServeStats};
use crate::ServeConfig;
use kg_graph::{ArcCell, GraphSnapshot, NodeId, SharedGraph, WeightDelta};
use kg_sim::{
    affected_queries, delta_phi_apply, delta_phi_plan, rank_many, rank_many_recorded,
    with_local_workspace, BatchQuery, PhiRecord, RankedAnswer, RepairScratch,
};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

thread_local! {
    /// Per-thread repair scratch: `sync_shard` runs on whichever reader
    /// thread first observes the new epoch, and the scratch must not be
    /// shared behind a lock (the sync path sits inside the shard's RCU
    /// update closure).
    static REPAIR_SCRATCH: RefCell<RepairScratch> = RefCell::new(RepairScratch::default());
}

#[derive(Debug)]
struct CacheEntry {
    /// The answer list the ranking was computed over (request order).
    answers: Vec<NodeId>,
    /// Full ranking over `answers` (`k = answers.len()`), so any request
    /// with `k <= answers.len()` is served by truncation.
    ranking: Vec<RankedAnswer>,
    /// Replayable capture of the evaluation behind `ranking`, kept so a
    /// sync can *repair* the entry through [`kg_sim::delta_phi_plan`] /
    /// [`kg_sim::delta_phi_apply`] instead of evicting it. `None` when
    /// delta repair is disabled.
    record: Option<PhiRecord>,
}

/// Outcome of a successful repair attempt on one cache entry.
enum Repair {
    /// The weight changes provably did not move this entry's scores;
    /// the shared entry stays as-is.
    Keep,
    /// The entry was patched to the new weights.
    Fixed(CacheEntry),
}

/// One cache shard: immutable once published. Entries are `Arc`-shared so
/// republishing a shard with one entry added or removed clones only the
/// map skeleton, not the rankings.
#[derive(Debug, Clone, Default)]
struct ShardCache {
    /// Snapshot epoch every entry in this shard is valid for.
    epoch: u64,
    entries: HashMap<NodeId, Arc<CacheEntry>>,
}

/// A sharded, multi-reader ranking cache over published
/// [`GraphSnapshot`]s.
///
/// Shared by reference (`&self` everywhere): wrap it in an [`Arc`] and
/// hand clones to any number of reader threads. Each shard is keyed by
/// the snapshot epoch it was validated against; a reader that arrives
/// with a newer snapshot migrates the shard first —
/// [`changes_since`](kg_graph::KnowledgeGraph::changes_since) pulls the
/// edges that moved, [`kg_sim::affected_queries`] proves which cached
/// queries they can reach, and only those are dropped.
///
/// Shards only ever move *forward*: a reader still holding an older
/// snapshot while newer ones are being published — the normal case under
/// live optimization — is served by direct evaluation of its snapshot
/// (a miss, never cached) instead of rewinding the shard and thrashing
/// every newer reader's entries. Consequently, binding the server to a
/// graph from a *different lineage* (a reload, a fresh build — epochs
/// restart) keeps results correct but permanently bypasses the cache;
/// call [`Self::clear`] when switching lineages.
///
/// Stats semantics match [`ScoreServer`](crate::ScoreServer): a request
/// whose entry exists and was built over the same answer list is a hit;
/// everything else is a miss. Under concurrency, two threads missing on
/// the same query both count a miss (both compute; one insert wins).
#[derive(Debug)]
pub struct SnapshotServer {
    cfg: ServeConfig,
    shards: Box<[ArcCell<ShardCache>]>,
    stats: SharedServeStats,
    /// Last changed-edge extraction, shared across shards: every shard
    /// syncing over the same `(from, to]` epoch transition reuses one
    /// `changes_since` scan instead of paying `O(|E|)` each. Last writer
    /// wins; a lost race costs a redundant scan, never a wrong delta
    /// (the interval is part of the key, see [`WeightDelta::covers`]).
    delta_memo: ArcCell<WeightDelta>,
}

/// A memo value that can never satisfy [`WeightDelta::covers`] — real
/// sync intervals `(from, to]` always have `from < to`.
fn empty_memo() -> Arc<WeightDelta> {
    Arc::new(WeightDelta {
        from_version: u64::MAX,
        to_version: u64::MAX,
        edges: Vec::new(),
    })
}

impl Default for SnapshotServer {
    fn default() -> Self {
        SnapshotServer::new(ServeConfig::default())
    }
}

impl SnapshotServer {
    /// Creates an empty server with the given configuration
    /// (`cfg.shards` cache shards; `0` is treated as `1`).
    pub fn new(cfg: ServeConfig) -> Self {
        let n = cfg.shards.max(1);
        let shards = (0..n)
            .map(|_| ArcCell::new(Arc::new(ShardCache::default())))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SnapshotServer {
            cfg,
            shards,
            stats: SharedServeStats::default(),
            delta_memo: ArcCell::new(empty_memo()),
        }
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Cumulative cache counters (folded from the atomic counters; exact
    /// when no requests are in flight).
    pub fn stats(&self) -> ServeStats {
        self.stats.snapshot()
    }

    /// Number of queries currently cached across all shards.
    pub fn cached_queries(&self) -> usize {
        self.shards.iter().map(|s| s.load().entries.len()).sum()
    }

    /// Drops every cached ranking and rewinds every shard to epoch 0, so
    /// the cache can re-attach to a new graph lineage (counted as one
    /// full clear; request stats are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.store(Arc::new(ShardCache::default()));
        }
        // The memo is keyed by version interval only; a new lineage
        // restarts versions, so a stale memo could alias its intervals.
        self.delta_memo.store(empty_memo());
        self.stats.full_clear();
        if kg_telemetry::is_enabled() {
            kg_telemetry::counter("votekg.serve.full_clears").incr();
        }
    }

    fn shard_for(&self, query: NodeId) -> &ArcCell<ShardCache> {
        // Fibonacci hashing spreads consecutive node ids across shards.
        let h = (query.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// The changed-edge set covering `(from, snap.epoch()]`, shared
    /// across shards: a memo hit skips the `O(|E|)` stamp scan entirely.
    /// Computed outside any shard lock; concurrent callers over different
    /// intervals overwrite each other (last writer wins), which only
    /// costs the loser's scan.
    fn shared_delta(&self, snap: &GraphSnapshot, from: u64) -> Arc<WeightDelta> {
        let memo = self.delta_memo.load();
        if memo.covers(from, snap.epoch()) {
            if kg_telemetry::is_enabled() {
                kg_telemetry::counter("votekg.serve.delta_memo_hits").incr();
            }
            return memo;
        }
        let delta = Arc::new(snap.changes_since(from));
        self.delta_memo.store(Arc::clone(&delta));
        delta
    }

    /// Tries to repair one affected entry: *plans* the repair read-only
    /// against the shared entry's record ([`delta_phi_plan`]), and only
    /// when the plan succeeds — and actually moved something — pays for
    /// a deep copy and commits the planned masses ([`delta_phi_apply`]).
    /// Repaired scores are bitwise identical to a fresh evaluation, so
    /// two further shortcuts are sound: a plan with zero commits keeps
    /// the shared entry untouched (`Keep`), and a repair whose phi
    /// corrections miss the entry's answer list reuses the cached
    /// ranking verbatim instead of re-sorting it. Declined plans —
    /// repair disabled, no record, or a [`kg_sim::RepairFallback`] —
    /// cost no allocation at all; the caller evicts instead (`None`).
    fn repair_entry(&self, snap: &GraphSnapshot, entry: &CacheEntry) -> Option<Repair> {
        if !self.cfg.delta.enabled {
            return None;
        }
        let shared = entry.record.as_ref()?;
        REPAIR_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let mut stats =
                delta_phi_plan(snap, shared, &self.cfg.sim, &self.cfg.delta, scratch).ok()?;
            if stats.repaired_masses == 0 {
                // The changed edges never crossed this record's live
                // frontier: the entry is already current.
                return Some(Repair::Keep);
            }
            let mut record = shared.clone();
            delta_phi_apply(&mut record, scratch, &mut stats).ok()?;
            let ranking = if entry.answers.iter().any(|&a| scratch.phi_changed(a)) {
                let mut ranking = Vec::with_capacity(entry.answers.len());
                record.rank_into(
                    &entry.answers,
                    entry.answers.len(),
                    &mut scratch.scored,
                    &mut ranking,
                );
                ranking
            } else {
                entry.ranking.clone()
            };
            Some(Repair::Fixed(CacheEntry {
                answers: entry.answers.clone(),
                ranking,
                record: Some(record),
            }))
        })
    }

    /// Migrates one shard *forward* to `snap`'s epoch, repairing the
    /// entries the intervening weight changes can affect and evicting
    /// only those whose repair declines (RCU republish; a no-op if
    /// another thread already migrated it at least that far — shards
    /// never move backwards).
    fn sync_shard(&self, cell: &ArcCell<ShardCache>, snap: &GraphSnapshot) {
        let target = snap.epoch();
        cell.update(|cache| {
            if cache.epoch >= target {
                return None; // lost the race to another reader — fine
            }
            let mut span = kg_telemetry::span!("votekg.serve.shard_sync", {
                from_epoch: cache.epoch,
                to_epoch: target,
            });
            let next = if cache.entries.is_empty() {
                ShardCache {
                    epoch: target,
                    entries: HashMap::new(),
                }
            } else {
                let delta = self.shared_delta(snap, cache.epoch);
                if delta.is_empty() {
                    ShardCache {
                        epoch: target,
                        entries: cache.entries.clone(),
                    }
                } else {
                    self.stats.dirty_sync();
                    let cached: Vec<NodeId> = cache.entries.keys().copied().collect();
                    let affected: HashSet<NodeId> =
                        affected_queries(snap, &delta.edges, &cached, &self.cfg.sim)
                            .into_iter()
                            .collect();
                    // Bulk churn past the measured crossover skips repair
                    // wholesale — eviction is cheaper there.
                    let try_repair = self
                        .cfg
                        .delta
                        .worth_repairing(delta.edges.len(), snap.edge_count())
                        && !affected.is_empty();
                    if self.cfg.delta.enabled && !try_repair && kg_telemetry::is_enabled() {
                        kg_telemetry::counter("votekg.serve.repair_bulk_skips").incr();
                    }
                    if try_repair {
                        // One delta load serves every plan in this sync.
                        REPAIR_SCRATCH
                            .with(|cell| cell.borrow_mut().load_delta(snap, &delta.edges));
                    }
                    let mut entries: HashMap<NodeId, Arc<CacheEntry>> =
                        HashMap::with_capacity(cache.entries.len());
                    let mut repaired = 0usize;
                    for (q, e) in &cache.entries {
                        if !affected.contains(q) {
                            entries.insert(*q, Arc::clone(e));
                        } else if try_repair {
                            match self.repair_entry(snap, e) {
                                Some(Repair::Keep) => {
                                    entries.insert(*q, Arc::clone(e));
                                    repaired += 1;
                                }
                                Some(Repair::Fixed(fixed)) => {
                                    entries.insert(*q, Arc::new(fixed));
                                    repaired += 1;
                                }
                                None => {}
                            }
                        }
                        // else: affected with repair skipped — evicted.
                    }
                    let evicted = affected.len() - repaired;
                    let retained = entries.len() - repaired;
                    self.stats.invalidated(evicted as u64);
                    self.stats.repaired(repaired as u64);
                    self.stats.retained(retained as u64);
                    span.field("changed_edges", delta.len());
                    span.field("invalidated", evicted);
                    span.field("repaired", repaired);
                    span.field("retained", retained);
                    if kg_telemetry::is_enabled() {
                        kg_telemetry::counter("votekg.serve.invalidations").add(evicted as u64);
                        kg_telemetry::counter("votekg.serve.repaired").add(repaired as u64);
                        kg_telemetry::counter("votekg.serve.retained").add(retained as u64);
                        kg_telemetry::histogram("votekg.serve.delta_edges")
                            .record(delta.len() as u64);
                    }
                    ShardCache {
                        epoch: target,
                        entries,
                    }
                }
            };
            Some(Arc::new(next))
        });
    }

    /// Loads `query`'s shard, migrating it forward to `snap`'s epoch
    /// first when it lags. The returned cache can still be *ahead* of
    /// `snap` (the caller holds an old snapshot, or a concurrent reader
    /// raced the shard further forward) — callers must re-check the epoch
    /// before serving from it.
    fn shard_at(&self, cell: &ArcCell<ShardCache>, snap: &GraphSnapshot) -> Arc<ShardCache> {
        let cache = cell.load();
        if cache.epoch >= snap.epoch() {
            cache
        } else {
            self.sync_shard(cell, snap);
            cell.load()
        }
    }

    /// Ranks `answers` for `query` against `snap`, serving from cache
    /// when possible. Output is always identical to
    /// `kg_sim::rank_answers(&snap, query, answers, &cfg.sim, k)`.
    ///
    /// The cache-hit path takes no lock and is wait-free with respect to
    /// concurrent publishers and miss-fills.
    pub fn rank_at(
        &self,
        snap: &GraphSnapshot,
        query: NodeId,
        answers: &[NodeId],
        k: usize,
    ) -> Vec<RankedAnswer> {
        let epoch = snap.epoch();
        let cell = self.shard_for(query);
        let cache = self.shard_at(cell, snap);
        if cache.epoch == epoch {
            if let Some(entry) = cache.entries.get(&query) {
                if entry.answers == answers {
                    self.stats.hit();
                    if kg_telemetry::is_enabled() {
                        kg_telemetry::counter("votekg.serve.hits").incr();
                    }
                    return entry.ranking.iter().take(k).copied().collect();
                }
            }
        }
        self.stats.miss();
        if kg_telemetry::is_enabled() {
            kg_telemetry::counter("votekg.serve.misses").incr();
        }
        let mut full = Vec::with_capacity(answers.len());
        let record = if self.cfg.delta.enabled {
            let mut rec = PhiRecord::new();
            with_local_workspace(|ws| {
                ws.rank_into_recorded(
                    snap,
                    query,
                    answers,
                    &self.cfg.sim,
                    answers.len(),
                    &mut full,
                    &mut rec,
                );
            });
            Some(rec)
        } else {
            with_local_workspace(|ws| {
                ws.rank_into(
                    snap,
                    query,
                    answers,
                    &self.cfg.sim,
                    answers.len(),
                    &mut full,
                );
            });
            None
        };
        let out = full.iter().take(k).copied().collect();
        self.install(cell, epoch, query, answers.to_vec(), full, record);
        out
    }

    /// Publishes a freshly computed ranking into its shard — but only if
    /// the shard is still at the epoch it was computed for. A shard that
    /// moved on (newer snapshot published meanwhile) silently drops the
    /// fill: inserting would poison a newer-epoch cache, and the entry
    /// was about to be invalidated anyway.
    fn install(
        &self,
        cell: &ArcCell<ShardCache>,
        epoch: u64,
        query: NodeId,
        answers: Vec<NodeId>,
        ranking: Vec<RankedAnswer>,
        record: Option<PhiRecord>,
    ) {
        let entry = Arc::new(CacheEntry {
            answers,
            ranking,
            record,
        });
        cell.update(|cache| {
            if cache.epoch != epoch {
                return None;
            }
            let mut next = ShardCache {
                epoch: cache.epoch,
                entries: cache.entries.clone(),
            };
            next.entries.insert(query, entry);
            Some(Arc::new(next))
        });
    }

    /// Ranks a whole batch against `snap`, evaluating cache misses in
    /// parallel over the configured worker count. Results are in request
    /// order and per-request identical to [`Self::rank_at`]. Duplicate
    /// queries within one batch are deduplicated exactly like
    /// [`ScoreServer::rank_batch`](crate::ScoreServer::rank_batch): the
    /// first occurrence computes, an identical repeat is a hit, and a
    /// repeat with a different answer list is computed separately (the
    /// last one wins the cache slot).
    pub fn rank_batch_at(
        &self,
        snap: &GraphSnapshot,
        requests: &[BatchQuery<'_>],
    ) -> Vec<Vec<RankedAnswer>> {
        let epoch = snap.epoch();
        let mut span = kg_telemetry::span!("votekg.serve.batch", {
            requests: requests.len(),
        });
        /// Where each request's ranking comes from.
        enum Source {
            /// Served from a cache entry captured at lookup time.
            Hit(Arc<CacheEntry>),
            /// Index into the computed-miss results.
            Computed(usize),
        }
        let mut sources: Vec<Source> = Vec::with_capacity(requests.len());
        let mut miss_requests: Vec<BatchQuery<'_>> = Vec::new();
        let mut miss_index: HashMap<NodeId, usize> = HashMap::new();
        for req in requests {
            let cell = self.shard_for(req.query);
            let cache = self.shard_at(cell, snap);
            let entry = (cache.epoch == epoch)
                .then(|| cache.entries.get(&req.query))
                .flatten()
                .filter(|e| e.answers == req.answers);
            if let Some(e) = entry {
                self.stats.hit();
                sources.push(Source::Hit(Arc::clone(e)));
            } else if let Some(&mi) = miss_index.get(&req.query) {
                if miss_requests[mi].answers == req.answers {
                    self.stats.hit();
                    sources.push(Source::Computed(mi));
                } else {
                    self.stats.miss();
                    miss_index.insert(req.query, miss_requests.len());
                    sources.push(Source::Computed(miss_requests.len()));
                    miss_requests.push(BatchQuery {
                        k: req.answers.len(),
                        ..*req
                    });
                }
            } else {
                self.stats.miss();
                miss_index.insert(req.query, miss_requests.len());
                sources.push(Source::Computed(miss_requests.len()));
                miss_requests.push(BatchQuery {
                    k: req.answers.len(),
                    ..*req
                });
            }
        }
        span.field("misses", miss_requests.len());
        if kg_telemetry::is_enabled() {
            kg_telemetry::counter("votekg.serve.batches").incr();
            kg_telemetry::histogram("votekg.serve.batch_misses").record(miss_requests.len() as u64);
        }
        let (computed, records): (Vec<Vec<RankedAnswer>>, Vec<Option<PhiRecord>>) =
            if self.cfg.delta.enabled {
                rank_many_recorded(snap, &miss_requests, &self.cfg.sim, self.cfg.workers)
                    .into_iter()
                    .map(|(ranking, rec)| (ranking, Some(rec)))
                    .unzip()
            } else {
                let rankings = rank_many(snap, &miss_requests, &self.cfg.sim, self.cfg.workers);
                let records = miss_requests.iter().map(|_| None).collect();
                (rankings, records)
            };
        for ((req, ranking), record) in miss_requests.iter().zip(&computed).zip(records) {
            self.install(
                self.shard_for(req.query),
                epoch,
                req.query,
                req.answers.to_vec(),
                ranking.clone(),
                record,
            );
        }
        sources
            .iter()
            .zip(requests)
            .map(|(src, req)| {
                let full = match src {
                    Source::Hit(e) => &e.ranking,
                    Source::Computed(mi) => &computed[*mi],
                };
                full.iter().take(req.k).copied().collect()
            })
            .collect()
    }
}

/// A cheap, cloneable reader handle: one [`SharedGraph`] publication
/// point plus one [`SnapshotServer`] cache. `Clone + Send + Sync`, so one
/// handle per reader thread is the intended usage.
///
/// Every call resolves the *current* snapshot first, so two successive
/// [`Self::rank`] calls may observe different epochs while an optimizer
/// publishes concurrently. [`Self::rank_snapshot`] returns the snapshot
/// actually used, which is what coherence checks want.
#[derive(Debug, Clone)]
pub struct ServeHandle {
    shared: Arc<SharedGraph>,
    server: Arc<SnapshotServer>,
}

impl ServeHandle {
    /// Creates a handle over an existing publication point and cache.
    pub fn new(shared: Arc<SharedGraph>, server: Arc<SnapshotServer>) -> Self {
        ServeHandle { shared, server }
    }

    /// The publication point this handle reads from.
    pub fn shared(&self) -> &Arc<SharedGraph> {
        &self.shared
    }

    /// The cache this handle serves through.
    pub fn server(&self) -> &Arc<SnapshotServer> {
        &self.server
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> GraphSnapshot {
        self.shared.snapshot()
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch()
    }

    /// Cumulative cache counters of the underlying server.
    pub fn stats(&self) -> ServeStats {
        self.server.stats()
    }

    /// Ranks against the currently published snapshot.
    pub fn rank(&self, query: NodeId, answers: &[NodeId], k: usize) -> Vec<RankedAnswer> {
        self.server
            .rank_at(&self.shared.snapshot(), query, answers, k)
    }

    /// Like [`Self::rank`], but also returns the snapshot the ranking was
    /// evaluated against, so callers can verify the result against an
    /// uncached evaluation of that exact graph state.
    pub fn rank_snapshot(
        &self,
        query: NodeId,
        answers: &[NodeId],
        k: usize,
    ) -> (GraphSnapshot, Vec<RankedAnswer>) {
        let snap = self.shared.snapshot();
        let ranking = self.server.rank_at(&snap, query, answers, k);
        (snap, ranking)
    }

    /// Ranks a whole batch against the currently published snapshot (one
    /// snapshot for the entire batch).
    pub fn rank_batch(&self, requests: &[BatchQuery<'_>]) -> Vec<Vec<RankedAnswer>> {
        self.server.rank_batch_at(&self.shared.snapshot(), requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{EdgeId, GraphBuilder, KnowledgeGraph, NodeKind};
    use kg_sim::rank_answers;
    use std::thread;

    /// Two independent regions behind one graph: changing region 0 must
    /// not evict region 1's cache entry.
    fn two_regions() -> (KnowledgeGraph, Vec<NodeId>, Vec<Vec<NodeId>>, Vec<EdgeId>) {
        let mut b = GraphBuilder::new();
        let mut queries = Vec::new();
        let mut answers = Vec::new();
        let mut hub_edges = Vec::new();
        for r in 0..2 {
            let q = b.add_node(format!("q{r}"), NodeKind::Query);
            let h = b.add_node(format!("h{r}"), NodeKind::Entity);
            let a1 = b.add_node(format!("a1_{r}"), NodeKind::Answer);
            let a2 = b.add_node(format!("a2_{r}"), NodeKind::Answer);
            b.add_edge(q, h, 1.0).unwrap();
            hub_edges.push(b.add_edge(h, a1, 0.7).unwrap());
            b.add_edge(h, a2, 0.3).unwrap();
            queries.push(q);
            answers.push(vec![a1, a2]);
        }
        (b.build(), queries, answers, hub_edges)
    }

    #[test]
    fn hit_after_miss_and_results_match_uncached() {
        let (g, queries, answers, _) = two_regions();
        let snap = g.publish();
        let s = SnapshotServer::default();
        let cfg = s.config().sim;
        let first = s.rank_at(&snap, queries[0], &answers[0], 2);
        let second = s.rank_at(&snap, queries[0], &answers[0], 2);
        assert_eq!(first, second);
        assert_eq!(first, rank_answers(&g, queries[0], &answers[0], &cfg, 2));
        assert_eq!(s.stats().misses, 1);
        assert_eq!(s.stats().hits, 1);
    }

    #[test]
    fn unrelated_change_keeps_entry_related_change_repairs() {
        let (mut g, queries, answers, hub_edges) = two_regions();
        let s = SnapshotServer::default();
        let snap = g.publish();
        s.rank_at(&snap, queries[0], &answers[0], 2);
        s.rank_at(&snap, queries[1], &answers[1], 2);
        assert_eq!(s.cached_queries(), 2);

        // Change region 1's hub edge: only q1 is affected — and its entry
        // is repaired in place, not evicted.
        g.set_weight(hub_edges[1], 0.1).unwrap();
        let snap2 = g.publish();
        let cfg = s.config().sim;
        let r0 = s.rank_at(&snap2, queries[0], &answers[0], 2);
        let r1 = s.rank_at(&snap2, queries[1], &answers[1], 2);
        assert_eq!(r0, rank_answers(&g, queries[0], &answers[0], &cfg, 2));
        assert_eq!(r1, rank_answers(&g, queries[1], &answers[1], &cfg, 2));
        let stats = s.stats();
        assert_eq!(stats.invalidated, 0);
        assert_eq!(stats.repaired, 1);
        assert_eq!(stats.retained, 1);
        assert_eq!(stats.hits, 2, "q0 survives, q1 is repaired — both hits");
        assert_eq!(stats.misses, 2);
        assert_eq!(s.cached_queries(), 2);
    }

    #[test]
    fn disabled_delta_evicts_affected_entries() {
        let (mut g, queries, answers, hub_edges) = two_regions();
        let s = SnapshotServer::new(ServeConfig {
            delta: kg_sim::DeltaConfig::disabled(),
            ..Default::default()
        });
        let snap = g.publish();
        s.rank_at(&snap, queries[0], &answers[0], 2);
        s.rank_at(&snap, queries[1], &answers[1], 2);
        g.set_weight(hub_edges[1], 0.1).unwrap();
        let snap2 = g.publish();
        let cfg = s.config().sim;
        let r0 = s.rank_at(&snap2, queries[0], &answers[0], 2);
        let r1 = s.rank_at(&snap2, queries[1], &answers[1], 2);
        assert_eq!(r0, rank_answers(&g, queries[0], &answers[0], &cfg, 2));
        assert_eq!(r1, rank_answers(&g, queries[1], &answers[1], &cfg, 2));
        let stats = s.stats();
        assert_eq!(stats.invalidated, 1);
        assert_eq!(stats.repaired, 0);
        assert_eq!(stats.retained, 1);
        assert_eq!(stats.hits, 1, "q0 must survive the sync as a hit");
        assert_eq!(stats.misses, 3);
    }

    /// Two shards syncing over the same epoch transition must share one
    /// `changes_since` extraction through the cross-shard memo.
    #[test]
    fn shards_share_one_delta_extraction() {
        kg_telemetry::enable();
        let (mut g, queries, answers, hub_edges) = two_regions();
        // Enough shards that the two queries land in different ones.
        let s = SnapshotServer::new(ServeConfig {
            shards: 16,
            ..Default::default()
        });
        let snap = g.publish();
        s.rank_at(&snap, queries[0], &answers[0], 2);
        s.rank_at(&snap, queries[1], &answers[1], 2);
        g.set_weight(hub_edges[0], 0.2).unwrap();
        g.set_weight(hub_edges[1], 0.4).unwrap();
        let snap2 = g.publish();
        let before = kg_telemetry::Snapshot::capture();
        s.rank_at(&snap2, queries[0], &answers[0], 2);
        s.rank_at(&snap2, queries[1], &answers[1], 2);
        let after = kg_telemetry::Snapshot::capture();
        let hits = |snap: &kg_telemetry::Snapshot| {
            snap.counters
                .iter()
                .find(|(k, _)| k == "votekg.serve.delta_memo_hits")
                .map_or(0, |(_, v)| *v)
        };
        assert!(
            hits(&after) > hits(&before),
            "second shard's sync must hit the delta memo"
        );
        assert_eq!(s.stats().repaired, 2, "both entries repaired");
    }

    #[test]
    fn changed_answer_list_is_a_miss() {
        let (g, queries, answers, _) = two_regions();
        let snap = g.publish();
        let s = SnapshotServer::default();
        s.rank_at(&snap, queries[0], &answers[0], 2);
        let shorter = &answers[0][..1];
        let r = s.rank_at(&snap, queries[0], shorter, 1);
        assert_eq!(s.stats().misses, 2);
        assert_eq!(r.len(), 1);
        // And the shorter list is now the cached one.
        s.rank_at(&snap, queries[0], shorter, 1);
        assert_eq!(s.stats().hits, 1);
    }

    #[test]
    fn older_epoch_reads_bypass_the_cache_until_cleared() {
        let (mut g, queries, answers, hub_edges) = two_regions();
        g.set_weight(hub_edges[0], 0.6).unwrap();
        let snap = g.publish();
        let s = SnapshotServer::default();
        let newer = s.rank_at(&snap, queries[0], &answers[0], 2);
        // A fresh build of the same topology restarts at epoch 0: an
        // unknown lineage. Results stay correct (direct evaluation), the
        // shard is not rewound, and nothing of the old cache is served.
        let (g2, _, _, _) = two_regions();
        let snap2 = g2.publish();
        assert!(snap2.epoch() < snap.epoch());
        let cfg = s.config().sim;
        for _ in 0..2 {
            let r = s.rank_at(&snap2, queries[0], &answers[0], 2);
            assert_eq!(r, rank_answers(&g2, queries[0], &answers[0], &cfg, 2));
        }
        assert_eq!(s.stats().misses, 3, "bypassed reads never cache");
        // The newer snapshot's entry survived the stragglers.
        assert_eq!(s.rank_at(&snap, queries[0], &answers[0], 2), newer);
        assert_eq!(s.stats().hits, 1);
        // Re-attaching to the new lineage goes through clear().
        s.clear();
        assert_eq!(s.stats().full_clears, 1);
        s.rank_at(&snap2, queries[0], &answers[0], 2);
        s.rank_at(&snap2, queries[0], &answers[0], 2);
        assert_eq!(s.stats().hits, 2, "cache works again after clear");
    }

    #[test]
    fn batch_matches_singles_and_dedups_repeated_queries() {
        let (g, queries, answers, _) = two_regions();
        let snap = g.publish();
        let requests = vec![
            BatchQuery {
                query: queries[0],
                answers: &answers[0],
                k: 2,
            },
            BatchQuery {
                query: queries[1],
                answers: &answers[1],
                k: 1,
            },
            BatchQuery {
                query: queries[0],
                answers: &answers[0],
                k: 1,
            },
        ];
        for workers in [1, 4] {
            let s = SnapshotServer::new(ServeConfig {
                workers,
                ..Default::default()
            });
            let got = s.rank_batch_at(&snap, &requests);
            let cfg = s.config().sim;
            assert_eq!(got[0], rank_answers(&g, queries[0], &answers[0], &cfg, 2));
            assert_eq!(got[1], rank_answers(&g, queries[1], &answers[1], &cfg, 1));
            assert_eq!(got[2], rank_answers(&g, queries[0], &answers[0], &cfg, 1));
            // Two unique queries computed, the duplicate was a hit.
            assert_eq!(s.stats().misses, 2, "workers {workers}");
            assert_eq!(s.stats().hits, 1, "workers {workers}");
        }
    }

    #[test]
    fn stale_miss_fill_does_not_poison_a_newer_shard() {
        let (mut g, queries, answers, hub_edges) = two_regions();
        let s = SnapshotServer::new(ServeConfig {
            shards: 1, // force both epochs through the same shard
            ..Default::default()
        });
        let old_snap = g.publish();
        g.set_weight(hub_edges[0], 0.05).unwrap();
        let new_snap = g.publish();
        // A reader on the *new* snapshot migrates the shard forward...
        let new_r = s.rank_at(&new_snap, queries[0], &answers[0], 2);
        // ...then a straggler still holding the old snapshot computes.
        // Its fill must be dropped, not inserted into the newer shard.
        let old_r = s.rank_at(&old_snap, queries[0], &answers[0], 2);
        let cfg = s.config().sim;
        assert_eq!(
            old_r,
            rank_answers(&old_snap, queries[0], &answers[0], &cfg, 2)
        );
        assert_ne!(old_r, new_r, "the weight change must reorder the answers");
        // The shard still serves the new snapshot's ranking, not the
        // straggler's.
        assert_eq!(s.rank_at(&new_snap, queries[0], &answers[0], 2), new_r);
        assert_eq!(s.stats().hits, 1);
    }

    /// Readers hammer a shared server while a writer keeps publishing;
    /// every ranking must match an uncached evaluation of the snapshot it
    /// was served from. (The root-level stress suite runs a bigger
    /// version of this; this one keeps the crate self-checking.)
    #[test]
    fn concurrent_readers_stay_coherent_under_publishing() {
        let (g, queries, answers, hub_edges) = two_regions();
        let shared = Arc::new(SharedGraph::new(g.clone()));
        let server = Arc::new(SnapshotServer::new(ServeConfig {
            shards: 2,
            ..Default::default()
        }));
        let handle = ServeHandle::new(shared.clone(), server);
        let cfg = handle.server().config().sim;

        thread::scope(|scope| {
            for t in 0..4 {
                let handle = handle.clone();
                let queries = &queries;
                let answers = &answers;
                scope.spawn(move || {
                    let mut last_epoch = 0;
                    for i in 0..200 {
                        let r = (t + i) % queries.len();
                        let (snap, ranking) = handle.rank_snapshot(queries[r], &answers[r], 2);
                        assert!(snap.epoch() >= last_epoch, "epochs ran backwards");
                        last_epoch = snap.epoch();
                        assert_eq!(
                            ranking,
                            rank_answers(&snap, queries[r], &answers[r], &cfg, 2),
                            "epoch {} query {r}",
                            snap.epoch()
                        );
                    }
                });
            }
            let mut writer_graph = g.clone();
            for i in 0..100 {
                let w = 0.05 + 0.9 * ((i % 10) as f64) / 10.0;
                writer_graph.set_weight(hub_edges[i % 2], w).unwrap();
                shared.publish(&writer_graph);
            }
        });

        // Quiescent: one more read per query must match the final graph.
        let final_snap = handle.snapshot();
        for r in 0..queries.len() {
            assert_eq!(
                handle.rank(queries[r], &answers[r], 2),
                rank_answers(&final_snap, queries[r], &answers[r], &cfg, 2)
            );
        }
    }

    #[test]
    fn k_larger_than_answers_returns_all_and_clear_forces_recompute() {
        let (g, queries, answers, _) = two_regions();
        let snap = g.publish();
        let s = SnapshotServer::default();
        let r = s.rank_at(&snap, queries[0], &answers[0], 10);
        assert_eq!(r.len(), answers[0].len());
        s.clear();
        assert_eq!(s.cached_queries(), 0);
        s.rank_at(&snap, queries[0], &answers[0], 2);
        assert_eq!(s.stats().misses, 2);
    }
}
