//! Divergence shrinking: reduce a failing case to a minimal repro while
//! re-verifying the divergence survives every step.
//!
//! Greedy delta-debugging over four reduction moves, each strictly
//! decreasing a finite measure (vote count, total answer count, edge
//! count, weight precision), so the loop terminates:
//!
//! 1. drop whole votes;
//! 2. drop competitor answers from a vote's ranked list (the voted best
//!    answer and at least one competitor always remain);
//! 3. drop graph edges;
//! 4. round edge weights to fewer decimals.
//!
//! A candidate is accepted only when the caller's `diverges` predicate
//! still holds — shrinking never trades one divergence kind for another
//! unless the predicate says the trade is acceptable.

use crate::case::FuzzCase;
use kg_graph::io::GraphDoc;
use kg_graph::KnowledgeGraph;
use kg_votes::Vote;

/// Result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized case (still divergent under the predicate).
    pub case: FuzzCase,
    /// Accepted reduction steps.
    pub steps: usize,
    /// Candidate checks performed (accepted + rejected).
    pub checks: usize,
}

/// Rebuilds the case's graph without the edge at `idx` (edge-id order).
fn without_edge(graph: &KnowledgeGraph, idx: usize) -> Option<KnowledgeGraph> {
    let mut doc = GraphDoc::from_graph(graph);
    if idx >= doc.edges.len() {
        return None;
    }
    doc.edges.remove(idx);
    doc.into_graph().ok()
}

/// Rounds every edge weight to `decimals` places (keeping it positive).
/// Returns `None` when rounding changes nothing.
fn rounded_weights(graph: &KnowledgeGraph, decimals: u32) -> Option<KnowledgeGraph> {
    let mut doc = GraphDoc::from_graph(graph);
    let scale = 10f64.powi(decimals as i32);
    let mut changed = false;
    for e in &mut doc.edges {
        let r = ((e.2 * scale).round() / scale).max(1.0 / scale);
        if r.to_bits() != e.2.to_bits() {
            e.2 = r;
            changed = true;
        }
    }
    if !changed {
        return None;
    }
    doc.into_graph().ok()
}

/// Shrinks `case` under the `diverges` predicate. `max_checks` caps the
/// total number of predicate evaluations (each one re-runs the solver
/// matrix); on exhaustion the best case so far is returned.
pub fn shrink<F>(case: FuzzCase, mut diverges: F, max_checks: usize) -> ShrinkOutcome
where
    F: FnMut(&FuzzCase) -> bool,
{
    let mut current = case;
    let mut steps = 0usize;
    let mut checks = 0usize;

    let mut try_accept = |candidate: FuzzCase,
                          current: &mut FuzzCase,
                          steps: &mut usize,
                          checks: &mut usize|
     -> bool {
        *checks += 1;
        if diverges(&candidate) {
            *current = candidate;
            *steps += 1;
            true
        } else {
            false
        }
    };

    // Pass structure: repeat all moves until a full sweep accepts
    // nothing. Every acceptance strictly shrinks (votes, answers, edges)
    // or reduces weight precision (attempted once per decimal level), so
    // the number of acceptances is finite even without `max_checks`.
    loop {
        let mut progressed = false;

        // Move 1: drop whole votes (keep at least one).
        let mut vi = 0;
        while current.votes.len() > 1 && vi < current.votes.len() && checks < max_checks {
            let mut cand = current.clone();
            cand.votes.remove(vi);
            if try_accept(cand, &mut current, &mut steps, &mut checks) {
                progressed = true; // same index now holds the next vote
            } else {
                vi += 1;
            }
        }

        // Move 2: drop competitor answers (keep best + one competitor).
        let mut v = 0;
        while v < current.votes.len() && checks < max_checks {
            let mut a = 0;
            while a < current.votes[v].answers.len() && checks < max_checks {
                let vote = &current.votes[v];
                if vote.answers.len() <= 2 || vote.answers[a] == vote.best {
                    a += 1;
                    continue;
                }
                let mut answers = vote.answers.clone();
                answers.remove(a);
                let mut cand = current.clone();
                cand.votes[v] = Vote::new(vote.query, answers, vote.best);
                if try_accept(cand, &mut current, &mut steps, &mut checks) {
                    progressed = true;
                } else {
                    a += 1;
                }
            }
            v += 1;
        }

        // Move 3: drop graph edges.
        let mut e = 0;
        while e < current.graph.edge_count() && checks < max_checks {
            let Some(graph) = without_edge(&current.graph, e) else {
                e += 1;
                continue;
            };
            let cand = FuzzCase {
                seed: current.seed,
                graph,
                votes: current.votes.clone(),
            };
            if try_accept(cand, &mut current, &mut steps, &mut checks) {
                progressed = true;
            } else {
                e += 1;
            }
        }

        // Move 4: round weights (coarser precision = simpler repro).
        for decimals in [3u32, 2, 1] {
            if checks >= max_checks {
                break;
            }
            if let Some(graph) = rounded_weights(&current.graph, decimals) {
                let cand = FuzzCase {
                    seed: current.seed,
                    graph,
                    votes: current.votes.clone(),
                };
                if try_accept(cand, &mut current, &mut steps, &mut checks) {
                    progressed = true;
                }
            }
        }

        if !progressed || checks >= max_checks {
            break;
        }
    }

    ShrinkOutcome {
        case: current,
        steps,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_datasets::InstanceDistribution;
    use kg_graph::NodeId;

    fn seed_case() -> FuzzCase {
        // Pick a seed with several votes so there is something to shrink.
        let dist = InstanceDistribution::default();
        (0..64)
            .map(|s| FuzzCase::from_seed(s, &dist))
            .find(|c| c.votes.len() >= 2 && c.votes.iter().any(|v| v.answers.len() >= 3))
            .expect("default distribution produces multi-vote cases")
    }

    #[test]
    fn shrink_preserves_divergence_and_minimizes() {
        // Synthetic predicate: "diverges" while the case still contains a
        // vote for the marked query. The shrinker must keep exactly that
        // property while discarding everything else it can.
        let case = seed_case();
        let marked: NodeId = case.votes[0].query;
        let out = shrink(case, |c| c.votes.iter().any(|v| v.query == marked), 10_000);
        assert!(out.case.votes.iter().any(|v| v.query == marked));
        assert_eq!(
            out.case.votes.len(),
            1,
            "all unmarked votes should shrink away"
        );
        assert!(out.steps >= 1);
    }

    #[test]
    fn shrink_terminates_when_everything_diverges() {
        // An always-true predicate is the worst case for termination: the
        // shrinker accepts every reduction and must still bottom out.
        let case = seed_case();
        let out = shrink(case, |_| true, 50_000);
        assert_eq!(out.case.votes.len(), 1);
        assert!(
            out.case.votes[0].answers.len() <= 2,
            "competitor answers should shrink to at most best + one"
        );
        assert!(out.checks <= 50_000);
    }

    #[test]
    fn shrink_respects_check_budget() {
        let case = seed_case();
        let out = shrink(case, |_| true, 3);
        assert!(out.checks <= 3);
    }

    #[test]
    fn never_divergent_case_is_returned_unchanged() {
        let case = seed_case();
        let votes_before = case.votes.clone();
        let out = shrink(case, |_| false, 10_000);
        assert_eq!(out.steps, 0);
        assert_eq!(out.case.votes, votes_before);
    }
}
