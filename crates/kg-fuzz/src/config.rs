//! Harness configuration: instance distribution, encoding parameters,
//! solver options, and the divergence tolerances.

use kg_datasets::InstanceDistribution;
use kg_votes::{EncodeOptions, MultiParams};
use serde::{Deserialize, Serialize};
use sgp::SolveOptions;

/// Divergence tolerances for the cross-checks.
///
/// These are *not* proofs — the SGP problems are nonconvex and every
/// solver in the matrix is a local method, so honest solvers can land on
/// different local optima. The defaults are calibrated empirically (see
/// DESIGN.md "Testing & fuzzing" and `examples/calibrate.rs`): over
/// 1000 seeds of the default distribution, clean solvers that do not
/// claim feasibility stay below `max_violation ≈ 2e-5` (500× under
/// `feas_split`) and relative objective gaps between feasible solvers
/// reach 1.37 (vs. the 2.0 bound). Feasibility split is the sharp
/// detector; the objective-gap bound only catches catastrophic
/// divergence, because honest local optima legitimately differ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tolerances {
    /// A solver "claims feasibility" when its final `max_violation` is at
    /// most this (matches the solver's own `feas_tol`).
    pub feas_agree: f64,
    /// A feasibility split is flagged only when one solver claims
    /// feasibility while another is violated by at least this much — the
    /// hysteresis band between the two thresholds absorbs borderline
    /// cases where solvers legitimately stop on either side of `feas_tol`.
    pub feas_split: f64,
    /// Absolute part of the objective-gap bound between solvers that
    /// converged feasible.
    pub obj_gap_abs: f64,
    /// Relative part of the bound: the allowed gap is
    /// `obj_gap_abs + obj_gap_rel · |best objective|`.
    pub obj_gap_rel: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            feas_agree: 1e-6,
            feas_split: 1e-2,
            obj_gap_abs: 0.5,
            obj_gap_rel: 2.0,
        }
    }
}

/// Full configuration of one fuzzing campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuzzConfig {
    /// Shape of the random instances ([`kg_datasets::random_instance`]).
    pub dist: InstanceDistribution,
    /// Vote-encoding options; `encode.sim` must match `dist.sim` so the
    /// constraints describe the rankings the votes were generated from.
    pub encode: EncodeOptions,
    /// Multi-vote objective parameters. The harness forces
    /// `deviation_vars = true`: the explicit form carries real
    /// constraints, giving the feasibility cross-check something to
    /// compare, and is always satisfiable (each `d'` can absorb its
    /// margin), so an infeasible verdict is a solver property — exactly
    /// what differential testing wants to compare.
    pub params: MultiParams,
    /// Solver options shared by every cell of the matrix. `time_budget`
    /// is the per-solve wall-clock budget (PR 4 plumbing); replays clear
    /// it to stay deterministic.
    pub solve: SolveOptions,
    /// Divergence tolerances.
    pub tol: Tolerances,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        let dist = InstanceDistribution::default();
        FuzzConfig {
            dist,
            encode: EncodeOptions {
                sim: dist.sim,
                ..EncodeOptions::default()
            },
            params: MultiParams {
                // A tame sigmoid (the paper's 300 is for production-size
                // batches) and a dominant proximal term keep the tiny
                // fuzz problems near-convex, so honest local solvers
                // agree within the tolerances.
                lambda1: 0.7,
                lambda2: 0.3,
                steepness: 40.0,
                deviation_vars: true,
            },
            solve: SolveOptions::default(),
            tol: Tolerances::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_consistent() {
        let cfg = FuzzConfig::default();
        assert_eq!(cfg.encode.sim, cfg.dist.sim, "encode must match gen");
        assert!(cfg.params.deviation_vars, "matrix needs real constraints");
        assert!(cfg.tol.feas_split > cfg.tol.feas_agree, "hysteresis band");
    }
}
