//! Seed-range campaign driver: run N cases under per-case budgets,
//! shrink every divergence, write repro files, and emit a
//! `votekg.fuzz.*` telemetry summary.

use crate::case::FuzzCase;
use crate::config::FuzzConfig;
use crate::matrix::{check_case, Verdict};
use crate::repro::{ReproFault, ReproFile};
use crate::shrink::shrink;
use std::ops::Range;
use std::path::PathBuf;

/// Campaign knobs on top of the per-case [`FuzzConfig`].
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Per-case solver/encoding/tolerance configuration. The
    /// `cfg.solve.time_budget` field is the per-solve wall-clock budget.
    pub cfg: FuzzConfig,
    /// Cap on matrix re-runs per divergence while shrinking.
    pub shrink_checks: usize,
    /// Directory to write `seed-<n>.repro.json` files into (created if
    /// missing); `None` keeps repros in memory only.
    pub out_dir: Option<PathBuf>,
    /// Fault the caller has installed via [`sgp::fault::inject`] for this
    /// campaign, recorded into repro files so replays re-install it. The
    /// driver does *not* install it itself — the caller owns the guard.
    pub fault: Option<ReproFault>,
    /// Stop the campaign once this many divergences have been shrunk and
    /// recorded; `None` runs the whole seed range.
    pub stop_after: Option<usize>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            cfg: FuzzConfig::default(),
            shrink_checks: 600,
            out_dir: None,
            fault: None,
            stop_after: None,
        }
    }
}

/// One shrunk divergence found by a campaign.
#[derive(Debug, Clone)]
pub struct DivergenceRecord {
    /// Seed of the originating case.
    pub seed: u64,
    /// Verdict label ([`Verdict::label`]) of the divergence.
    pub verdict: String,
    /// Votes remaining after shrinking.
    pub votes: usize,
    /// Accepted shrink steps.
    pub shrink_steps: usize,
    /// The replayable record.
    pub repro: ReproFile,
    /// Where the repro file was written, when `out_dir` was set.
    pub path: Option<PathBuf>,
}

/// Aggregate result of a seed-range campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    /// Cases run.
    pub cases: u64,
    /// Cases where every cross-check passed.
    pub agree: u64,
    /// Cases with nothing to solve.
    pub trivial: u64,
    /// Cases where a solve hit the wall-clock budget (no claim made).
    pub truncated: u64,
    /// Solver invocations across the whole campaign (including shrinks).
    pub solves: u64,
    /// Shrunk divergences, in seed order.
    pub divergences: Vec<DivergenceRecord>,
}

impl CampaignSummary {
    /// One-line human summary.
    pub fn line(&self) -> String {
        format!(
            "{} cases: {} agree, {} trivial, {} truncated, {} divergences ({} solves)",
            self.cases,
            self.agree,
            self.trivial,
            self.truncated,
            self.divergences.len(),
            self.solves
        )
    }
}

/// Runs the differential matrix over every seed in `seeds`, shrinking
/// and recording each divergence. Deterministic for a fixed
/// configuration (and fixed installed fault plan) as long as no
/// wall-clock budget truncates a solve.
pub fn run_campaign(seeds: Range<u64>, opts: &CampaignOptions) -> CampaignSummary {
    let mut summary = CampaignSummary::default();
    if let Some(dir) = &opts.out_dir {
        // Best-effort: failure to create the directory surfaces on write.
        let _ = std::fs::create_dir_all(dir);
    }
    for seed in seeds {
        let case = FuzzCase::from_seed(seed, &opts.cfg.dist);
        let report = check_case(&case, &opts.cfg);
        summary.cases += 1;
        summary.solves += report.solves as u64;
        if kg_telemetry::is_enabled() {
            kg_telemetry::counter("votekg.fuzz.cases").incr();
            kg_telemetry::counter("votekg.fuzz.solves").add(report.solves as u64);
            kg_telemetry::counter_labeled(
                "votekg.fuzz.verdicts",
                &[("verdict", report.verdict.label())],
            )
            .incr();
        }
        let divergence = match report.verdict {
            Verdict::Agree => {
                summary.agree += 1;
                continue;
            }
            Verdict::Trivial => {
                summary.trivial += 1;
                continue;
            }
            Verdict::Truncated => {
                summary.truncated += 1;
                continue;
            }
            Verdict::Diverged(d) => d,
        };

        // Shrink, re-verifying the same divergence kind survives.
        let kind = divergence.kind;
        let mut shrink_solves = 0usize;
        let outcome = shrink(
            case,
            |cand| {
                let r = check_case(cand, &opts.cfg);
                shrink_solves += r.solves;
                matches!(r.verdict, Verdict::Diverged(ref d) if d.kind == kind)
            },
            opts.shrink_checks,
        );
        summary.solves += shrink_solves as u64;
        if kg_telemetry::is_enabled() {
            kg_telemetry::counter("votekg.fuzz.solves").add(shrink_solves as u64);
            kg_telemetry::histogram("votekg.fuzz.shrink_steps").record(outcome.steps as u64);
        }

        let mut repro = ReproFile::from_case(
            &outcome.case,
            &opts.cfg,
            opts.fault.clone(),
            kind.as_str(),
            outcome.steps,
        );
        // With telemetry on, embed a flight-recorder trace of the shrunk
        // diverging solve (re-run under the caller's still-installed
        // fault guard, so planted bugs trace identically).
        repro.capture_trace();
        let path = opts.out_dir.as_ref().map(|d| {
            let p = d.join(format!("seed-{seed}.repro.json"));
            if let Err(e) = repro.write(&p) {
                kg_telemetry::tevent!(
                    kg_telemetry::Level::Warn,
                    "votekg.fuzz",
                    "failed to write repro for seed {seed}: {e}"
                );
            }
            p
        });
        kg_telemetry::tevent!(
            kg_telemetry::Level::Warn,
            "votekg.fuzz",
            "seed {seed} diverged ({}): {} — shrunk to {} votes in {} steps",
            kind.as_str(),
            divergence.detail,
            outcome.case.votes.len(),
            outcome.steps
        );
        summary.divergences.push(DivergenceRecord {
            seed,
            verdict: kind.as_str().to_string(),
            votes: outcome.case.votes.len(),
            shrink_steps: outcome.steps,
            repro,
            path,
        });
        if let Some(cap) = opts.stop_after {
            if summary.divergences.len() >= cap {
                break;
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_clean_campaign_finds_nothing() {
        let summary = run_campaign(0..6, &CampaignOptions::default());
        assert_eq!(summary.cases, 6);
        assert!(summary.divergences.is_empty(), "{}", summary.line());
        assert_eq!(summary.agree + summary.trivial + summary.truncated, 6);
    }
}
