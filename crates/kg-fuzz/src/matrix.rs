//! The differential solver matrix and its cross-checks.

use crate::case::FuzzCase;
use crate::config::FuzzConfig;
use kg_graph::io::GraphDoc;
use kg_votes::{
    encode_multi, run_solver, run_solver_resilient, InnerOpt, MultiParams, RetryPolicy,
};
use serde::{Deserialize, Serialize};
use sgp::{ConvergenceReason, SolveResult};

/// The full solver matrix: every (outer, inner) combination the vote
/// pipelines can select, in a fixed deterministic order.
pub const MATRIX: [(bool, InnerOpt); 6] = [
    (false, InnerOpt::Adam),
    (false, InnerOpt::ProjGrad),
    (false, InnerOpt::Lbfgs),
    (true, InnerOpt::Adam),
    (true, InnerOpt::ProjGrad),
    (true, InnerOpt::Lbfgs),
];

/// Which cross-check a divergence tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DivergenceKind {
    /// One solver claims feasibility while another reports a violation
    /// beyond the hysteresis band (check a).
    FeasibilitySplit,
    /// Two solvers that both converged feasible landed further apart in
    /// objective value than the configured bound (check b).
    ObjectiveGap,
    /// The PR 4 fallback chain applied different weights than a direct
    /// solve of the same primary combination (check c).
    FallbackMismatch,
    /// One solver returned an error while another completed — an
    /// asymmetric hard failure on the shared problem.
    ErrorSplit,
}

impl DivergenceKind {
    /// Stable label used in telemetry, repro files, and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            DivergenceKind::FeasibilitySplit => "feasibility_split",
            DivergenceKind::ObjectiveGap => "objective_gap",
            DivergenceKind::FallbackMismatch => "fallback_mismatch",
            DivergenceKind::ErrorSplit => "error_split",
        }
    }
}

/// A cross-check failure: two solver runs disagreed beyond tolerance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Divergence {
    /// Which check tripped.
    pub kind: DivergenceKind,
    /// Human-readable account naming the disagreeing solvers and values.
    pub detail: String,
}

/// Outcome of one case's matrix run.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The encoding produced nothing to solve (no votes reached the
    /// optimizer or every edge was frozen); vacuously consistent.
    Trivial,
    /// Every cross-check passed.
    Agree,
    /// At least one solve was truncated by the wall-clock budget; a
    /// truncated iterate carries no feasibility claim, so the case makes
    /// no statement either way.
    Truncated,
    /// A cross-check failed.
    Diverged(Divergence),
}

impl Verdict {
    /// Stable label used in telemetry, repro files, and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Trivial => "trivial",
            Verdict::Agree => "agree",
            Verdict::Truncated => "truncated",
            Verdict::Diverged(d) => d.kind.as_str(),
        }
    }
}

/// What [`check_case`] observed for one case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The cross-check outcome.
    pub verdict: Verdict,
    /// Solver invocations performed (matrix cells + fallback-chain runs).
    pub solves: usize,
}

fn finite(r: &SolveResult) -> bool {
    r.objective.is_finite() && r.x.iter().all(|v| v.is_finite())
}

/// Bitwise comparison of the weights two solutions produce when applied
/// to the case's graph: the "applied `WeightDelta`" invariant. Returns a
/// description of the first differing edge, if any.
fn applied_weights_differ(
    case: &FuzzCase,
    program: &kg_votes::VoteProgram,
    a: &SolveResult,
    b: &SolveResult,
) -> Option<String> {
    let mut ga = case.graph.clone();
    let mut gb = case.graph.clone();
    // tol = 0.0: write every proposed weight so the comparison sees the
    // raw solver output, not the change-detection threshold.
    let ra = program.apply_solution(&a.x, &mut ga, 0.0);
    let rb = program.apply_solution(&b.x, &mut gb, 0.0);
    match (ra, rb) {
        (Ok(_), Ok(_)) => {
            let da = GraphDoc::from_graph(&ga);
            let db = GraphDoc::from_graph(&gb);
            for (ea, eb) in da.edges.iter().zip(&db.edges) {
                if ea.2.to_bits() != eb.2.to_bits() {
                    return Some(format!("edge {}->{}: {} vs {}", ea.0, ea.1, ea.2, eb.2));
                }
            }
            None
        }
        (Err(e), Ok(_)) => Some(format!("direct solution rejected: {e}")),
        (Ok(_), Err(e)) => Some(format!("resilient solution rejected: {e}")),
        (Err(_), Err(_)) => None,
    }
}

/// Encodes `case` once and runs the full solver matrix plus the
/// fallback-chain invariance check, returning the first divergence found
/// (checks run in a fixed order: errors, feasibility, objective gap,
/// fallback invariance).
pub fn check_case(case: &FuzzCase, cfg: &FuzzConfig) -> CaseReport {
    // The explicit deviation-variable form is non-negotiable for the
    // matrix: it is the encoding with real constraints.
    let params = MultiParams {
        deviation_vars: true,
        ..cfg.params
    };
    let program = encode_multi(&case.graph, &case.votes, &cfg.encode, &params);
    if program.problem.n_vars() == 0 || program.problem.n_constraints() == 0 {
        return CaseReport {
            verdict: Verdict::Trivial,
            solves: 0,
        };
    }

    let mut solves = 0usize;
    let mut cells: Vec<(String, Result<SolveResult, String>)> = Vec::with_capacity(MATRIX.len());
    for (use_auglag, inner) in MATRIX {
        solves += 1;
        let label = format!(
            "{}+{}",
            if use_auglag { "auglag" } else { "penalty" },
            inner.as_str()
        );
        let run =
            run_solver(&program.problem, &cfg.solve, use_auglag, inner).map_err(|e| e.to_string());
        cells.push((label, run));
    }

    // A budget-truncated iterate carries no claim: comparing it against
    // converged solvers would report the budget, not a solver bug.
    if cells
        .iter()
        .any(|(_, r)| matches!(r, Ok(res) if res.reason == ConvergenceReason::TimeBudget))
    {
        return CaseReport {
            verdict: Verdict::Truncated,
            solves,
        };
    }

    // Check: error asymmetry. All-fail is consistent (a genuinely broken
    // encoding breaks every solver); one-sided failure is not.
    let ok_count = cells.iter().filter(|(_, r)| r.is_ok()).count();
    if ok_count != 0 && ok_count != cells.len() {
        let failed: Vec<String> = cells
            .iter()
            .filter_map(|(l, r)| r.as_ref().err().map(|e| format!("{l}: {e}")))
            .collect();
        return CaseReport {
            verdict: Verdict::Diverged(Divergence {
                kind: DivergenceKind::ErrorSplit,
                detail: failed.join("; "),
            }),
            solves,
        };
    }

    // Check (a): feasibility agreement with a hysteresis band. Non-finite
    // results count as maximally violated — a NaN iterate claims nothing.
    let claims: Vec<(&str, f64)> = cells
        .iter()
        .filter_map(|(l, r)| {
            r.as_ref().ok().map(|res| {
                let v = if finite(res) {
                    res.max_violation
                } else {
                    f64::INFINITY
                };
                (l.as_str(), v)
            })
        })
        .collect();
    let best = claims.iter().cloned().min_by(|a, b| a.1.total_cmp(&b.1));
    let worst = claims.iter().cloned().max_by(|a, b| a.1.total_cmp(&b.1));
    if let (Some((bl, bv)), Some((wl, wv))) = (best, worst) {
        if bv <= cfg.tol.feas_agree && wv >= cfg.tol.feas_split {
            return CaseReport {
                verdict: Verdict::Diverged(Divergence {
                    kind: DivergenceKind::FeasibilitySplit,
                    detail: format!(
                        "{bl} is feasible (max_violation {bv:.3e}) but {wl} is violated by {wv:.3e}"
                    ),
                }),
                solves,
            };
        }
    }

    // Check (b): objective gap among solvers that converged feasible.
    let converged: Vec<(&str, f64)> = cells
        .iter()
        .filter_map(|(l, r)| match r {
            Ok(res) if finite(res) && res.reason == ConvergenceReason::Feasible => {
                Some((l.as_str(), res.objective))
            }
            _ => None,
        })
        .collect();
    if converged.len() >= 2 {
        let lo = converged
            .iter()
            .cloned()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or(converged[0]);
        let hi = converged
            .iter()
            .cloned()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or(converged[0]);
        let bound = cfg.tol.obj_gap_abs + cfg.tol.obj_gap_rel * lo.1.abs();
        if hi.1 - lo.1 > bound {
            return CaseReport {
                verdict: Verdict::Diverged(Divergence {
                    kind: DivergenceKind::ObjectiveGap,
                    detail: format!(
                        "{} reached {:.6e} but {} stopped at {:.6e} (gap {:.3e} > bound {:.3e})",
                        lo.0,
                        lo.1,
                        hi.0,
                        hi.1,
                        hi.1 - lo.1,
                        bound
                    ),
                }),
                solves,
            };
        }
    }

    // Check (c): the PR 4 fallback chain must apply exactly the weights a
    // direct solve applies when the primary attempt succeeds. The direct
    // result is the matrix's (auglag, lbfgs) cell — the multi-vote
    // deviation pipeline's combination.
    let direct = cells
        .iter()
        .find(|(l, _)| l == "auglag+lbfgs")
        .and_then(|(_, r)| r.as_ref().ok())
        .filter(|res| finite(res));
    if let Some(direct) = direct {
        let resilient = run_solver_resilient(
            &program.problem,
            &cfg.solve,
            true,
            InnerOpt::Lbfgs,
            &RetryPolicy::default(),
        );
        solves += 1 + resilient.retries;
        if let Some(res) = &resilient.result {
            if let Some(diff) = applied_weights_differ(case, &program, direct, res) {
                return CaseReport {
                    verdict: Verdict::Diverged(Divergence {
                        kind: DivergenceKind::FallbackMismatch,
                        detail: format!(
                            "direct auglag+lbfgs vs resilient chain ({:?}): {diff}",
                            resilient.outcome
                        ),
                    }),
                    solves,
                };
            }
        }
    }

    CaseReport {
        verdict: Verdict::Agree,
        solves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_datasets::InstanceDistribution;

    #[test]
    fn clean_seeds_agree_or_are_trivial() {
        let cfg = FuzzConfig::default();
        for seed in 0..5 {
            let case = FuzzCase::from_seed(seed, &InstanceDistribution::default());
            let report = check_case(&case, &cfg);
            assert!(
                matches!(report.verdict, Verdict::Agree | Verdict::Trivial),
                "seed {seed}: unexpected verdict {:?}",
                report.verdict
            );
        }
    }

    #[test]
    fn empty_vote_batch_is_trivial() {
        let dist = InstanceDistribution::default();
        let mut case = FuzzCase::from_seed(0, &dist);
        case.votes.clear();
        let report = check_case(&case, &FuzzConfig::default());
        assert_eq!(report.verdict, Verdict::Trivial);
        assert_eq!(report.solves, 0);
    }
}
