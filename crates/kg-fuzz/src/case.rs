//! One fuzz case: a knowledge graph plus the vote batch under test.

use kg_datasets::{random_instance, InstanceDistribution};
use kg_graph::KnowledgeGraph;
use kg_votes::Vote;

/// A self-contained differential-fuzzing case.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The seed the case was derived from (0 for hand-built cases).
    pub seed: u64,
    /// The graph whose weights the votes optimize.
    pub graph: KnowledgeGraph,
    /// The vote batch.
    pub votes: Vec<Vote>,
}

impl FuzzCase {
    /// Derives the case for `seed` from the instance distribution.
    /// Deterministic: same seed + same distribution ⇒ identical case.
    pub fn from_seed(seed: u64, dist: &InstanceDistribution) -> Self {
        let instance = random_instance(seed, dist);
        FuzzCase {
            seed,
            graph: instance.graph,
            votes: instance.votes.votes,
        }
    }

    /// Total answers across all votes (a shrink progress measure).
    pub fn total_answers(&self) -> usize {
        self.votes.iter().map(|v| v.answers.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::io::GraphDoc;

    #[test]
    fn from_seed_is_deterministic() {
        let dist = InstanceDistribution::default();
        let a = FuzzCase::from_seed(7, &dist);
        let b = FuzzCase::from_seed(7, &dist);
        assert_eq!(a.votes, b.votes);
        let da = GraphDoc::from_graph(&a.graph);
        let db = GraphDoc::from_graph(&b.graph);
        assert_eq!(da.labels, db.labels);
        assert_eq!(da.edges.len(), db.edges.len());
        for (ea, eb) in da.edges.iter().zip(&db.edges) {
            assert_eq!(ea.0, eb.0);
            assert_eq!(ea.1, eb.1);
            assert_eq!(ea.2.to_bits(), eb.2.to_bits());
        }
    }

    #[test]
    fn seeds_vary_the_instance() {
        let dist = InstanceDistribution::default();
        let shapes: Vec<(usize, usize)> = (0..8)
            .map(|s| {
                let c = FuzzCase::from_seed(s, &dist);
                (c.graph.node_count(), c.votes.len())
            })
            .collect();
        assert!(
            shapes.windows(2).any(|w| w[0] != w[1]),
            "8 consecutive seeds produced identical shapes: {shapes:?}"
        );
    }
}
