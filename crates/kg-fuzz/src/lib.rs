//! Deterministic differential fuzzing for the `sgp` solver matrix.
//!
//! PR 4's retry/fallback chain made solver *disagreement* a live
//! correctness risk: a round that falls back from lbfgs to adam to
//! projgrad silently trusts that every optimizer agrees on feasibility
//! and lands within a bounded objective gap on the paper's signomial
//! vote-encoding problems (Eq. 13–20). Following the differential-fuzzing
//! shape of zkFuzz (cross-check independent implementations of the same
//! semantics; see ROADMAP item 5a), this crate:
//!
//! 1. derives a random knowledge graph + vote batch from a seed
//!    ([`FuzzCase::from_seed`], reusing the kg-datasets generators);
//! 2. encodes it once through the kg-votes pipeline
//!    ([`kg_votes::encode_multi`], explicit deviation-variable form so
//!    real constraints exist) and runs the full
//!    {penalty, auglag} × {adam, projgrad, lbfgs} matrix
//!    ([`check_case`]);
//! 3. cross-checks (a) feasibility agreement, (b) objective-gap bounds
//!    between converged solvers, and (c) invariance of the applied
//!    weights under the PR 4 fallback chain versus a direct solve;
//! 4. shrinks any divergence to a minimal repro ([`shrink`]) — drop
//!    votes, drop competitor answers, drop edges, round weights —
//!    re-verifying the divergence survives every step;
//! 5. serializes the result as a self-contained `.repro.json`
//!    ([`ReproFile`]) that `votekg fuzz --replay` re-executes
//!    ([`replay`]).
//!
//! Everything is deterministic: instances derive from their seed, the
//! solvers are RNG-free, and replays run without wall-clock budgets, so
//! the same repro file always reproduces the same verdict. The harness
//! proves itself by detecting a deliberately planted solver bug
//! ([`sgp::FaultAction::SkewSolution`] behind an inner-optimizer-filtered
//! fault rule) and shrinking it to a ≤3-vote case — see the crate tests
//! and `tests/fuzz_differential.rs` at the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod config;
pub mod driver;
pub mod matrix;
pub mod repro;
pub mod shrink;

pub use case::FuzzCase;
pub use config::{FuzzConfig, Tolerances};
pub use driver::{run_campaign, CampaignOptions, CampaignSummary, DivergenceRecord};
pub use matrix::{check_case, CaseReport, Divergence, DivergenceKind, Verdict, MATRIX};
pub use repro::{replay, ReplayReport, ReproError, ReproFault, ReproFile, REPRO_SCHEMA};
pub use shrink::{shrink, ShrinkOutcome};
