//! Self-contained `.repro.json` files and their replay.
//!
//! A repro file carries everything needed to re-run one divergence with
//! zero ambient context: the (shrunk) graph, the votes, the full solver
//! and tolerance configuration, and — when the divergence was planted by
//! the test-only fault hook — the fault itself, so the replay installs
//! the same bug before solving. Replays clear the wall-clock budget:
//! every other input is deterministic, so two consecutive replays of the
//! same file always produce the same verdict.

use crate::case::FuzzCase;
use crate::config::{FuzzConfig, Tolerances};
use crate::matrix::{check_case, CaseReport};
use kg_datasets::InstanceDistribution;
use kg_graph::io::GraphDoc;
use kg_votes::{EncodeOptions, MultiParams, Vote};
use serde::{Deserialize, Serialize};
use sgp::{FaultAction, FaultPlan, SolveOptions};
use std::fmt;
use std::path::Path;

/// Schema tag written into every repro file.
pub const REPRO_SCHEMA: &str = "votekg.fuzz.repro/v1";

/// A test-only fault that was active when the divergence was found: the
/// replay re-installs it so planted bugs reproduce. `inner` names the
/// targeted inner optimizer; `skew` is the
/// [`sgp::FaultAction::SkewSolution`] fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproFault {
    /// Inner-optimizer label the fault rule filters on.
    pub inner: String,
    /// Box-width fraction every solution coordinate is shifted by.
    pub skew: f64,
}

impl ReproFault {
    /// Builds the fault plan this record describes.
    pub fn plan(&self) -> Result<FaultPlan, ReproError> {
        let inner: &'static str = match self.inner.as_str() {
            "adam" => "adam",
            "projgrad" => "projgrad",
            "lbfgs" => "lbfgs",
            other => return Err(ReproError::UnknownInner(other.to_string())),
        };
        Ok(FaultPlan::new().for_inner(inner, FaultAction::SkewSolution(self.skew)))
    }
}

/// A self-contained, replayable divergence record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReproFile {
    /// Schema tag ([`REPRO_SCHEMA`]).
    pub schema: String,
    /// The seed the original case derived from.
    pub seed: u64,
    /// The (shrunk) graph.
    pub graph: GraphDoc,
    /// The (shrunk) vote batch.
    pub votes: Vec<Vote>,
    /// Vote-encoding options used by the matrix run.
    pub encode: EncodeOptions,
    /// Multi-vote objective parameters.
    pub params: MultiParams,
    /// Solver options (the replay ignores `time_budget`).
    pub solve: SolveOptions,
    /// Divergence tolerances.
    pub tol: Tolerances,
    /// Fault active when the divergence was found, if any.
    pub fault: Option<ReproFault>,
    /// Verdict label observed when the file was written
    /// ([`crate::Verdict::label`]).
    pub verdict: String,
    /// Accepted shrink steps that produced this case.
    pub shrink_steps: usize,
    /// Chrome trace-event document of the diverging (shrunk) solve,
    /// captured by the campaign when telemetry was enabled — load it in
    /// a trace viewer to see where the divergent run spent its time.
    /// `None` (serialized as `null`, absent in older files) when the
    /// campaign ran without telemetry.
    pub trace: Option<serde::Value>,
}

/// Errors reading, parsing, or replaying a repro file.
#[derive(Debug, Clone, PartialEq)]
pub enum ReproError {
    /// Filesystem failure.
    Io(String),
    /// The file is not valid repro JSON.
    Parse(String),
    /// The file's schema tag is not [`REPRO_SCHEMA`].
    Schema(String),
    /// The embedded graph document does not rebuild.
    Graph(String),
    /// The fault record names an unknown inner optimizer.
    UnknownInner(String),
}

impl fmt::Display for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReproError::Io(e) => write!(f, "repro io error: {e}"),
            ReproError::Parse(e) => write!(f, "repro parse error: {e}"),
            ReproError::Schema(s) => write!(f, "unsupported repro schema {s:?}"),
            ReproError::Graph(e) => write!(f, "repro graph does not rebuild: {e}"),
            ReproError::UnknownInner(i) => write!(f, "unknown inner optimizer {i:?}"),
        }
    }
}

impl std::error::Error for ReproError {}

impl ReproFile {
    /// Records `case` (typically post-shrink) with its configuration and
    /// verdict label.
    pub fn from_case(
        case: &FuzzCase,
        cfg: &FuzzConfig,
        fault: Option<ReproFault>,
        verdict: &str,
        shrink_steps: usize,
    ) -> Self {
        ReproFile {
            schema: REPRO_SCHEMA.to_string(),
            seed: case.seed,
            graph: GraphDoc::from_graph(&case.graph),
            votes: case.votes.clone(),
            encode: cfg.encode,
            params: cfg.params,
            solve: cfg.solve.clone(),
            tol: cfg.tol,
            fault,
            verdict: verdict.to_string(),
            shrink_steps,
            trace: None,
        }
    }

    /// Re-runs this repro's case once with the flight recorder on and
    /// embeds the resulting Chrome trace document. Only the events of
    /// the re-run itself are kept (the rings' prior contents are cut by
    /// sequence number, not reset, so ambient counters survive). The
    /// re-run executes under the *ambient* fault plan — at the campaign
    /// call site the caller's guard is still installed, so planted bugs
    /// trace identically. No-op when telemetry is disabled or the case
    /// does not rebuild.
    pub fn capture_trace(&mut self) {
        if !kg_telemetry::is_enabled() {
            return;
        }
        let Ok(case) = self.to_case() else { return };
        let cfg = self.to_config();
        let was_recording = kg_telemetry::is_recording();
        kg_telemetry::start_recording();
        let cut: std::collections::HashMap<u64, u64> = kg_telemetry::capture_timelines()
            .iter()
            .map(|t| (t.thread, t.events.last().map(|e| e.seq + 1).unwrap_or(0)))
            .collect();
        let _ = check_case(&case, &cfg);
        if !was_recording {
            kg_telemetry::stop_recording();
        }
        let timelines: Vec<_> = kg_telemetry::capture_timelines()
            .into_iter()
            .map(|mut t| {
                let from = cut.get(&t.thread).copied().unwrap_or(0);
                t.events.retain(|e| e.seq >= from);
                t
            })
            .filter(|t| !t.events.is_empty())
            .collect();
        let json = kg_telemetry::chrome_trace_json_from(
            &timelines,
            &[
                ("fuzz_seed", self.seed.to_string()),
                ("fuzz_verdict", format!("{:?}", self.verdict)),
            ],
        );
        self.trace = serde_json::from_str(&json).ok();
    }

    /// Rebuilds the executable case.
    pub fn to_case(&self) -> Result<FuzzCase, ReproError> {
        let graph = self
            .graph
            .clone()
            .into_graph()
            .map_err(|e| ReproError::Graph(e.to_string()))?;
        Ok(FuzzCase {
            seed: self.seed,
            graph,
            votes: self.votes.clone(),
        })
    }

    /// The configuration the replay runs under: the recorded options with
    /// the wall-clock budget cleared (replays must be deterministic).
    pub fn to_config(&self) -> FuzzConfig {
        FuzzConfig {
            dist: InstanceDistribution::default(),
            encode: self.encode,
            params: self.params,
            solve: SolveOptions {
                time_budget: None,
                ..self.solve.clone()
            },
            tol: self.tol,
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| {
            // serde_json on an in-memory value cannot fail for this type;
            // keep the path panic-free anyway.
            format!("{{\"error\":\"{e}\"}}")
        })
    }

    /// Parses a repro file from JSON, validating the schema tag.
    pub fn from_json(json: &str) -> Result<Self, ReproError> {
        let repro: ReproFile =
            serde_json::from_str(json).map_err(|e| ReproError::Parse(e.to_string()))?;
        if repro.schema != REPRO_SCHEMA {
            return Err(ReproError::Schema(repro.schema));
        }
        Ok(repro)
    }

    /// Writes the file to `path`.
    pub fn write(&self, path: &Path) -> Result<(), ReproError> {
        std::fs::write(path, self.to_json()).map_err(|e| ReproError::Io(e.to_string()))
    }

    /// Reads and validates a repro file from `path`.
    pub fn read(path: &Path) -> Result<Self, ReproError> {
        let json = std::fs::read_to_string(path).map_err(|e| ReproError::Io(e.to_string()))?;
        Self::from_json(&json)
    }
}

/// Outcome of replaying a repro file.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Verdict label of the re-run ([`crate::Verdict::label`]).
    pub verdict: String,
    /// Verdict label stored in the file.
    pub stored_verdict: String,
    /// True when the re-run reproduced the stored verdict.
    pub reproduced: bool,
    /// Solver invocations the re-run performed.
    pub solves: usize,
}

/// Re-executes a repro file: rebuilds the case, re-installs the recorded
/// fault (if any), runs the solver matrix, and compares the verdict with
/// the stored one. Emits `votekg.fuzz.replay.*` telemetry.
pub fn replay(repro: &ReproFile) -> Result<ReplayReport, ReproError> {
    let case = repro.to_case()?;
    let cfg = repro.to_config();
    let report: CaseReport = match &repro.fault {
        Some(fault) => {
            let _guard = sgp::fault::inject(fault.plan()?);
            check_case(&case, &cfg)
        }
        None => check_case(&case, &cfg),
    };
    let verdict = report.verdict.label().to_string();
    let reproduced = verdict == repro.verdict;
    if kg_telemetry::is_enabled() {
        kg_telemetry::counter("votekg.fuzz.replays").incr();
        kg_telemetry::counter_labeled("votekg.fuzz.replay.verdicts", &[("verdict", &verdict)])
            .incr();
        kg_telemetry::counter("votekg.fuzz.solves").add(report.solves as u64);
        if !reproduced {
            kg_telemetry::counter("votekg.fuzz.replay.mismatches").incr();
        }
    }
    Ok(ReplayReport {
        verdict,
        stored_verdict: repro.verdict.clone(),
        reproduced,
        solves: report.solves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_preserves_everything() {
        let case = FuzzCase::from_seed(3, &InstanceDistribution::default());
        let cfg = FuzzConfig::default();
        let repro = ReproFile::from_case(
            &case,
            &cfg,
            Some(ReproFault {
                inner: "lbfgs".to_string(),
                skew: 0.35,
            }),
            "feasibility_split",
            4,
        );
        let back = ReproFile::from_json(&repro.to_json()).expect("roundtrip");
        assert_eq!(back.seed, 3);
        assert_eq!(back.verdict, "feasibility_split");
        assert_eq!(back.shrink_steps, 4);
        assert_eq!(back.fault, repro.fault);
        assert_eq!(back.votes, repro.votes);
        assert_eq!(back.graph.edges.len(), repro.graph.edges.len());
        let rebuilt = back.to_case().expect("graph rebuilds");
        assert_eq!(rebuilt.graph.edge_count(), case.graph.edge_count());
    }

    #[test]
    fn bad_schema_is_rejected() {
        let case = FuzzCase::from_seed(3, &InstanceDistribution::default());
        let mut repro = ReproFile::from_case(&case, &FuzzConfig::default(), None, "agree", 0);
        repro.schema = "votekg.fuzz.repro/v0".to_string();
        assert!(matches!(
            ReproFile::from_json(&repro.to_json()),
            Err(ReproError::Schema(_))
        ));
    }

    #[test]
    fn unknown_inner_is_rejected() {
        let fault = ReproFault {
            inner: "newton".to_string(),
            skew: 0.1,
        };
        assert!(matches!(fault.plan(), Err(ReproError::UnknownInner(_))));
    }
}
