//! Tolerance calibration: run the solver matrix over a seed range with
//! no divergence checks and print the distribution of the quantities the
//! cross-checks bound. Used to pick the `Tolerances` defaults; see
//! DESIGN.md "Testing & fuzzing".
//!
//! Usage: `cargo run -p kg-fuzz --example calibrate [-- N_SEEDS]`

use kg_fuzz::{FuzzCase, FuzzConfig};
use kg_votes::{encode_multi, run_solver, MultiParams};
use sgp::ConvergenceReason;

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let cfg = FuzzConfig::default();
    let mut gaps: Vec<(u64, f64, f64)> = Vec::new(); // (seed, abs gap, rel gap)
    let mut worst_viol: Vec<(u64, f64)> = Vec::new(); // max violation among feasible-claiming runs
    let mut trivial = 0usize;
    for seed in 0..n {
        let case = FuzzCase::from_seed(seed, &cfg.dist);
        let params = MultiParams {
            deviation_vars: true,
            ..cfg.params
        };
        let program = encode_multi(&case.graph, &case.votes, &cfg.encode, &params);
        if program.problem.n_vars() == 0 || program.problem.n_constraints() == 0 {
            trivial += 1;
            continue;
        }
        let mut objs: Vec<f64> = Vec::new();
        let mut max_v = 0f64;
        for (use_auglag, inner) in kg_fuzz::MATRIX {
            let Ok(res) = run_solver(&program.problem, &cfg.solve, use_auglag, inner) else {
                continue;
            };
            if !res.objective.is_finite() {
                continue;
            }
            max_v = max_v.max(res.max_violation);
            if res.reason == ConvergenceReason::Feasible {
                objs.push(res.objective);
            }
        }
        worst_viol.push((seed, max_v));
        if objs.len() >= 2 {
            let lo = objs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = objs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            gaps.push((seed, hi - lo, (hi - lo) / lo.abs().max(1e-12)));
        }
    }
    gaps.sort_by(|a, b| a.1.total_cmp(&b.1));
    worst_viol.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!(
        "{} seeds, {trivial} trivial, {} with >=2 feasible cells",
        n,
        gaps.len()
    );
    let pick = |v: &[(u64, f64)], q: f64| v[((v.len() - 1) as f64 * q) as usize];
    if !worst_viol.is_empty() {
        let p50 = pick(&worst_viol, 0.5);
        let p99 = pick(&worst_viol, 0.99);
        let max = worst_viol[worst_viol.len() - 1];
        println!(
            "max_violation: p50 {:.3e}  p99 {:.3e}  max {:.3e} (seed {})",
            p50.1, p99.1, max.1, max.0
        );
    }
    if !gaps.is_empty() {
        let abs: Vec<(u64, f64)> = gaps.iter().map(|g| (g.0, g.1)).collect();
        let mut rel: Vec<(u64, f64)> = gaps.iter().map(|g| (g.0, g.2)).collect();
        rel.sort_by(|a, b| a.1.total_cmp(&b.1));
        let amax = abs[abs.len() - 1];
        let rmax = rel[rel.len() - 1];
        println!(
            "obj gap abs: p50 {:.3e}  p99 {:.3e}  max {:.3e} (seed {})",
            pick(&abs, 0.5).1,
            pick(&abs, 0.99).1,
            amax.1,
            amax.0
        );
        println!(
            "obj gap rel: p50 {:.3e}  p99 {:.3e}  max {:.3e} (seed {})",
            pick(&rel, 0.5).1,
            pick(&rel, 0.99).1,
            rmax.1,
            rmax.0
        );
    }
}
