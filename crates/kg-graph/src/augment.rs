//! Augmentation of an entity graph with query and answer nodes
//! (Section III-A of the paper).
//!
//! The paper evaluates similarity on an *augmented* graph: the entity
//! graph `G` plus a set of query nodes `Q` and answer nodes `A`, where
//! `Q ∩ V = ∅` and `A ∩ V = ∅`. A query node links **to** the entities it
//! mentions with weight `w(v_q, v_i) = #(q, v_i) / Σ_j #(q, v_j)`; answer
//! nodes are linked **from** the entities they mention with weights derived
//! the same way.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{KnowledgeGraph, NodeKind};
use crate::ids::NodeId;

/// Declarative description of the query/answer nodes to graft onto a base
/// entity graph.
#[derive(Debug, Default, Clone)]
pub struct AugmentSpec {
    queries: Vec<(String, Vec<(NodeId, f64)>)>,
    answers: Vec<(String, Vec<(NodeId, f64)>)>,
}

impl AugmentSpec {
    /// Creates an empty spec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a query node. `entity_counts` holds `(entity, #(q, v_i))`
    /// pairs — raw occurrence counts of each entity in the query text; the
    /// augmentation normalizes them into edge weights. Returns the index of
    /// the query within the spec.
    pub fn add_query(
        &mut self,
        label: impl Into<String>,
        entity_counts: Vec<(NodeId, f64)>,
    ) -> usize {
        self.queries.push((label.into(), entity_counts));
        self.queries.len() - 1
    }

    /// Registers an answer node, linked *from* the mentioned entities.
    /// Returns the index of the answer within the spec.
    pub fn add_answer(
        &mut self,
        label: impl Into<String>,
        entity_counts: Vec<(NodeId, f64)>,
    ) -> usize {
        self.answers.push((label.into(), entity_counts));
        self.answers.len() - 1
    }

    /// Number of query nodes registered.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Number of answer nodes registered.
    pub fn answer_count(&self) -> usize {
        self.answers.len()
    }
}

/// Result of augmenting a base graph: the combined graph plus the ids of
/// the grafted query and answer nodes.
///
/// Base node and edge ids are preserved: entity nodes keep their ids, base
/// edges keep their [`crate::EdgeId`]s (they are re-inserted first, in id
/// order), and new augmentation edges receive ids `>= base_edge_count`.
/// The optimizer relies on this to map weight variables back onto the base
/// graph.
#[derive(Debug, Clone)]
pub struct Augmented {
    /// The augmented knowledge graph.
    pub graph: KnowledgeGraph,
    /// Ids of the query nodes, in spec order.
    pub query_nodes: Vec<NodeId>,
    /// Ids of the answer nodes, in spec order.
    pub answer_nodes: Vec<NodeId>,
    /// Number of edges inherited from the base graph; augmentation edges
    /// have ids `base_edge_count..`.
    pub base_edge_count: usize,
}

impl Augmented {
    /// Grafts the spec's query and answer nodes onto `base`.
    ///
    /// Errors if a referenced entity id is out of range or a produced
    /// weight is invalid. Queries or answers whose total entity count is
    /// zero produce no edges (they become isolated nodes), mirroring a
    /// question that mentions no known entity.
    pub fn build(base: &KnowledgeGraph, spec: &AugmentSpec) -> Result<Augmented, GraphError> {
        let mut b = GraphBuilder::with_capacity(
            base.node_count() + spec.queries.len() + spec.answers.len(),
            base.edge_count()
                + spec.queries.iter().map(|(_, c)| c.len()).sum::<usize>()
                + spec.answers.iter().map(|(_, c)| c.len()).sum::<usize>(),
        );
        // Re-create base nodes and edges in id order so ids are stable.
        for v in base.nodes() {
            b.add_node(base.label(v), base.kind(v));
        }
        for e in base.edges() {
            b.add_edge(e.from, e.to, e.weight)?;
        }

        let mut query_nodes = Vec::with_capacity(spec.queries.len());
        for (label, counts) in &spec.queries {
            let q = b.add_node(label.clone(), NodeKind::Query);
            query_nodes.push(q);
            let total: f64 = counts.iter().map(|(_, c)| *c).sum();
            if total > 0.0 {
                for &(entity, count) in counts {
                    check_entity(base, entity)?;
                    if count > 0.0 {
                        b.add_or_accumulate_edge(q, entity, count / total)?;
                    }
                }
            }
        }

        let mut answer_nodes = Vec::with_capacity(spec.answers.len());
        for (label, counts) in &spec.answers {
            let a = b.add_node(label.clone(), NodeKind::Answer);
            answer_nodes.push(a);
            let total: f64 = counts.iter().map(|(_, c)| *c).sum();
            if total > 0.0 {
                for &(entity, count) in counts {
                    check_entity(base, entity)?;
                    if count > 0.0 {
                        b.add_or_accumulate_edge(entity, a, count / total)?;
                    }
                }
            }
        }

        Ok(Augmented {
            graph: b.build(),
            query_nodes,
            answer_nodes,
            base_edge_count: base.edge_count(),
        })
    }
}

fn check_entity(base: &KnowledgeGraph, entity: NodeId) -> Result<(), GraphError> {
    if entity.index() >= base.node_count() {
        return Err(GraphError::NodeOutOfRange {
            node: entity,
            node_count: base.node_count(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let stuck = b.add_node("stuck", NodeKind::Entity);
        let outlook = b.add_node("outlook", NodeKind::Entity);
        let email = b.add_node("email", NodeKind::Entity);
        b.add_edge(stuck, outlook, 0.5).unwrap();
        b.add_edge(outlook, email, 0.4).unwrap();
        b.add_edge(email, outlook, 0.6).unwrap();
        b.build()
    }

    #[test]
    fn query_weights_follow_occurrence_frequency() {
        let g = base();
        let mut spec = AugmentSpec::new();
        // Paper example: three entities each occurring once => weight 0.33.
        spec.add_query(
            "q1",
            vec![(NodeId(0), 1.0), (NodeId(1), 1.0), (NodeId(2), 1.0)],
        );
        let aug = Augmented::build(&g, &spec).unwrap();
        let q = aug.query_nodes[0];
        assert_eq!(aug.graph.kind(q), NodeKind::Query);
        for e in aug.graph.out_edges(q) {
            assert!((e.weight - 1.0 / 3.0).abs() < 1e-12);
        }
        assert_eq!(aug.graph.out_degree(q), 3);
    }

    #[test]
    fn answer_edges_point_from_entities() {
        let g = base();
        let mut spec = AugmentSpec::new();
        spec.add_answer("a1", vec![(NodeId(1), 3.0), (NodeId(2), 1.0)]);
        let aug = Augmented::build(&g, &spec).unwrap();
        let a = aug.answer_nodes[0];
        assert_eq!(aug.graph.kind(a), NodeKind::Answer);
        assert_eq!(aug.graph.in_degree(a), 2);
        assert_eq!(aug.graph.out_degree(a), 0);
        assert!((aug.graph.weight_between(NodeId(1), a) - 0.75).abs() < 1e-12);
        assert!((aug.graph.weight_between(NodeId(2), a) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn base_ids_are_preserved() {
        let g = base();
        let mut spec = AugmentSpec::new();
        spec.add_query("q1", vec![(NodeId(0), 1.0)]);
        spec.add_answer("a1", vec![(NodeId(2), 1.0)]);
        let aug = Augmented::build(&g, &spec).unwrap();
        assert_eq!(aug.base_edge_count, 3);
        for e in g.edges() {
            let (f, t) = aug.graph.endpoints(e.edge);
            assert_eq!((f, t), (e.from, e.to));
            assert_eq!(aug.graph.weight(e.edge), e.weight);
        }
        // New nodes appended after base nodes.
        assert!(aug.query_nodes[0].index() >= g.node_count());
        assert!(aug.answer_nodes[0].index() >= g.node_count());
    }

    #[test]
    fn zero_count_query_becomes_isolated() {
        let g = base();
        let mut spec = AugmentSpec::new();
        spec.add_query("q-empty", vec![]);
        let aug = Augmented::build(&g, &spec).unwrap();
        assert_eq!(aug.graph.out_degree(aug.query_nodes[0]), 0);
    }

    #[test]
    fn out_of_range_entity_errors() {
        let g = base();
        let mut spec = AugmentSpec::new();
        spec.add_query("q", vec![(NodeId(99), 1.0)]);
        assert!(Augmented::build(&g, &spec).is_err());
    }

    #[test]
    fn repeated_entity_mentions_accumulate() {
        let g = base();
        let mut spec = AugmentSpec::new();
        spec.add_query(
            "q",
            vec![(NodeId(0), 1.0), (NodeId(0), 1.0), (NodeId(1), 2.0)],
        );
        let aug = Augmented::build(&g, &spec).unwrap();
        let q = aug.query_nodes[0];
        assert_eq!(aug.graph.out_degree(q), 2);
        assert!((aug.graph.weight_between(q, NodeId(0)) - 0.5).abs() < 1e-12);
        assert!((aug.graph.weight_between(q, NodeId(1)) - 0.5).abs() < 1e-12);
    }
}
