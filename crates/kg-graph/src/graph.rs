//! The core [`KnowledgeGraph`] type: immutable CSR topology with mutable
//! edge weights.

use crate::error::GraphError;
use crate::ids::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Role of a node in the *augmented* knowledge graph of the paper
/// (Section III-A): entity nodes form `V`; query and answer nodes are
/// linked into the graph but `Q ∩ V = ∅` and `A ∩ V = ∅`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An entity of the knowledge graph proper.
    Entity,
    /// A query node `v_q` attached for answering a question.
    Query,
    /// An answer node `v_a` (e.g. a HELP document).
    Answer,
}

/// A resolved view of one directed edge: endpoints, id and current weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// Edge identifier (index into the weight vector).
    pub edge: EdgeId,
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Current weight `w(from, to)`.
    pub weight: f64,
}

/// A weighted directed knowledge graph `G = (V, E, W)`.
///
/// Topology (nodes, edges) is fixed at construction time by
/// [`crate::GraphBuilder`]; edge weights are mutable because the voting
/// framework optimizes them. Both adjacency directions are stored in CSR
/// form; weights live in one dense vector indexed by [`EdgeId`].
#[derive(Debug, Clone)]
pub struct KnowledgeGraph {
    pub(crate) labels: Vec<String>,
    pub(crate) kinds: Vec<NodeKind>,
    // Out-direction CSR.
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_targets: Vec<NodeId>,
    pub(crate) out_edge_ids: Vec<EdgeId>,
    // Slot-aligned copy of the weights, parallel to `out_targets`, so the
    // phi kernel walks one contiguous row per source instead of chasing
    // `weights[edge_id]` through the id indirection. Kept coherent with
    // `weights` by `write_weight` (the single mutation funnel).
    pub(crate) out_weights: Vec<f64>,
    // EdgeId -> slot in the out-CSR, for updating `out_weights` on writes.
    pub(crate) edge_out_slot: Vec<u32>,
    // In-direction CSR.
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_sources: Vec<NodeId>,
    pub(crate) in_edge_ids: Vec<EdgeId>,
    // Per-edge data.
    pub(crate) edge_from: Vec<NodeId>,
    pub(crate) edge_to: Vec<NodeId>,
    pub(crate) weights: Vec<f64>,
    // (from, to) -> edge lookup.
    pub(crate) edge_index: HashMap<(u32, u32), EdgeId>,
    // label -> node lookup.
    pub(crate) label_index: HashMap<String, NodeId>,
    // Monotonic weight-mutation counter (0 = as built). Every effective
    // weight change bumps it by one and stamps the edge in `last_changed`,
    // so callers can ask "what moved since version v?" in O(|E|) with no
    // unbounded changelog.
    pub(crate) version: u64,
    pub(crate) last_changed: Vec<u64>,
}

impl KnowledgeGraph {
    /// Number of nodes (entities, queries and answers together).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.weights.len()
    }

    /// All node ids, in dense order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Node ids of the given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> impl Iterator<Item = NodeId> + '_ {
        self.kinds
            .iter()
            .enumerate()
            .filter(move |(_, k)| **k == kind)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// The label of a node.
    pub fn label(&self, node: NodeId) -> &str {
        &self.labels[node.index()]
    }

    /// The kind (entity / query / answer) of a node.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.index()]
    }

    /// Look a node up by its label. Labels are unique per graph.
    pub fn find_node(&self, label: &str) -> Option<NodeId> {
        self.label_index.get(label).copied()
    }

    /// Returns true if `node` is a valid id for this graph.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        node.index() < self.node_count()
    }

    /// Validates a node id.
    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if self.contains(node) {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node,
                node_count: self.node_count(),
            })
        }
    }

    /// Out-degree of a node.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        let i = node.index();
        (self.out_offsets[i + 1] - self.out_offsets[i]) as usize
    }

    /// In-degree of a node.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        let i = node.index();
        (self.in_offsets[i + 1] - self.in_offsets[i]) as usize
    }

    /// Iterate the out-edges of `node` as [`EdgeRef`]s.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        let i = node.index();
        let lo = self.out_offsets[i] as usize;
        let hi = self.out_offsets[i + 1] as usize;
        (lo..hi).map(move |slot| {
            let edge = self.out_edge_ids[slot];
            EdgeRef {
                edge,
                from: node,
                to: self.out_targets[slot],
                weight: self.weights[edge.index()],
            }
        })
    }

    /// The out-adjacency row of `node` as two slot-aligned slices:
    /// targets and the corresponding current weights, sorted by target id.
    /// This is the phi kernel's data layout — one contiguous scan per
    /// frontier node, no per-edge id indirection. The weight values are
    /// identical (bitwise) to reading [`Self::weight`] per edge.
    #[inline]
    pub fn out_row(&self, node: NodeId) -> (&[NodeId], &[f64]) {
        let i = node.index();
        let lo = self.out_offsets[i] as usize;
        let hi = self.out_offsets[i + 1] as usize;
        (&self.out_targets[lo..hi], &self.out_weights[lo..hi])
    }

    /// The in-adjacency row of `node`: sources and the connecting edge
    /// ids, sorted by source id. Used by the delta-repair path to gather
    /// a node's incoming contributions without building [`EdgeRef`]s.
    #[inline]
    pub fn in_row(&self, node: NodeId) -> (&[NodeId], &[EdgeId]) {
        let i = node.index();
        let lo = self.in_offsets[i] as usize;
        let hi = self.in_offsets[i + 1] as usize;
        (&self.in_sources[lo..hi], &self.in_edge_ids[lo..hi])
    }

    /// Iterate the in-edges of `node` as [`EdgeRef`]s.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        let i = node.index();
        let lo = self.in_offsets[i] as usize;
        let hi = self.in_offsets[i + 1] as usize;
        (lo..hi).map(move |slot| {
            let edge = self.in_edge_ids[slot];
            EdgeRef {
                edge,
                from: self.in_sources[slot],
                to: node,
                weight: self.weights[edge.index()],
            }
        })
    }

    /// Iterate over every edge in id order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        (0..self.edge_count() as u32).map(move |e| {
            let edge = EdgeId(e);
            EdgeRef {
                edge,
                from: self.edge_from[e as usize],
                to: self.edge_to[e as usize],
                weight: self.weights[e as usize],
            }
        })
    }

    /// Look up the edge `from -> to`, if present.
    pub fn edge_between(&self, from: NodeId, to: NodeId) -> Option<EdgeId> {
        self.edge_index.get(&(from.0, to.0)).copied()
    }

    /// Endpoints `(from, to)` of an edge.
    #[inline]
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        (self.edge_from[edge.index()], self.edge_to[edge.index()])
    }

    /// Current weight of an edge.
    #[inline]
    pub fn weight(&self, edge: EdgeId) -> f64 {
        self.weights[edge.index()]
    }

    /// Weight of the edge `from -> to`; `0.0` when the edge is absent
    /// (matching the paper's convention that missing paths contribute
    /// nothing to the extended inverse P-distance).
    pub fn weight_between(&self, from: NodeId, to: NodeId) -> f64 {
        self.edge_between(from, to)
            .map_or(0.0, |e| self.weights[e.index()])
    }

    /// Set the weight of an edge. Weights must be finite and non-negative.
    /// An effective change (the stored value actually moves) bumps
    /// [`Self::version`] and stamps the edge for [`Self::changes_since`];
    /// writing the current value back is free.
    pub fn set_weight(&mut self, edge: EdgeId, weight: f64) -> Result<(), GraphError> {
        if !weight.is_finite() || weight < 0.0 {
            let (from, to) = self.endpoints(edge);
            return Err(GraphError::InvalidWeight { from, to, weight });
        }
        if self.weights[edge.index()] != weight {
            self.write_weight(edge, weight);
            self.mark_changed(edge);
        }
        Ok(())
    }

    /// Stores a weight into both the id-indexed vector and its
    /// slot-aligned out-CSR mirror. Every weight mutation must go through
    /// here so the two views cannot drift.
    pub(crate) fn write_weight(&mut self, edge: EdgeId, weight: f64) {
        self.weights[edge.index()] = weight;
        self.out_weights[self.edge_out_slot[edge.index()] as usize] = weight;
    }

    /// Stamps `edge` as changed at a freshly bumped version.
    pub(crate) fn mark_changed(&mut self, edge: EdgeId) {
        self.version += 1;
        self.last_changed[edge.index()] = self.version;
    }

    /// Monotonic counter of effective weight mutations. `0` for a freshly
    /// built (or deserialized) graph; bumped by [`Self::set_weight`],
    /// normalization and snapshot restore. Cloning preserves it, so a
    /// clone continues the original's version lineage.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Advances the version counter to `v` without touching any weight.
    ///
    /// This exists for point-in-time recovery: WAL replay applies the
    /// recorded weight values through [`Self::set_weight`], which bumps
    /// the counter once per *changed* edge — fewer bumps than the
    /// writing process performed when an edge moved several times
    /// between commits (or when replay lands on weights the graph
    /// already has). Fast-forwarding re-aligns the recovered graph with
    /// the version the WAL commit recorded, so subsequent appends
    /// continue the same lineage.
    ///
    /// # Panics
    /// Panics if `v` is older than the current version — rewinding
    /// would break the monotonicity [`Self::changes_since`] callers
    /// rely on.
    pub fn fast_forward_version(&mut self, v: u64) {
        assert!(
            v >= self.version,
            "cannot rewind graph version {} to {v}",
            self.version
        );
        self.version = v;
    }

    /// Read-only access to the full weight vector, indexed by [`EdgeId`].
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Sum of out-edge weights of a node.
    pub fn out_weight_sum(&self, node: NodeId) -> f64 {
        self.out_edges(node).map(|e| e.weight).sum()
    }

    /// Normalize the out-edge weights of every node so they sum to one
    /// (nodes without out-edges, or whose weights sum to zero, are left
    /// untouched). This is the `NormalizeEdges` step of Algorithm 1.
    pub fn normalize_out_edges(&mut self) {
        let n = self.node_count() as u32;
        for v in 0..n {
            self.normalize_node(NodeId(v));
        }
    }

    /// Normalize the out-edges of a single node (see
    /// [`Self::normalize_out_edges`]).
    pub fn normalize_node(&mut self, node: NodeId) {
        let i = node.index();
        let lo = self.out_offsets[i] as usize;
        let hi = self.out_offsets[i + 1] as usize;
        let sum: f64 = self.out_edge_ids[lo..hi]
            .iter()
            .map(|e| self.weights[e.index()])
            .sum();
        if sum > 0.0 && sum.is_finite() {
            for slot in lo..hi {
                let e = self.out_edge_ids[slot];
                let scaled = self.weights[e.index()] / sum;
                if self.weights[e.index()] != scaled {
                    self.write_weight(e, scaled);
                    self.mark_changed(e);
                }
            }
        }
    }

    /// True when every node with at least one out-edge has out-weights
    /// summing to one within `tol`.
    pub fn is_row_stochastic(&self, tol: f64) -> bool {
        self.nodes().all(|v| {
            if self.out_degree(v) == 0 {
                return true;
            }
            (self.out_weight_sum(v) - 1.0).abs() <= tol
        })
    }

    /// The edges whose weight changed after version `since`, as a
    /// [`crate::WeightDelta`] covering `since .. self.version()`. Edges
    /// are reported in id order. `changes_since(0)` lists every edge ever
    /// mutated; `changes_since(self.version())` is empty.
    pub fn changes_since(&self, since: u64) -> crate::WeightDelta {
        let edges = if since >= self.version {
            Vec::new()
        } else {
            self.last_changed
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v > since)
                .map(|(i, _)| EdgeId(i as u32))
                .collect()
        };
        crate::WeightDelta {
            from_version: since,
            to_version: self.version,
            edges,
        }
    }

    /// Validates a pair of nodes and returns the connecting edge, erroring
    /// with a descriptive [`GraphError`] when absent.
    pub fn require_edge(&self, from: NodeId, to: NodeId) -> Result<EdgeId, GraphError> {
        self.check_node(from)?;
        self.check_node(to)?;
        self.edge_between(from, to)
            .ok_or(GraphError::EdgeNotFound { from, to })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> KnowledgeGraph {
        // q -> a, q -> b, a -> t, b -> t
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let x = b.add_node("x", NodeKind::Entity);
        let y = b.add_node("y", NodeKind::Entity);
        let t = b.add_node("t", NodeKind::Answer);
        b.add_edge(q, x, 0.6).unwrap();
        b.add_edge(q, y, 0.4).unwrap();
        b.add_edge(x, t, 1.0).unwrap();
        b.add_edge(y, t, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn counts_and_lookup() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.find_node("x"), Some(NodeId(1)));
        assert_eq!(g.find_node("missing"), None);
        assert_eq!(g.label(NodeId(3)), "t");
        assert_eq!(g.kind(NodeId(0)), NodeKind::Query);
        assert_eq!(g.kind(NodeId(3)), NodeKind::Answer);
    }

    #[test]
    fn adjacency_both_directions() {
        let g = diamond();
        let q = g.find_node("q").unwrap();
        let t = g.find_node("t").unwrap();
        let out: Vec<_> = g.out_edges(q).map(|e| g.label(e.to).to_string()).collect();
        assert_eq!(out, vec!["x", "y"]);
        let inn: Vec<_> = g.in_edges(t).map(|e| g.label(e.from).to_string()).collect();
        assert_eq!(inn, vec!["x", "y"]);
        assert_eq!(g.out_degree(q), 2);
        assert_eq!(g.in_degree(t), 2);
        assert_eq!(g.out_degree(t), 0);
    }

    #[test]
    fn weight_mutation_is_validated() {
        let mut g = diamond();
        let e = g
            .edge_between(g.find_node("q").unwrap(), g.find_node("x").unwrap())
            .unwrap();
        g.set_weight(e, 0.9).unwrap();
        assert_eq!(g.weight(e), 0.9);
        assert!(g.set_weight(e, f64::NAN).is_err());
        assert!(g.set_weight(e, -0.1).is_err());
        // Failed set leaves the old value.
        assert_eq!(g.weight(e), 0.9);
    }

    #[test]
    fn weight_between_returns_zero_for_missing_edges() {
        let g = diamond();
        let q = g.find_node("q").unwrap();
        let t = g.find_node("t").unwrap();
        assert_eq!(g.weight_between(t, q), 0.0);
        assert!(g.weight_between(q, g.find_node("x").unwrap()) > 0.0);
    }

    #[test]
    fn normalization_makes_rows_stochastic() {
        let mut g = diamond();
        let q = g.find_node("q").unwrap();
        let e = g.edge_between(q, g.find_node("x").unwrap()).unwrap();
        g.set_weight(e, 3.0).unwrap();
        assert!(!g.is_row_stochastic(1e-12));
        g.normalize_out_edges();
        assert!(g.is_row_stochastic(1e-12));
        assert!((g.out_weight_sum(q) - 1.0).abs() < 1e-12);
        // Relative proportions preserved: 3.0 vs 0.4.
        let wx = g.weight_between(q, g.find_node("x").unwrap());
        let wy = g.weight_between(q, g.find_node("y").unwrap());
        assert!((wx / wy - 3.0 / 0.4).abs() < 1e-9);
    }

    #[test]
    fn normalization_skips_sinks_and_zero_rows() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", NodeKind::Entity);
        let t = b.add_node("sink", NodeKind::Entity);
        b.add_edge(a, t, 0.0).unwrap();
        let mut g = b.build();
        g.normalize_out_edges();
        // Zero row untouched, sink has no out edges: still "stochastic".
        assert_eq!(g.weight_between(a, t), 0.0);
        assert!(g.is_row_stochastic(1e-12) || g.out_weight_sum(a) == 0.0);
    }

    #[test]
    fn require_edge_errors() {
        let g = diamond();
        let q = g.find_node("q").unwrap();
        let t = g.find_node("t").unwrap();
        assert!(g.require_edge(q, t).is_err());
        assert!(g.require_edge(NodeId(99), t).is_err());
        assert!(g.require_edge(q, g.find_node("x").unwrap()).is_ok());
    }

    #[test]
    fn edges_iterates_in_id_order() {
        let g = diamond();
        let ids: Vec<u32> = g.edges().map(|e| e.edge.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    /// The slot-aligned weight mirror must track every mutation funnel:
    /// set_weight, normalization, and snapshot restore.
    #[test]
    fn out_row_stays_coherent_with_edge_weights() {
        let assert_coherent = |g: &KnowledgeGraph| {
            for v in g.nodes() {
                let (targets, weights) = g.out_row(v);
                let via_edges: Vec<(NodeId, f64)> =
                    g.out_edges(v).map(|e| (e.to, e.weight)).collect();
                let via_row: Vec<(NodeId, f64)> = targets
                    .iter()
                    .copied()
                    .zip(weights.iter().copied())
                    .collect();
                assert_eq!(via_row, via_edges, "node {v}");
            }
        };
        let mut g = diamond();
        assert_coherent(&g);
        let snap = crate::WeightSnapshot::capture(&g);
        g.set_weight(EdgeId(0), 0.9).unwrap();
        assert_coherent(&g);
        g.normalize_out_edges();
        assert_coherent(&g);
        snap.restore(&mut g);
        assert_coherent(&g);
        assert_eq!(g.weight(EdgeId(0)), 0.6);
    }

    #[test]
    fn in_row_matches_in_edges() {
        let g = diamond();
        let t = g.find_node("t").unwrap();
        let (sources, edge_ids) = g.in_row(t);
        let via_edges: Vec<(NodeId, EdgeId)> = g.in_edges(t).map(|e| (e.from, e.edge)).collect();
        let via_row: Vec<(NodeId, EdgeId)> = sources
            .iter()
            .copied()
            .zip(edge_ids.iter().copied())
            .collect();
        assert_eq!(via_row, via_edges);
    }

    #[test]
    fn nodes_of_kind_filters() {
        let g = diamond();
        assert_eq!(g.nodes_of_kind(NodeKind::Entity).count(), 2);
        assert_eq!(g.nodes_of_kind(NodeKind::Query).count(), 1);
        assert_eq!(g.nodes_of_kind(NodeKind::Answer).count(), 1);
    }
}
