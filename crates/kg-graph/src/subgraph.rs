//! Induced subgraph extraction.
//!
//! The split strategy reasons about the sub-graph a vote's walks touch
//! (Fig. 3 of the paper); this module materializes such sub-graphs for
//! inspection, debugging and visualization, preserving labels and weights
//! and reporting the node/edge id mappings back to the parent graph.

use crate::builder::GraphBuilder;
use crate::graph::KnowledgeGraph;
use crate::ids::{EdgeId, NodeId};
use std::collections::HashMap;

/// An induced subgraph plus its mapping back to the parent graph.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The extracted graph (fresh, dense ids).
    pub graph: KnowledgeGraph,
    /// For each subgraph node, the corresponding parent node.
    pub parent_node: Vec<NodeId>,
    /// For each subgraph edge, the corresponding parent edge.
    pub parent_edge: Vec<EdgeId>,
}

impl Subgraph {
    /// Extracts the subgraph induced by `nodes`: those nodes plus every
    /// parent edge whose endpoints are both selected. Duplicate input
    /// nodes are ignored; selection order determines the new node ids.
    pub fn induced(parent: &KnowledgeGraph, nodes: &[NodeId]) -> Subgraph {
        let mut parent_node = Vec::with_capacity(nodes.len());
        let mut new_of: HashMap<NodeId, NodeId> = HashMap::with_capacity(nodes.len());
        let mut b = GraphBuilder::with_capacity(nodes.len(), nodes.len() * 4);
        for &v in nodes {
            assert!(
                v.index() < parent.node_count(),
                "node {v} out of range for the parent graph"
            );
            if new_of.contains_key(&v) {
                continue;
            }
            let nv = b.add_node(parent.label(v), parent.kind(v));
            new_of.insert(v, nv);
            parent_node.push(v);
        }
        let mut parent_edge = Vec::new();
        for &v in &parent_node {
            for e in parent.out_edges(v) {
                if let Some(&nt) = new_of.get(&e.to) {
                    b.add_edge(new_of[&v], nt, e.weight)
                        .expect("induced edges are unique");
                    parent_edge.push(e.edge);
                }
            }
        }
        Subgraph {
            graph: b.build(),
            parent_node,
            parent_edge,
        }
    }

    /// Extracts the ball of radius `hops` (following out-edges) around
    /// `center` — the region a length-bounded walk from `center` can
    /// reach, i.e. exactly the evidence zone of a vote with `L = hops`.
    pub fn ball(parent: &KnowledgeGraph, center: NodeId, hops: usize) -> Subgraph {
        assert!(
            center.index() < parent.node_count(),
            "node {center} out of range for the parent graph"
        );
        let mut selected: Vec<NodeId> = vec![center];
        let mut seen: HashMap<NodeId, ()> = HashMap::new();
        seen.insert(center, ());
        let mut frontier = vec![center];
        for _ in 0..hops {
            let mut next = Vec::new();
            for &u in &frontier {
                for e in parent.out_edges(u) {
                    if seen.insert(e.to, ()).is_none() {
                        selected.push(e.to);
                        next.push(e.to);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        Subgraph::induced(parent, &selected)
    }

    /// Writes this subgraph's (possibly modified) weights back onto the
    /// parent graph.
    pub fn write_back(&self, parent: &mut KnowledgeGraph) {
        for (i, &pe) in self.parent_edge.iter().enumerate() {
            let w = self.graph.weight(EdgeId(i as u32));
            parent
                .set_weight(pe, w)
                .expect("subgraph weights remain valid");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    fn parent() -> KnowledgeGraph {
        // q -> a -> b -> c, a -> c, d isolated.
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let a = b.add_node("a", NodeKind::Entity);
        let c1 = b.add_node("b", NodeKind::Entity);
        let c2 = b.add_node("c", NodeKind::Entity);
        b.add_node("d", NodeKind::Entity);
        b.add_edge(q, a, 1.0).unwrap();
        b.add_edge(a, c1, 0.5).unwrap();
        b.add_edge(c1, c2, 0.5).unwrap();
        b.add_edge(a, c2, 0.5).unwrap();
        b.build()
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let p = parent();
        let s = Subgraph::induced(&p, &[NodeId(1), NodeId(2)]); // a, b
        assert_eq!(s.graph.node_count(), 2);
        assert_eq!(s.graph.edge_count(), 1); // a -> b only
        assert_eq!(s.graph.label(NodeId(0)), "a");
        assert_eq!(s.parent_edge.len(), 1);
        let (f, t) = p.endpoints(s.parent_edge[0]);
        assert_eq!((p.label(f), p.label(t)), ("a", "b"));
    }

    #[test]
    fn induced_preserves_weights_and_kinds() {
        let p = parent();
        let s = Subgraph::induced(&p, &[NodeId(0), NodeId(1)]);
        assert_eq!(s.graph.kind(NodeId(0)), NodeKind::Query);
        assert_eq!(s.graph.weight_between(NodeId(0), NodeId(1)), 1.0);
    }

    #[test]
    fn induced_dedups_input() {
        let p = parent();
        let s = Subgraph::induced(&p, &[NodeId(1), NodeId(1), NodeId(2)]);
        assert_eq!(s.graph.node_count(), 2);
    }

    #[test]
    fn ball_covers_reachable_region() {
        let p = parent();
        let s = Subgraph::ball(&p, NodeId(0), 2);
        // q, a (1 hop), b and c (2 hops); d unreachable.
        assert_eq!(s.graph.node_count(), 4);
        assert!(s.graph.find_node("d").is_none());
        // Internal edges: q-a, a-b, a-c (b-c endpoints are both in, too).
        assert_eq!(s.graph.edge_count(), 4);
    }

    #[test]
    fn ball_radius_zero_is_single_node() {
        let p = parent();
        let s = Subgraph::ball(&p, NodeId(1), 0);
        assert_eq!(s.graph.node_count(), 1);
        assert_eq!(s.graph.edge_count(), 0);
    }

    #[test]
    fn write_back_round_trips_weight_edits() {
        let p0 = parent();
        let mut p = p0.clone();
        let mut s = Subgraph::ball(&p, NodeId(0), 2);
        // Halve every subgraph weight and write back.
        for i in 0..s.graph.edge_count() {
            let e = EdgeId(i as u32);
            let w = s.graph.weight(e);
            s.graph.set_weight(e, w / 2.0).unwrap();
        }
        s.write_back(&mut p);
        for (i, &pe) in s.parent_edge.iter().enumerate() {
            assert!((p.weight(pe) - s.graph.weight(EdgeId(i as u32))).abs() < 1e-15);
            assert!((p.weight(pe) - p0.weight(pe) / 2.0).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn induced_rejects_bad_nodes() {
        Subgraph::induced(&parent(), &[NodeId(99)]);
    }
}
