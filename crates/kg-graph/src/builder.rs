//! Construction of [`KnowledgeGraph`]s, including the paper's
//! co-occurrence weight initialization.

use crate::error::GraphError;
use crate::graph::{KnowledgeGraph, NodeKind};
use crate::ids::{EdgeId, NodeId};
use std::collections::HashMap;

/// Incremental builder for a [`KnowledgeGraph`].
///
/// Nodes are added first (labels must be unique), then directed weighted
/// edges. [`GraphBuilder::build`] freezes the topology into CSR form.
///
/// ```
/// use kg_graph::{GraphBuilder, NodeKind};
/// let mut b = GraphBuilder::new();
/// let u = b.add_node("outlook", NodeKind::Entity);
/// let v = b.add_node("email", NodeKind::Entity);
/// b.add_edge(u, v, 0.4).unwrap();
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    labels: Vec<String>,
    kinds: Vec<NodeKind>,
    edges: Vec<(NodeId, NodeId, f64)>,
    edge_index: HashMap<(u32, u32), EdgeId>,
    label_index: HashMap<String, NodeId>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-reserved capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            labels: Vec::with_capacity(nodes),
            kinds: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            edge_index: HashMap::with_capacity(edges),
            label_index: HashMap::with_capacity(nodes),
        }
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node with a unique label, returning its id. If the label
    /// already exists, the existing id is returned (the kind must match in
    /// debug builds).
    pub fn add_node(&mut self, label: impl Into<String>, kind: NodeKind) -> NodeId {
        let label = label.into();
        if let Some(&id) = self.label_index.get(&label) {
            debug_assert_eq!(
                self.kinds[id.index()],
                kind,
                "node {label:?} re-added with a different kind"
            );
            return id;
        }
        let id = NodeId(self.labels.len() as u32);
        self.label_index.insert(label.clone(), id);
        self.labels.push(label);
        self.kinds.push(kind);
        id
    }

    /// Looks up a previously added node by label.
    pub fn find_node(&self, label: &str) -> Option<NodeId> {
        self.label_index.get(label).copied()
    }

    /// Adds a directed edge `from -> to` with the given weight.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        weight: f64,
    ) -> Result<EdgeId, GraphError> {
        let n = self.labels.len();
        for node in [from, to] {
            if node.index() >= n {
                return Err(GraphError::NodeOutOfRange {
                    node,
                    node_count: n,
                });
            }
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(GraphError::InvalidWeight { from, to, weight });
        }
        if self.edge_index.contains_key(&(from.0, to.0)) {
            return Err(GraphError::DuplicateEdge { from, to });
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edge_index.insert((from.0, to.0), id);
        self.edges.push((from, to, weight));
        Ok(id)
    }

    /// Adds an edge, or accumulates `weight` onto an existing one. Used by
    /// co-occurrence counting where the same pair can be seen many times.
    pub fn add_or_accumulate_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        weight: f64,
    ) -> Result<EdgeId, GraphError> {
        if let Some(&id) = self.edge_index.get(&(from.0, to.0)) {
            if !weight.is_finite() || weight < 0.0 {
                return Err(GraphError::InvalidWeight { from, to, weight });
            }
            self.edges[id.index()].2 += weight;
            Ok(id)
        } else {
            self.add_edge(from, to, weight)
        }
    }

    /// Freezes the builder into a [`KnowledgeGraph`] with CSR adjacency in
    /// both directions. Edge ids are assigned in insertion order; adjacency
    /// lists are sorted by neighbor id for deterministic iteration.
    pub fn build(self) -> KnowledgeGraph {
        let n = self.labels.len();
        let m = self.edges.len();

        let mut out_degree = vec![0u32; n];
        let mut in_degree = vec![0u32; n];
        for &(from, to, _) in &self.edges {
            out_degree[from.index()] += 1;
            in_degree[to.index()] += 1;
        }

        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for i in 0..n {
            out_offsets[i + 1] = out_offsets[i] + out_degree[i];
            in_offsets[i + 1] = in_offsets[i] + in_degree[i];
        }

        let mut out_targets = vec![NodeId(0); m];
        let mut out_edge_ids = vec![EdgeId(0); m];
        let mut in_sources = vec![NodeId(0); m];
        let mut in_edge_ids = vec![EdgeId(0); m];
        let mut out_cursor: Vec<u32> = out_offsets[..n].to_vec();
        let mut in_cursor: Vec<u32> = in_offsets[..n].to_vec();

        let mut edge_from = vec![NodeId(0); m];
        let mut edge_to = vec![NodeId(0); m];
        let mut weights = vec![0.0f64; m];

        for (e, &(from, to, w)) in self.edges.iter().enumerate() {
            let eid = EdgeId(e as u32);
            edge_from[e] = from;
            edge_to[e] = to;
            weights[e] = w;

            let oc = &mut out_cursor[from.index()];
            out_targets[*oc as usize] = to;
            out_edge_ids[*oc as usize] = eid;
            *oc += 1;

            let ic = &mut in_cursor[to.index()];
            in_sources[*ic as usize] = from;
            in_edge_ids[*ic as usize] = eid;
            *ic += 1;
        }

        // Sort each adjacency run by neighbor id so iteration order is
        // deterministic regardless of insertion order.
        for i in 0..n {
            let (lo, hi) = (out_offsets[i] as usize, out_offsets[i + 1] as usize);
            sort_run(&mut out_targets[lo..hi], &mut out_edge_ids[lo..hi]);
            let (lo, hi) = (in_offsets[i] as usize, in_offsets[i + 1] as usize);
            sort_run(&mut in_sources[lo..hi], &mut in_edge_ids[lo..hi]);
        }

        // Slot-aligned weight mirror and the edge -> slot map, derived
        // from the final (sorted) out-CSR order.
        let mut out_weights = vec![0.0f64; m];
        let mut edge_out_slot = vec![0u32; m];
        for (slot, &eid) in out_edge_ids.iter().enumerate() {
            out_weights[slot] = weights[eid.index()];
            edge_out_slot[eid.index()] = slot as u32;
        }

        KnowledgeGraph {
            labels: self.labels,
            kinds: self.kinds,
            out_offsets,
            out_targets,
            out_edge_ids,
            out_weights,
            edge_out_slot,
            in_offsets,
            in_sources,
            in_edge_ids,
            edge_from,
            edge_to,
            weights,
            edge_index: self.edge_index,
            label_index: self.label_index,
            version: 0,
            last_changed: vec![0; m],
        }
    }

    /// Builds a graph from raw co-occurrence counts, initializing weights
    /// with the paper's conditional probability
    /// `w(v_i, v_j) = #(v_i, v_j) / #(v_i)` (Section III-A).
    ///
    /// `occurrences[i]` is `#(v_i)`; `cooccurrences` maps ordered pairs to
    /// `#(v_i, v_j)`. Pairs whose count is zero are skipped. Entities with
    /// zero occurrence count contribute no out-edges.
    pub fn from_cooccurrence(
        labels: &[&str],
        occurrences: &[u64],
        cooccurrences: &[((usize, usize), u64)],
    ) -> Result<KnowledgeGraph, GraphError> {
        assert_eq!(
            labels.len(),
            occurrences.len(),
            "labels and occurrence counts must align"
        );
        let mut b = GraphBuilder::with_capacity(labels.len(), cooccurrences.len());
        for label in labels {
            b.add_node(*label, NodeKind::Entity);
        }
        for &((i, j), count) in cooccurrences {
            if count == 0 {
                continue;
            }
            let occ = occurrences[i];
            if occ == 0 {
                continue;
            }
            let w = count as f64 / occ as f64;
            b.add_edge(NodeId(i as u32), NodeId(j as u32), w)?;
        }
        Ok(b.build())
    }
}

/// Sorts two parallel slices by the first slice's values (insertion sort:
/// adjacency runs are short, avg degree < 11 across all paper datasets).
fn sort_run(keys: &mut [NodeId], vals: &mut [EdgeId]) {
    for i in 1..keys.len() {
        let mut j = i;
        while j > 0 && keys[j - 1] > keys[j] {
            keys.swap(j - 1, j);
            vals.swap(j - 1, j);
            j -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_labels_return_same_node() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", NodeKind::Entity);
        let a2 = b.add_node("a", NodeKind::Entity);
        assert_eq!(a, a2);
        assert_eq!(b.node_count(), 1);
    }

    #[test]
    fn duplicate_edges_are_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", NodeKind::Entity);
        let c = b.add_node("c", NodeKind::Entity);
        b.add_edge(a, c, 0.5).unwrap();
        assert_eq!(
            b.add_edge(a, c, 0.2),
            Err(GraphError::DuplicateEdge { from: a, to: c })
        );
    }

    #[test]
    fn out_of_range_nodes_are_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", NodeKind::Entity);
        assert!(b.add_edge(a, NodeId(5), 0.5).is_err());
        assert!(b.add_edge(NodeId(5), a, 0.5).is_err());
    }

    #[test]
    fn invalid_weights_are_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", NodeKind::Entity);
        let c = b.add_node("c", NodeKind::Entity);
        assert!(b.add_edge(a, c, -1.0).is_err());
        assert!(b.add_edge(a, c, f64::INFINITY).is_err());
        assert!(b.add_edge(a, c, f64::NAN).is_err());
    }

    #[test]
    fn accumulate_sums_weights() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", NodeKind::Entity);
        let c = b.add_node("c", NodeKind::Entity);
        b.add_or_accumulate_edge(a, c, 1.0).unwrap();
        b.add_or_accumulate_edge(a, c, 2.0).unwrap();
        let g = b.build();
        assert_eq!(g.weight_between(a, c), 3.0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn adjacency_is_sorted_by_neighbor_id() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", NodeKind::Entity);
        let z = b.add_node("z", NodeKind::Entity);
        let m = b.add_node("m", NodeKind::Entity);
        // Insert out of order.
        b.add_edge(a, m, 0.1).unwrap();
        b.add_edge(a, z, 0.2).unwrap();
        let g = b.build();
        let order: Vec<u32> = g.out_edges(a).map(|e| e.to.0).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn cooccurrence_weights_are_conditional_probabilities() {
        // #(a)=10, #(b)=5; #(a,b)=4 => w(a,b)=0.4 ; #(b,a)=5 => w(b,a)=1.0
        let g = GraphBuilder::from_cooccurrence(&["a", "b"], &[10, 5], &[((0, 1), 4), ((1, 0), 5)])
            .unwrap();
        let a = g.find_node("a").unwrap();
        let b = g.find_node("b").unwrap();
        assert!((g.weight_between(a, b) - 0.4).abs() < 1e-12);
        assert!((g.weight_between(b, a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cooccurrence_skips_zero_counts() {
        let g = GraphBuilder::from_cooccurrence(&["a", "b"], &[0, 5], &[((0, 1), 4), ((1, 0), 0)])
            .unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn build_on_empty_builder_is_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
