//! Snapshot publication: immutable graph snapshots served to concurrent
//! readers while a writer keeps optimizing a private copy.
//!
//! The serving story of the voting framework is read-heavy: between two
//! optimization rounds, thousands of ranking requests evaluate against a
//! graph that is not changing *for them* — the optimizer mutates its own
//! working copy and only the finished round should ever become visible.
//! This module provides that publication step with three pieces:
//!
//! * [`GraphSnapshot`] — an epoch-stamped, immutable, cheaply clonable
//!   handle (`Arc`) to a full [`KnowledgeGraph`] (CSR arrays + weights).
//!   Cloning is a reference-count bump; the graph behind it never
//!   changes, so readers can never observe a torn weight vector.
//! * [`ArcCell`] — a hand-rolled arc-swap on `std::sync` only (no
//!   external dependencies): readers [`ArcCell::load`] the current value
//!   without ever contending with writers, writers [`ArcCell::store`] a
//!   replacement atomically.
//! * [`SharedGraph`] — an `ArcCell` of the graph plus the publication
//!   protocol: the writer mutates its private [`KnowledgeGraph`] and
//!   calls [`SharedGraph::publish`]; every reader's next
//!   [`SharedGraph::snapshot`] sees the new epoch.
//!
//! # How the lock-free read path works
//!
//! `ArcCell` keeps a small ring of slots, each holding an `Arc<T>`
//! behind its own (slot-local) lock, plus an atomic index of the *live*
//! slot. A writer never touches the live slot: it writes the *next* slot
//! and then moves the index with a release store. A reader loads the
//! index (acquire) and clones the `Arc` out of that slot. The only way a
//! reader can meet a writer on the same slot is to stall between its
//! index load and its slot access for `RING_SLOTS − 1` consecutive
//! publishes — with 8 slots and publish rates of "once per optimization
//! batch", that window is practically unreachable; reads are wait-free
//! with respect to writers in every realistic schedule, and reads never
//! block writes. Readers holding a stale snapshot keep it alive through
//! their own `Arc`; memory is reclaimed when the last reader drops it.

use crate::graph::KnowledgeGraph;
use std::ops::Deref;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of slots in an [`ArcCell`] ring. A reader only ever contends
/// with a writer after lagging `RING_SLOTS - 1` publishes between two
/// adjacent instructions.
const RING_SLOTS: usize = 8;

/// A hand-rolled arc-swap: readers get the current `Arc<T>` without
/// blocking on writers; writers install a new value atomically.
///
/// Built from `std::sync` primitives only. See the module docs for the
/// wait-freedom argument.
#[derive(Debug)]
pub struct ArcCell<T> {
    slots: Box<[Mutex<Arc<T>>]>,
    /// Index of the live slot. Readers `Acquire`-load it; the writer
    /// `Release`-stores it after filling the next slot.
    current: AtomicUsize,
    /// Serializes writers (store / update) against each other, never
    /// against readers.
    writer: Mutex<()>,
}

impl<T> ArcCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        let slots: Vec<Mutex<Arc<T>>> =
            (0..RING_SLOTS).map(|_| Mutex::new(value.clone())).collect();
        ArcCell {
            slots: slots.into_boxed_slice(),
            current: AtomicUsize::new(0),
            writer: Mutex::new(()),
        }
    }

    fn slot(&self, i: usize) -> MutexGuard<'_, Arc<T>> {
        self.slots[i].lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Returns the current value. Never blocks on a writer (see module
    /// docs); concurrent readers of the same slot serialize only for the
    /// duration of a reference-count increment.
    pub fn load(&self) -> Arc<T> {
        let i = self.current.load(Ordering::Acquire);
        self.slot(i).clone()
    }

    /// Atomically replaces the current value.
    pub fn store(&self, value: Arc<T>) {
        let guard = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        self.store_locked(value);
        drop(guard);
    }

    /// Read-modify-write: `f` sees the current value and returns either
    /// `Some(next)` to install it or `None` to leave the cell untouched.
    /// The whole step is atomic with respect to other writers; readers
    /// are never blocked by it. Returns whether a new value was stored.
    pub fn update(&self, f: impl FnOnce(&T) -> Option<Arc<T>>) -> bool {
        let guard = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let cur = {
            let i = self.current.load(Ordering::Relaxed);
            self.slot(i).clone()
        };
        let stored = match f(&cur) {
            Some(next) => {
                self.store_locked(next);
                true
            }
            None => false,
        };
        drop(guard);
        stored
    }

    /// Writes `value` into the next ring slot and advances the live
    /// index. Caller must hold the writer lock.
    fn store_locked(&self, value: Arc<T>) {
        let cur = self.current.load(Ordering::Relaxed);
        let next = (cur + 1) % self.slots.len();
        *self.slot(next) = value;
        self.current.store(next, Ordering::Release);
    }
}

impl<T> Clone for ArcCell<T> {
    fn clone(&self) -> Self {
        ArcCell::new(self.load())
    }
}

/// An immutable, epoch-stamped view of a [`KnowledgeGraph`].
///
/// The epoch is the graph's [`KnowledgeGraph::version`] at publication
/// time: within one graph lineage, two snapshots with equal epochs carry
/// identical weights (every effective weight change bumps the version).
/// Dereferences to the underlying graph, so every read-only API — the
/// phi kernels, `affected_queries`, rankings — works on a snapshot
/// unchanged.
///
/// ```
/// use kg_graph::{GraphBuilder, NodeKind};
///
/// let mut b = GraphBuilder::new();
/// let q = b.add_node("q", NodeKind::Query);
/// let a = b.add_node("a", NodeKind::Answer);
/// let e = b.add_edge(q, a, 0.4).unwrap();
/// let mut g = b.build();
///
/// let snap = g.publish();
/// g.set_weight(e, 0.9).unwrap();
/// // The snapshot is frozen at publication time.
/// assert_eq!(snap.weight(e), 0.4);
/// assert_eq!(g.weight(e), 0.9);
/// assert!(g.version() > snap.epoch());
/// ```
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    graph: Arc<KnowledgeGraph>,
    epoch: u64,
}

impl GraphSnapshot {
    /// Wraps an already-shared graph. The epoch is the graph's current
    /// version.
    pub fn from_arc(graph: Arc<KnowledgeGraph>) -> Self {
        let epoch = graph.version();
        GraphSnapshot { graph, epoch }
    }

    /// The graph version this snapshot was taken at.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared graph itself (cheap to clone).
    pub fn as_arc(&self) -> &Arc<KnowledgeGraph> {
        &self.graph
    }
}

impl Deref for GraphSnapshot {
    type Target = KnowledgeGraph;

    #[inline]
    fn deref(&self) -> &KnowledgeGraph {
        &self.graph
    }
}

impl KnowledgeGraph {
    /// Freezes the current state into an immutable, cheaply clonable
    /// [`GraphSnapshot`] (one full copy of the CSR arrays and weights;
    /// sharing afterwards is reference counting). The writer keeps
    /// mutating `self`; the snapshot never changes.
    pub fn publish(&self) -> GraphSnapshot {
        GraphSnapshot {
            graph: Arc::new(self.clone()),
            epoch: self.version(),
        }
    }
}

/// The publication point between one writer and many readers: an
/// [`ArcCell`] of the latest published [`GraphSnapshot`].
///
/// The writer keeps a private [`KnowledgeGraph`], mutates it freely
/// (weights only — topology is fixed), and calls [`Self::publish`] at
/// consistency points (end of an optimization batch). Readers call
/// [`Self::snapshot`] and evaluate against the frozen graph; they never
/// block the writer and the writer never blocks them.
///
/// One `SharedGraph` follows one graph lineage: publish only descendants
/// (clones continue the version lineage) of the graph it was created
/// with, or epoch comparisons become meaningless.
#[derive(Debug, Clone)]
pub struct SharedGraph {
    cell: ArcCell<KnowledgeGraph>,
}

impl SharedGraph {
    /// Publishes `graph` as the initial snapshot.
    pub fn new(graph: KnowledgeGraph) -> Self {
        SharedGraph {
            cell: ArcCell::new(Arc::new(graph)),
        }
    }

    /// The latest published snapshot. Wait-free with respect to
    /// publishers (see [`ArcCell::load`]).
    pub fn snapshot(&self) -> GraphSnapshot {
        GraphSnapshot::from_arc(self.cell.load())
    }

    /// Epoch of the latest published snapshot.
    pub fn epoch(&self) -> u64 {
        self.cell.load().version()
    }

    /// Atomically replaces the published snapshot with a frozen copy of
    /// `graph`, returning it. Readers holding older snapshots keep them
    /// alive until dropped; new [`Self::snapshot`] calls see the new
    /// epoch immediately.
    pub fn publish(&self, graph: &KnowledgeGraph) -> GraphSnapshot {
        let snap = graph.publish();
        self.cell.store(snap.as_arc().clone());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::NodeKind;
    use crate::ids::EdgeId;

    fn chain() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let x = b.add_node("x", NodeKind::Entity);
        let a = b.add_node("a", NodeKind::Answer);
        b.add_edge(q, x, 0.5).unwrap();
        b.add_edge(x, a, 0.5).unwrap();
        b.build()
    }

    #[test]
    fn snapshot_is_frozen_at_publish_time() {
        let mut g = chain();
        let snap = g.publish();
        assert_eq!(snap.epoch(), 0);
        g.set_weight(EdgeId(0), 0.9).unwrap();
        assert_eq!(snap.weight(EdgeId(0)), 0.5);
        assert_eq!(g.weight(EdgeId(0)), 0.9);
        assert_eq!(snap.epoch(), 0);
        assert_eq!(g.version(), 1);
    }

    #[test]
    fn shared_graph_publishes_new_epochs() {
        let mut g = chain();
        let shared = SharedGraph::new(g.clone());
        assert_eq!(shared.epoch(), 0);
        let before = shared.snapshot();

        g.set_weight(EdgeId(1), 0.25).unwrap();
        let published = shared.publish(&g);
        assert_eq!(published.epoch(), 1);
        assert_eq!(shared.epoch(), 1);
        // The pre-publish snapshot is untouched.
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.weight(EdgeId(1)), 0.5);
        assert_eq!(shared.snapshot().weight(EdgeId(1)), 0.25);
    }

    #[test]
    fn snapshot_clone_is_shared_not_copied() {
        let g = chain();
        let snap = g.publish();
        let other = snap.clone();
        assert!(Arc::ptr_eq(snap.as_arc(), other.as_arc()));
    }

    #[test]
    fn arc_cell_store_and_load_roundtrip() {
        let cell = ArcCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        for v in 2..20u64 {
            cell.store(Arc::new(v));
            assert_eq!(*cell.load(), v);
        }
    }

    #[test]
    fn arc_cell_update_sees_current_and_can_skip() {
        let cell = ArcCell::new(Arc::new(10u64));
        let stored = cell.update(|v| Some(Arc::new(v + 1)));
        assert!(stored);
        assert_eq!(*cell.load(), 11);
        let stored = cell.update(|v| {
            assert_eq!(*v, 11);
            None
        });
        assert!(!stored);
        assert_eq!(*cell.load(), 11);
    }

    #[test]
    fn arc_cell_concurrent_readers_see_monotonic_values() {
        let cell = Arc::new(ArcCell::new(Arc::new(0u64)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..10_000 {
                        let v = *cell.load();
                        assert!(v >= last, "value went backwards: {v} < {last}");
                        last = v;
                    }
                });
            }
            for v in 1..=1_000u64 {
                cell.store(Arc::new(v));
            }
        });
        assert_eq!(*cell.load(), 1_000);
    }

    #[test]
    fn shared_graph_concurrent_snapshots_are_coherent() {
        let mut g = chain();
        let shared = Arc::new(SharedGraph::new(g.clone()));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..5_000 {
                        let snap = shared.snapshot();
                        // Weights of one snapshot are internally
                        // consistent: both edges always sum to the same
                        // total that the publisher wrote.
                        let sum = snap.weight(EdgeId(0)) + snap.weight(EdgeId(1));
                        assert!((sum - 1.0).abs() < 1e-12, "torn snapshot: {sum}");
                        assert!(snap.epoch() >= last, "epoch regressed");
                        last = snap.epoch();
                    }
                });
            }
            for i in 0..500 {
                let w = (i % 9) as f64 / 10.0 + 0.05;
                g.set_weight(EdgeId(0), w).unwrap();
                g.set_weight(EdgeId(1), 1.0 - w).unwrap();
                shared.publish(&g);
            }
        });
    }
}
