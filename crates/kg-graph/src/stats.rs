//! Summary statistics for graphs — the quantities Table II of the paper
//! reports per dataset (|V|, |E|, average degree).

use crate::graph::{KnowledgeGraph, NodeKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate statistics of a knowledge graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Average out-degree over all nodes (`|E| / |V|`); matches the
    /// "Average Degree" column of Table II.
    pub average_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Number of entity nodes.
    pub entity_nodes: usize,
    /// Number of query nodes.
    pub query_nodes: usize,
    /// Number of answer nodes.
    pub answer_nodes: usize,
    /// Sum of all edge weights.
    pub total_weight: f64,
    /// Fraction of nodes with no outgoing edges.
    pub sink_fraction: f64,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn of(graph: &KnowledgeGraph) -> Self {
        let nodes = graph.node_count();
        let edges = graph.edge_count();
        let mut max_out = 0usize;
        let mut sinks = 0usize;
        for v in graph.nodes() {
            let d = graph.out_degree(v);
            max_out = max_out.max(d);
            if d == 0 {
                sinks += 1;
            }
        }
        GraphStats {
            nodes,
            edges,
            average_degree: if nodes == 0 {
                0.0
            } else {
                edges as f64 / nodes as f64
            },
            max_out_degree: max_out,
            entity_nodes: graph.nodes_of_kind(NodeKind::Entity).count(),
            query_nodes: graph.nodes_of_kind(NodeKind::Query).count(),
            answer_nodes: graph.nodes_of_kind(NodeKind::Answer).count(),
            total_weight: graph.weights().iter().sum(),
            sink_fraction: if nodes == 0 {
                0.0
            } else {
                sinks as f64 / nodes as f64
            },
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V|={} |E|={} avg_deg={:.2} (entities={}, queries={}, answers={})",
            self.nodes,
            self.edges,
            self.average_degree,
            self.entity_nodes,
            self.query_nodes,
            self.answer_nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn stats_of_small_graph() {
        let mut b = GraphBuilder::new();
        let q = b.add_node("q", NodeKind::Query);
        let x = b.add_node("x", NodeKind::Entity);
        let y = b.add_node("y", NodeKind::Entity);
        let a = b.add_node("a", NodeKind::Answer);
        b.add_edge(q, x, 0.5).unwrap();
        b.add_edge(q, y, 0.5).unwrap();
        b.add_edge(x, a, 1.0).unwrap();
        let s = GraphStats::of(&b.build());
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 3);
        assert!((s.average_degree - 0.75).abs() < 1e-12);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.entity_nodes, 2);
        assert_eq!(s.query_nodes, 1);
        assert_eq!(s.answer_nodes, 1);
        assert!((s.total_weight - 2.0).abs() < 1e-12);
        assert!((s.sink_fraction - 0.5).abs() < 1e-12); // y and a are sinks
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::of(&GraphBuilder::new().build());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.average_degree, 0.0);
        assert_eq!(s.sink_fraction, 0.0);
    }

    #[test]
    fn display_is_compact() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", NodeKind::Entity);
        let c = b.add_node("c", NodeKind::Entity);
        b.add_edge(a, c, 1.0).unwrap();
        let s = GraphStats::of(&b.build());
        let txt = s.to_string();
        assert!(txt.contains("|V|=2"));
        assert!(txt.contains("|E|=1"));
    }
}
