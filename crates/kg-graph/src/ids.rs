//! Strongly-typed node and edge identifiers.
//!
//! Identifiers are `u32` newtypes: a knowledge graph with more than four
//! billion nodes or edges is far outside this system's scale, and halving
//! the index width keeps the CSR arrays compact (see the type-size guidance
//! in the workspace performance notes).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`crate::KnowledgeGraph`].
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a directed edge in a [`crate::KnowledgeGraph`].
///
/// Edge ids are dense: a graph with `m` edges uses ids `0..m`. The id
/// doubles as the index into the weight vector, which is what the SGP
/// optimizer treats as the variable space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for EdgeId {
    #[inline]
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_index() {
        let n = NodeId(42);
        assert_eq!(n.index(), 42);
        assert_eq!(NodeId::from(42u32), n);
    }

    #[test]
    fn edge_id_roundtrips_through_index() {
        let e = EdgeId(7);
        assert_eq!(e.index(), 7);
        assert_eq!(EdgeId::from(7u32), e);
    }

    #[test]
    fn display_formats_are_prefixed() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(EdgeId(9).to_string(), "e9");
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", EdgeId(9)), "e9");
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(10));
    }

    #[test]
    fn ids_serialize_as_plain_integers() {
        assert_eq!(serde_json::to_string(&NodeId(5)).unwrap(), "5");
        assert_eq!(serde_json::to_string(&EdgeId(6)).unwrap(), "6");
        let n: NodeId = serde_json::from_str("5").unwrap();
        assert_eq!(n, NodeId(5));
    }
}
