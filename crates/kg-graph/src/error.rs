//! Error type shared by graph construction and mutation operations.

use crate::ids::NodeId;
use std::fmt;

/// Errors produced by the graph substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node id referenced an index outside the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// An edge between the given endpoints was inserted twice during
    /// construction. Parallel edges are not part of the paper's model (a
    /// weight is a function of an ordered node pair).
    DuplicateEdge {
        /// Source node of the duplicate edge.
        from: NodeId,
        /// Target node of the duplicate edge.
        to: NodeId,
    },
    /// An edge weight was not a finite, non-negative number.
    InvalidWeight {
        /// Source node of the edge.
        from: NodeId,
        /// Target node of the edge.
        to: NodeId,
        /// The rejected weight.
        weight: f64,
    },
    /// A lookup for an edge that does not exist.
    EdgeNotFound {
        /// Source node of the missing edge.
        from: NodeId,
        /// Target node of the missing edge.
        to: NodeId,
    },
    /// Deserialization found an inconsistent on-disk representation.
    Corrupt(String),
    /// A filesystem operation on a snapshot or graph file failed. Carries
    /// the rendered message (not the `io::Error` itself) so the enum stays
    /// `Clone + PartialEq`.
    Io {
        /// Path of the file involved.
        path: String,
        /// Rendered OS error, prefixed with the failing stage.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from} -> {to}")
            }
            GraphError::InvalidWeight { from, to, weight } => {
                write!(f, "invalid weight {weight} on edge {from} -> {to}")
            }
            GraphError::EdgeNotFound { from, to } => {
                write!(f, "edge {from} -> {to} not found")
            }
            GraphError::Corrupt(msg) => write!(f, "corrupt graph data: {msg}"),
            GraphError::Io { path, message } => {
                write!(f, "io error on {path}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_ids() {
        let e = GraphError::DuplicateEdge {
            from: NodeId(1),
            to: NodeId(2),
        };
        assert_eq!(e.to_string(), "duplicate edge n1 -> n2");

        let e = GraphError::NodeOutOfRange {
            node: NodeId(9),
            node_count: 3,
        };
        assert!(e.to_string().contains("n9"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GraphError::Corrupt("x".into()));
    }
}
