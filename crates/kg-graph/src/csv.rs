//! CSV/TSV edge-list interchange.
//!
//! The KONECT datasets the paper evaluates on ship as plain edge lists;
//! this module reads and writes that shape so real downloads can be
//! dropped in when available. Format:
//!
//! ```text
//! # comment lines and blank lines are skipped
//! source,target[,weight]
//! ```
//!
//! Node names are arbitrary labels (created on first sight, as entities);
//! the weight column is optional and defaults to 1.0. The delimiter is
//! configurable (KONECT uses whitespace/tabs, most exports use commas).

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{KnowledgeGraph, NodeKind};
use std::io::{BufRead, BufReader, Read, Write};

/// Options for CSV parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsvOptions {
    /// Field delimiter (`b','` for CSV, `b'\t'` for TSV, `b' '` for
    /// KONECT-style space-separated lists).
    pub delimiter: u8,
    /// Normalize out-edge weights after loading.
    pub normalize: bool,
    /// Accumulate duplicate `(source, target)` rows instead of rejecting
    /// them (KONECT multigraphs contain repeats).
    pub accumulate_duplicates: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: b',',
            normalize: false,
            accumulate_duplicates: true,
        }
    }
}

/// Reads an edge list into a [`KnowledgeGraph`] of entity nodes.
pub fn read_edge_list(r: impl Read, opts: &CsvOptions) -> Result<KnowledgeGraph, GraphError> {
    let reader = BufReader::new(r);
    let delim = opts.delimiter as char;
    let mut b = GraphBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| GraphError::Corrupt(format!("read error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = trimmed
            .split(delim)
            .map(str::trim)
            .filter(|f| !f.is_empty());
        let (Some(src), Some(dst)) = (fields.next(), fields.next()) else {
            return Err(GraphError::Corrupt(format!(
                "line {}: expected at least source{delim}target",
                lineno + 1
            )));
        };
        let weight = match fields.next() {
            None => 1.0,
            Some(w) => w.parse::<f64>().map_err(|_| {
                GraphError::Corrupt(format!("line {}: bad weight {w:?}", lineno + 1))
            })?,
        };
        let from = b.add_node(src, NodeKind::Entity);
        let to = b.add_node(dst, NodeKind::Entity);
        if opts.accumulate_duplicates {
            b.add_or_accumulate_edge(from, to, weight)?;
        } else {
            b.add_edge(from, to, weight)?;
        }
    }
    let mut g = b.build();
    if opts.normalize {
        g.normalize_out_edges();
    }
    Ok(g)
}

/// Writes the graph as a `source,target,weight` edge list (labels are the
/// node labels; a header comment records the counts).
pub fn write_edge_list(
    graph: &KnowledgeGraph,
    mut w: impl Write,
    delimiter: u8,
) -> std::io::Result<()> {
    let d = delimiter as char;
    writeln!(
        w,
        "# votekg edge list: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    )?;
    for e in graph.edges() {
        writeln!(
            w,
            "{}{d}{}{d}{}",
            graph.label(e.from),
            graph.label(e.to),
            e.weight
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_weighted_csv() {
        let data = "# a comment\nalpha,beta,0.5\nbeta,gamma,0.25\n\nalpha,gamma,1.0\n";
        let g = read_edge_list(data.as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        let a = g.find_node("alpha").unwrap();
        let bnode = g.find_node("beta").unwrap();
        assert_eq!(g.weight_between(a, bnode), 0.5);
    }

    #[test]
    fn unweighted_rows_default_to_one() {
        let g = read_edge_list("x,y\ny,z\n".as_bytes(), &CsvOptions::default()).unwrap();
        let x = g.find_node("x").unwrap();
        let y = g.find_node("y").unwrap();
        assert_eq!(g.weight_between(x, y), 1.0);
    }

    #[test]
    fn konect_style_whitespace_lists() {
        let data = "% KONECT header\n1\t2\n2\t3\n1\t3\n";
        let opts = CsvOptions {
            delimiter: b'\t',
            ..Default::default()
        };
        let g = read_edge_list(data.as_bytes(), &opts).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn duplicates_accumulate_by_default() {
        let g = read_edge_list("a,b,0.3\na,b,0.2\n".as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(g.edge_count(), 1);
        let a = g.find_node("a").unwrap();
        let b = g.find_node("b").unwrap();
        assert!((g.weight_between(a, b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicates_rejected_when_strict() {
        let opts = CsvOptions {
            accumulate_duplicates: false,
            ..Default::default()
        };
        assert!(read_edge_list("a,b\na,b\n".as_bytes(), &opts).is_err());
    }

    #[test]
    fn normalization_option_applies() {
        let opts = CsvOptions {
            normalize: true,
            ..Default::default()
        };
        let g = read_edge_list("a,b,3\na,c,1\n".as_bytes(), &opts).unwrap();
        assert!(g.is_row_stochastic(1e-12));
        let a = g.find_node("a").unwrap();
        let b = g.find_node("b").unwrap();
        assert!((g.weight_between(a, b) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bad_weight_reports_line_number() {
        let err = read_edge_list("a,b,zero\n".as_bytes(), &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn missing_target_reports_line_number() {
        let err =
            read_edge_list("ok,fine\nlonely\n".as_bytes(), &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn write_read_roundtrip() {
        let g = read_edge_list("a,b,0.5\nb,c,0.25\n".as_bytes(), &CsvOptions::default()).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf, b',').unwrap();
        let g2 = read_edge_list(buf.as_slice(), &CsvOptions::default()).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for e in g.edges() {
            let from = g2.find_node(g.label(e.from)).unwrap();
            let to = g2.find_node(g.label(e.to)).unwrap();
            assert!((g2.weight_between(from, to) - e.weight).abs() < 1e-12);
        }
    }
}
