//! Graph (de)serialization: a human-readable JSON edge-list form, a
//! compact binary form built on [`bytes`], and a checksummed *durable
//! snapshot* form for crash recovery.
//!
//! The JSON form is the interchange format used by the experiment harness
//! to record which graph an experiment ran on; the binary form exists for
//! large synthetic graphs (the Gnutella-scale clone is ~150k edges) where
//! JSON parsing would dominate load time. The snapshot form wraps the
//! binary form with a magic/format header, the graph's
//! [`KnowledgeGraph::version`] (the epoch the vote WAL keys its records
//! by), and a CRC-32 trailer, so a half-written or bit-rotted snapshot
//! file is *detected* at load time instead of silently corrupting
//! recovery.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{KnowledgeGraph, NodeKind};
use crate::ids::NodeId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Serializable edge-list representation of a [`KnowledgeGraph`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphDoc {
    /// Node labels, in id order.
    pub labels: Vec<String>,
    /// Node kinds, in id order.
    pub kinds: Vec<NodeKind>,
    /// Edges as `(from, to, weight)` triples, in edge-id order.
    pub edges: Vec<(u32, u32, f64)>,
}

impl GraphDoc {
    /// Extracts the document from a graph.
    pub fn from_graph(graph: &KnowledgeGraph) -> Self {
        GraphDoc {
            labels: (0..graph.node_count())
                .map(|i| graph.label(NodeId(i as u32)).to_string())
                .collect(),
            kinds: (0..graph.node_count())
                .map(|i| graph.kind(NodeId(i as u32)))
                .collect(),
            edges: graph
                .edges()
                .map(|e| (e.from.0, e.to.0, e.weight))
                .collect(),
        }
    }

    /// Rebuilds the graph. Edge ids are preserved because edges are stored
    /// in id order.
    pub fn into_graph(self) -> Result<KnowledgeGraph, GraphError> {
        if self.labels.len() != self.kinds.len() {
            return Err(GraphError::Corrupt(format!(
                "{} labels but {} kinds",
                self.labels.len(),
                self.kinds.len()
            )));
        }
        let mut b = GraphBuilder::with_capacity(self.labels.len(), self.edges.len());
        for (label, kind) in self.labels.into_iter().zip(self.kinds) {
            b.add_node(label, kind);
        }
        if b.node_count() != b.find_node_count_check() {
            return Err(GraphError::Corrupt("duplicate node labels".into()));
        }
        for (from, to, w) in self.edges {
            b.add_edge(NodeId(from), NodeId(to), w)?;
        }
        Ok(b.build())
    }
}

impl GraphBuilder {
    /// Internal consistency helper for deserialization: number of distinct
    /// labels seen.
    fn find_node_count_check(&self) -> usize {
        self.node_count()
    }
}

/// Serializes a graph to a JSON string.
pub fn to_json(graph: &KnowledgeGraph) -> String {
    serde_json::to_string(&GraphDoc::from_graph(graph)).expect("graph serialization is infallible")
}

/// Deserializes a graph from a JSON string.
pub fn from_json(json: &str) -> Result<KnowledgeGraph, GraphError> {
    let doc: GraphDoc =
        serde_json::from_str(json).map_err(|e| GraphError::Corrupt(e.to_string()))?;
    doc.into_graph()
}

const BINARY_MAGIC: u32 = 0x564b_4731; // "VKG1"

/// Serializes a graph to the compact binary format.
pub fn to_bytes(graph: &KnowledgeGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + graph.node_count() * 12 + graph.edge_count() * 16);
    buf.put_u32(BINARY_MAGIC);
    buf.put_u32(graph.node_count() as u32);
    buf.put_u32(graph.edge_count() as u32);
    for v in graph.nodes() {
        let label = graph.label(v).as_bytes();
        buf.put_u32(label.len() as u32);
        buf.put_slice(label);
        buf.put_u8(match graph.kind(v) {
            NodeKind::Entity => 0,
            NodeKind::Query => 1,
            NodeKind::Answer => 2,
        });
    }
    for e in graph.edges() {
        buf.put_u32(e.from.0);
        buf.put_u32(e.to.0);
        buf.put_f64(e.weight);
    }
    buf.freeze()
}

/// Deserializes a graph from the compact binary format.
pub fn from_bytes(mut data: Bytes) -> Result<KnowledgeGraph, GraphError> {
    let need = |data: &Bytes, n: usize| -> Result<(), GraphError> {
        if data.remaining() < n {
            Err(GraphError::Corrupt("truncated binary graph".into()))
        } else {
            Ok(())
        }
    };
    need(&data, 12)?;
    if data.get_u32() != BINARY_MAGIC {
        return Err(GraphError::Corrupt("bad magic".into()));
    }
    let n = data.get_u32() as usize;
    let m = data.get_u32() as usize;
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        need(&data, 4)?;
        let len = data.get_u32() as usize;
        need(&data, len + 1)?;
        let label_bytes = data.copy_to_bytes(len);
        let label = std::str::from_utf8(&label_bytes)
            .map_err(|_| GraphError::Corrupt("non-utf8 label".into()))?
            .to_string();
        let kind = match data.get_u8() {
            0 => NodeKind::Entity,
            1 => NodeKind::Query,
            2 => NodeKind::Answer,
            k => return Err(GraphError::Corrupt(format!("unknown node kind {k}"))),
        };
        b.add_node(label, kind);
    }
    if b.node_count() != n {
        return Err(GraphError::Corrupt("duplicate node labels".into()));
    }
    for _ in 0..m {
        need(&data, 16)?;
        let from = NodeId(data.get_u32());
        let to = NodeId(data.get_u32());
        let w = data.get_f64();
        b.add_edge(from, to, w)?;
    }
    Ok(b.build())
}

// ------------------------------------------------------------- checksums

// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. This is the
// integrity check shared by the durable snapshot trailer below and the
// vote WAL's per-record framing in `kg-votes`.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// CRC-32 over the graph's weight vector *bits* (`f64::to_bits`,
/// little-endian, in edge-id order). Two graphs agree on this checksum
/// exactly when their weights are bit-identical — the property crash
/// recovery asserts after replaying the WAL tail.
pub fn weights_crc(graph: &KnowledgeGraph) -> u32 {
    let mut buf = Vec::with_capacity(graph.edge_count() * 8);
    for &w in graph.weights() {
        buf.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    crc32(&buf)
}

// ------------------------------------------------------- durable snapshots

const SNAPSHOT_MAGIC: u32 = 0x564b_4753; // "VKGS"
const SNAPSHOT_FORMAT: u32 = 1;

/// Serializes a graph to the durable snapshot format: magic, format
/// version, the graph's [`KnowledgeGraph::version`] (epoch), the binary
/// graph payload, and a CRC-32 trailer over everything before it.
pub fn to_snapshot_bytes(graph: &KnowledgeGraph) -> Bytes {
    let payload = to_bytes(graph);
    let mut buf = Vec::with_capacity(payload.len() + 24);
    buf.extend_from_slice(&SNAPSHOT_MAGIC.to_be_bytes());
    buf.extend_from_slice(&SNAPSHOT_FORMAT.to_be_bytes());
    buf.extend_from_slice(&graph.version().to_be_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&payload);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_be_bytes());
    Bytes::from_vec(buf)
}

/// Deserializes a durable snapshot, returning the graph with its version
/// counter restored to the stored epoch. Any framing damage — bad magic,
/// unknown format, truncation, or a CRC mismatch from a torn write or
/// bit flip — is a descriptive [`GraphError::Corrupt`], never a panic or
/// a silently wrong graph.
pub fn from_snapshot_bytes(data: Bytes) -> Result<(KnowledgeGraph, u64), GraphError> {
    let all = data.as_ref();
    if all.len() < 24 {
        return Err(GraphError::Corrupt(format!(
            "snapshot truncated: {} bytes is shorter than the fixed framing",
            all.len()
        )));
    }
    let body = &all[..all.len() - 4];
    let stored_crc = u32::from_be_bytes([
        all[all.len() - 4],
        all[all.len() - 3],
        all[all.len() - 2],
        all[all.len() - 1],
    ]);
    let actual_crc = crc32(body);
    if stored_crc != actual_crc {
        return Err(GraphError::Corrupt(format!(
            "snapshot checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x} \
             (torn write or bit corruption)"
        )));
    }
    let mut cur = data.slice(0..data.len() - 4);
    if cur.get_u32() != SNAPSHOT_MAGIC {
        return Err(GraphError::Corrupt("snapshot has bad magic".into()));
    }
    let format = cur.get_u32();
    if format != SNAPSHOT_FORMAT {
        return Err(GraphError::Corrupt(format!(
            "snapshot format {format} is not supported (expected {SNAPSHOT_FORMAT})"
        )));
    }
    let epoch_bytes = cur.copy_to_bytes(8);
    let mut epoch_arr = [0u8; 8];
    epoch_arr.copy_from_slice(epoch_bytes.as_ref());
    let epoch = u64::from_be_bytes(epoch_arr);
    let payload_len = cur.get_u32() as usize;
    if cur.remaining() != payload_len {
        return Err(GraphError::Corrupt(format!(
            "snapshot payload length {payload_len} does not match the {} bytes present",
            cur.remaining()
        )));
    }
    let mut graph = from_bytes(cur)?;
    graph.fast_forward_version(epoch);
    Ok((graph, epoch))
}

/// Writes a durable snapshot file atomically: the bytes go to
/// `<path>.tmp` first, are fsynced, and are then renamed over `path`, so
/// a crash mid-write never leaves a half-written file under the final
/// name (at worst a stale `.tmp` that the next write replaces).
pub fn write_snapshot_file(path: &Path, graph: &KnowledgeGraph) -> Result<(), GraphError> {
    use std::io::Write as _;
    let io_err = |stage: &str, e: std::io::Error| GraphError::Io {
        path: path.display().to_string(),
        message: format!("{stage}: {e}"),
    };
    let bytes = to_snapshot_bytes(graph);
    let tmp = path.with_extension("vkgs.tmp");
    let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create temp", e))?;
    f.write_all(bytes.as_ref())
        .map_err(|e| io_err("write", e))?;
    f.sync_all().map_err(|e| io_err("fsync", e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename", e))?;
    // Best-effort directory fsync so the rename itself is durable.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads and validates a durable snapshot file. See
/// [`from_snapshot_bytes`] for the failure modes.
pub fn read_snapshot_file(path: &Path) -> Result<(KnowledgeGraph, u64), GraphError> {
    let data = std::fs::read(path).map_err(|e| GraphError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    from_snapshot_bytes(Bytes::from_vec(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let q = b.add_node("query: outlook stuck", NodeKind::Query);
        let o = b.add_node("outlook", NodeKind::Entity);
        let e = b.add_node("email", NodeKind::Entity);
        let a = b.add_node("answer-1", NodeKind::Answer);
        b.add_edge(q, o, 0.5).unwrap();
        b.add_edge(q, e, 0.5).unwrap();
        b.add_edge(o, e, 0.4).unwrap();
        b.add_edge(e, a, 1.0).unwrap();
        b.build()
    }

    fn assert_same(a: &KnowledgeGraph, b: &KnowledgeGraph) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for v in a.nodes() {
            assert_eq!(a.label(v), b.label(v));
            assert_eq!(a.kind(v), b.kind(v));
        }
        for e in a.edges() {
            let (f, t) = b.endpoints(e.edge);
            assert_eq!((f, t), (e.from, e.to));
            assert_eq!(b.weight(e.edge), e.weight);
        }
    }

    #[test]
    fn json_roundtrip() {
        let g = sample();
        let j = to_json(&g);
        let g2 = from_json(&j).unwrap();
        assert_same(&g, &g2);
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let bytes = to_bytes(&g);
        let g2 = from_bytes(bytes).unwrap();
        assert_same(&g, &g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = BytesMut::new();
        buf.put_u32(0xdead_beef);
        buf.put_u32(0);
        buf.put_u32(0);
        assert!(from_bytes(buf.freeze()).is_err());
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = sample();
        let bytes = to_bytes(&g);
        let cut = bytes.slice(0..bytes.len() - 5);
        assert!(from_bytes(cut).is_err());
    }

    #[test]
    fn json_rejects_mismatched_lengths() {
        let doc = GraphDoc {
            labels: vec!["a".into()],
            kinds: vec![],
            edges: vec![],
        };
        let j = serde_json::to_string(&doc).unwrap();
        assert!(from_json(&j).is_err());
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(from_json("not json").is_err());
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = GraphBuilder::new().build();
        let g2 = from_json(&to_json(&g)).unwrap();
        assert_eq!(g2.node_count(), 0);
        let g3 = from_bytes(to_bytes(&g)).unwrap();
        assert_eq!(g3.edge_count(), 0);
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn weights_crc_tracks_bit_changes() {
        let mut g = sample();
        let before = weights_crc(&g);
        let e = g.edges().next().unwrap().edge;
        g.set_weight(e, 0.5 + f64::EPSILON).unwrap();
        assert_ne!(weights_crc(&g), before);
    }

    #[test]
    fn snapshot_roundtrip_restores_version_and_weights() {
        let mut g = sample();
        let e = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        g.set_weight(e, 0.123_456_789_012_345).unwrap();
        g.set_weight(e, 0.723_456_789_012_345).unwrap();
        assert!(g.version() > 0);

        let bytes = to_snapshot_bytes(&g);
        let (g2, epoch) = from_snapshot_bytes(bytes).unwrap();
        assert_same(&g, &g2);
        assert_eq!(epoch, g.version());
        assert_eq!(g2.version(), g.version());
        assert_eq!(weights_crc(&g2), weights_crc(&g));
        for (a, b) in g.weights().iter().zip(g2.weights()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn snapshot_rejects_bit_flip_anywhere() {
        let g = sample();
        let bytes = to_snapshot_bytes(&g).to_vec();
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 0x10;
            let err = from_snapshot_bytes(Bytes::from_vec(flipped))
                .expect_err("bit flip must be detected");
            assert!(matches!(err, GraphError::Corrupt(_)), "byte {byte}: {err}");
        }
    }

    #[test]
    fn snapshot_rejects_truncation_at_every_length() {
        let g = sample();
        let bytes = to_snapshot_bytes(&g).to_vec();
        for cut in 0..bytes.len() {
            let err = from_snapshot_bytes(Bytes::from_vec(bytes[..cut].to_vec()))
                .expect_err("truncation must be detected");
            assert!(matches!(err, GraphError::Corrupt(_)), "cut {cut}: {err}");
        }
    }

    #[test]
    fn snapshot_rejects_unknown_format() {
        let g = sample();
        let mut bytes = to_snapshot_bytes(&g).to_vec();
        // Bump the format field and re-stamp the CRC so only the version
        // check can reject it.
        bytes[7] = 9;
        let crc_at = bytes.len() - 4;
        let crc = crc32(&bytes[..crc_at]);
        bytes[crc_at..].copy_from_slice(&crc.to_be_bytes());
        let err = from_snapshot_bytes(Bytes::from_vec(bytes)).unwrap_err();
        assert!(err.to_string().contains("format 9"), "{err}");
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "votekg-io-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot-0.vkgs");
        let g = sample();
        write_snapshot_file(&path, &g).unwrap();
        let (g2, epoch) = read_snapshot_file(&path).unwrap();
        assert_same(&g, &g2);
        assert_eq!(epoch, 0);
        assert!(!path.with_extension("vkgs.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_file_is_io_error() {
        let err = read_snapshot_file(Path::new("/nonexistent/votekg.vkgs")).unwrap_err();
        assert!(matches!(err, GraphError::Io { .. }), "{err}");
    }
}
