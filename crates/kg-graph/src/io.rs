//! Graph (de)serialization: a human-readable JSON edge-list form and a
//! compact binary form built on [`bytes`].
//!
//! The JSON form is the interchange format used by the experiment harness
//! to record which graph an experiment ran on; the binary form exists for
//! large synthetic graphs (the Gnutella-scale clone is ~150k edges) where
//! JSON parsing would dominate load time.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{KnowledgeGraph, NodeKind};
use crate::ids::NodeId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Serializable edge-list representation of a [`KnowledgeGraph`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphDoc {
    /// Node labels, in id order.
    pub labels: Vec<String>,
    /// Node kinds, in id order.
    pub kinds: Vec<NodeKind>,
    /// Edges as `(from, to, weight)` triples, in edge-id order.
    pub edges: Vec<(u32, u32, f64)>,
}

impl GraphDoc {
    /// Extracts the document from a graph.
    pub fn from_graph(graph: &KnowledgeGraph) -> Self {
        GraphDoc {
            labels: (0..graph.node_count())
                .map(|i| graph.label(NodeId(i as u32)).to_string())
                .collect(),
            kinds: (0..graph.node_count())
                .map(|i| graph.kind(NodeId(i as u32)))
                .collect(),
            edges: graph
                .edges()
                .map(|e| (e.from.0, e.to.0, e.weight))
                .collect(),
        }
    }

    /// Rebuilds the graph. Edge ids are preserved because edges are stored
    /// in id order.
    pub fn into_graph(self) -> Result<KnowledgeGraph, GraphError> {
        if self.labels.len() != self.kinds.len() {
            return Err(GraphError::Corrupt(format!(
                "{} labels but {} kinds",
                self.labels.len(),
                self.kinds.len()
            )));
        }
        let mut b = GraphBuilder::with_capacity(self.labels.len(), self.edges.len());
        for (label, kind) in self.labels.into_iter().zip(self.kinds) {
            b.add_node(label, kind);
        }
        if b.node_count() != b.find_node_count_check() {
            return Err(GraphError::Corrupt("duplicate node labels".into()));
        }
        for (from, to, w) in self.edges {
            b.add_edge(NodeId(from), NodeId(to), w)?;
        }
        Ok(b.build())
    }
}

impl GraphBuilder {
    /// Internal consistency helper for deserialization: number of distinct
    /// labels seen.
    fn find_node_count_check(&self) -> usize {
        self.node_count()
    }
}

/// Serializes a graph to a JSON string.
pub fn to_json(graph: &KnowledgeGraph) -> String {
    serde_json::to_string(&GraphDoc::from_graph(graph)).expect("graph serialization is infallible")
}

/// Deserializes a graph from a JSON string.
pub fn from_json(json: &str) -> Result<KnowledgeGraph, GraphError> {
    let doc: GraphDoc =
        serde_json::from_str(json).map_err(|e| GraphError::Corrupt(e.to_string()))?;
    doc.into_graph()
}

const BINARY_MAGIC: u32 = 0x564b_4731; // "VKG1"

/// Serializes a graph to the compact binary format.
pub fn to_bytes(graph: &KnowledgeGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + graph.node_count() * 12 + graph.edge_count() * 16);
    buf.put_u32(BINARY_MAGIC);
    buf.put_u32(graph.node_count() as u32);
    buf.put_u32(graph.edge_count() as u32);
    for v in graph.nodes() {
        let label = graph.label(v).as_bytes();
        buf.put_u32(label.len() as u32);
        buf.put_slice(label);
        buf.put_u8(match graph.kind(v) {
            NodeKind::Entity => 0,
            NodeKind::Query => 1,
            NodeKind::Answer => 2,
        });
    }
    for e in graph.edges() {
        buf.put_u32(e.from.0);
        buf.put_u32(e.to.0);
        buf.put_f64(e.weight);
    }
    buf.freeze()
}

/// Deserializes a graph from the compact binary format.
pub fn from_bytes(mut data: Bytes) -> Result<KnowledgeGraph, GraphError> {
    let need = |data: &Bytes, n: usize| -> Result<(), GraphError> {
        if data.remaining() < n {
            Err(GraphError::Corrupt("truncated binary graph".into()))
        } else {
            Ok(())
        }
    };
    need(&data, 12)?;
    if data.get_u32() != BINARY_MAGIC {
        return Err(GraphError::Corrupt("bad magic".into()));
    }
    let n = data.get_u32() as usize;
    let m = data.get_u32() as usize;
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        need(&data, 4)?;
        let len = data.get_u32() as usize;
        need(&data, len + 1)?;
        let label_bytes = data.copy_to_bytes(len);
        let label = std::str::from_utf8(&label_bytes)
            .map_err(|_| GraphError::Corrupt("non-utf8 label".into()))?
            .to_string();
        let kind = match data.get_u8() {
            0 => NodeKind::Entity,
            1 => NodeKind::Query,
            2 => NodeKind::Answer,
            k => return Err(GraphError::Corrupt(format!("unknown node kind {k}"))),
        };
        b.add_node(label, kind);
    }
    if b.node_count() != n {
        return Err(GraphError::Corrupt("duplicate node labels".into()));
    }
    for _ in 0..m {
        need(&data, 16)?;
        let from = NodeId(data.get_u32());
        let to = NodeId(data.get_u32());
        let w = data.get_f64();
        b.add_edge(from, to, w)?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let q = b.add_node("query: outlook stuck", NodeKind::Query);
        let o = b.add_node("outlook", NodeKind::Entity);
        let e = b.add_node("email", NodeKind::Entity);
        let a = b.add_node("answer-1", NodeKind::Answer);
        b.add_edge(q, o, 0.5).unwrap();
        b.add_edge(q, e, 0.5).unwrap();
        b.add_edge(o, e, 0.4).unwrap();
        b.add_edge(e, a, 1.0).unwrap();
        b.build()
    }

    fn assert_same(a: &KnowledgeGraph, b: &KnowledgeGraph) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for v in a.nodes() {
            assert_eq!(a.label(v), b.label(v));
            assert_eq!(a.kind(v), b.kind(v));
        }
        for e in a.edges() {
            let (f, t) = b.endpoints(e.edge);
            assert_eq!((f, t), (e.from, e.to));
            assert_eq!(b.weight(e.edge), e.weight);
        }
    }

    #[test]
    fn json_roundtrip() {
        let g = sample();
        let j = to_json(&g);
        let g2 = from_json(&j).unwrap();
        assert_same(&g, &g2);
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let bytes = to_bytes(&g);
        let g2 = from_bytes(bytes).unwrap();
        assert_same(&g, &g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = BytesMut::new();
        buf.put_u32(0xdead_beef);
        buf.put_u32(0);
        buf.put_u32(0);
        assert!(from_bytes(buf.freeze()).is_err());
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = sample();
        let bytes = to_bytes(&g);
        let cut = bytes.slice(0..bytes.len() - 5);
        assert!(from_bytes(cut).is_err());
    }

    #[test]
    fn json_rejects_mismatched_lengths() {
        let doc = GraphDoc {
            labels: vec!["a".into()],
            kinds: vec![],
            edges: vec![],
        };
        let j = serde_json::to_string(&doc).unwrap();
        assert!(from_json(&j).is_err());
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(from_json("not json").is_err());
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = GraphBuilder::new().build();
        let g2 = from_json(&to_json(&g)).unwrap();
        assert_eq!(g2.node_count(), 0);
        let g3 = from_bytes(to_bytes(&g)).unwrap();
        assert_eq!(g3.edge_count(), 0);
    }
}
