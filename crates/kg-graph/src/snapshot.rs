//! Weight snapshots: capture, restore, and diff the weight vector.
//!
//! The optimization pipeline constantly needs "what changed?" views: the
//! SGP objective penalizes drift from the pre-vote weights (Eq. 12), and
//! the split-and-merge strategy merges per-cluster *deltas* (Section VI).

use crate::graph::KnowledgeGraph;
use crate::ids::EdgeId;
use serde::{Deserialize, Serialize};

/// An immutable copy of a graph's weight vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightSnapshot {
    weights: Vec<f64>,
}

impl WeightSnapshot {
    /// Captures the current weights of `graph`.
    pub fn capture(graph: &KnowledgeGraph) -> Self {
        Self {
            weights: graph.weights().to_vec(),
        }
    }

    /// Number of edges covered by the snapshot.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when the snapshot covers zero edges.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Weight of an edge at capture time.
    pub fn weight(&self, edge: EdgeId) -> f64 {
        self.weights[edge.index()]
    }

    /// Restores the captured weights onto `graph`. Edges whose weight
    /// actually moves are stamped in the graph's change log, so
    /// [`KnowledgeGraph::changes_since`] sees reverts like any other
    /// mutation.
    ///
    /// # Panics
    /// Panics if the graph's edge count differs from the snapshot's — the
    /// snapshot belongs to a different topology, and silently applying it
    /// would corrupt the weights.
    pub fn restore(&self, graph: &mut KnowledgeGraph) {
        assert_eq!(
            graph.edge_count(),
            self.weights.len(),
            "snapshot belongs to a graph with a different edge count"
        );
        for (i, &w) in self.weights.iter().enumerate() {
            if graph.weights[i] != w {
                graph.write_weight(EdgeId(i as u32), w);
                graph.mark_changed(EdgeId(i as u32));
            }
        }
    }

    /// Per-edge deltas `current - snapshot` for edges whose weight changed
    /// by more than `tol`, sorted by edge id.
    pub fn diff(&self, graph: &KnowledgeGraph, tol: f64) -> Vec<(EdgeId, f64)> {
        assert_eq!(
            graph.edge_count(),
            self.weights.len(),
            "snapshot belongs to a graph with a different edge count"
        );
        graph
            .weights()
            .iter()
            .zip(&self.weights)
            .enumerate()
            .filter_map(|(i, (now, then))| {
                let d = now - then;
                (d.abs() > tol).then_some((EdgeId(i as u32), d))
            })
            .collect()
    }

    /// Squared Euclidean distance between the snapshot and the graph's
    /// current weights — the paper's drift measure `d(X, X*)` (Eq. 12).
    pub fn squared_distance(&self, graph: &KnowledgeGraph) -> f64 {
        graph
            .weights()
            .iter()
            .zip(&self.weights)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Raw weight slice, indexed by edge id.
    pub fn as_slice(&self) -> &[f64] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::NodeKind;

    fn little() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", NodeKind::Entity);
        let c = b.add_node("c", NodeKind::Entity);
        let d = b.add_node("d", NodeKind::Entity);
        b.add_edge(a, c, 0.5).unwrap();
        b.add_edge(c, d, 0.25).unwrap();
        b.build()
    }

    #[test]
    fn capture_and_restore_roundtrip() {
        let mut g = little();
        let snap = WeightSnapshot::capture(&g);
        g.set_weight(EdgeId(0), 0.9).unwrap();
        g.set_weight(EdgeId(1), 0.1).unwrap();
        snap.restore(&mut g);
        assert_eq!(g.weight(EdgeId(0)), 0.5);
        assert_eq!(g.weight(EdgeId(1)), 0.25);
    }

    #[test]
    fn diff_reports_only_changed_edges() {
        let mut g = little();
        let snap = WeightSnapshot::capture(&g);
        g.set_weight(EdgeId(1), 0.35).unwrap();
        let d = snap.diff(&g, 1e-12);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, EdgeId(1));
        assert!((d[0].1 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn diff_respects_tolerance() {
        let mut g = little();
        let snap = WeightSnapshot::capture(&g);
        g.set_weight(EdgeId(0), 0.5 + 1e-9).unwrap();
        assert!(snap.diff(&g, 1e-6).is_empty());
        assert_eq!(snap.diff(&g, 1e-12).len(), 1);
    }

    #[test]
    fn squared_distance_matches_manual_sum() {
        let mut g = little();
        let snap = WeightSnapshot::capture(&g);
        g.set_weight(EdgeId(0), 0.7).unwrap(); // delta 0.2
        g.set_weight(EdgeId(1), 0.15).unwrap(); // delta -0.1
        let want = 0.2f64 * 0.2 + 0.1 * 0.1;
        assert!((snap.squared_distance(&g) - want).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different edge count")]
    fn restore_on_mismatched_graph_panics() {
        let g = little();
        let snap = WeightSnapshot::capture(&g);
        let mut other = GraphBuilder::new().build();
        snap.restore(&mut other);
    }
}
