//! Weight-change deltas: the answer to "which edges moved since version
//! `v`?".
//!
//! The serving layer caches per-query rankings keyed by
//! [`crate::KnowledgeGraph::version`]; after an optimization round it asks the
//! graph for a [`WeightDelta`] and invalidates only the queries whose
//! similarity the changed edges can reach (see `kg_sim::affected_queries`).
//! The graph keeps one `u64` stamp per edge rather than an append-only
//! changelog, so delta extraction is `O(|E|)` and memory stays flat no
//! matter how many optimization rounds run.

use crate::ids::EdgeId;
use serde::{Deserialize, Serialize};

/// The set of edges whose weight changed in a version interval
/// `(from_version, to_version]`, produced by
/// [`crate::KnowledgeGraph::changes_since`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightDelta {
    /// Exclusive lower bound of the covered interval (the version the
    /// caller last synchronized at).
    pub from_version: u64,
    /// Inclusive upper bound: the graph's version when the delta was
    /// taken.
    pub to_version: u64,
    /// Changed edges, in increasing id order.
    pub edges: Vec<EdgeId>,
}

impl WeightDelta {
    /// True when no edge changed in the interval.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of changed edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when this delta describes exactly the interval
    /// `(from, to]` — the memoization key the serving layer uses to share
    /// one extraction across cache shards syncing over the same epoch
    /// transition.
    pub fn covers(&self, from: u64, to: u64) -> bool {
        self.from_version == from && self.to_version == to
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::{KnowledgeGraph, NodeKind};
    use crate::snapshot::WeightSnapshot;

    fn triangle() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", NodeKind::Entity);
        let c = b.add_node("c", NodeKind::Entity);
        let d = b.add_node("d", NodeKind::Entity);
        b.add_edge(a, c, 0.5).unwrap();
        b.add_edge(c, d, 0.25).unwrap();
        b.add_edge(d, a, 0.25).unwrap();
        b.build()
    }

    #[test]
    fn fresh_graph_is_version_zero_with_no_changes() {
        let g = triangle();
        assert_eq!(g.version(), 0);
        let d = g.changes_since(0);
        assert!(d.is_empty());
        assert_eq!(d.from_version, 0);
        assert_eq!(d.to_version, 0);
    }

    #[test]
    fn set_weight_bumps_version_and_reports_edge() {
        let mut g = triangle();
        g.set_weight(EdgeId(1), 0.9).unwrap();
        assert_eq!(g.version(), 1);
        let d = g.changes_since(0);
        assert_eq!(d.edges, vec![EdgeId(1)]);
        assert_eq!(d.to_version, 1);
        // Catching up leaves nothing pending.
        assert!(g.changes_since(g.version()).is_empty());
    }

    #[test]
    fn writing_the_same_value_is_not_a_change() {
        let mut g = triangle();
        g.set_weight(EdgeId(0), 0.5).unwrap();
        assert_eq!(g.version(), 0);
        assert!(g.changes_since(0).is_empty());
    }

    #[test]
    fn deltas_cover_only_the_requested_interval() {
        let mut g = triangle();
        g.set_weight(EdgeId(0), 0.6).unwrap();
        let mid = g.version();
        g.set_weight(EdgeId(2), 0.1).unwrap();
        g.set_weight(EdgeId(0), 0.7).unwrap(); // edge 0 changes again
        let d = g.changes_since(mid);
        assert_eq!(d.edges, vec![EdgeId(0), EdgeId(2)]);
        assert_eq!(d.from_version, mid);
        assert_eq!(d.to_version, g.version());
        // The full history still reports each edge once.
        assert_eq!(g.changes_since(0).len(), 2);
    }

    #[test]
    fn normalization_stamps_scaled_edges() {
        let mut g = triangle();
        let v0 = g.version();
        g.set_weight(EdgeId(0), 3.0).unwrap();
        g.normalize_out_edges();
        let d = g.changes_since(v0);
        assert!(d.edges.contains(&EdgeId(0)));
        assert!(g.version() > v0 + 1, "normalize must stamp its rescale");
        // Already-normalized rows (single out-edge of weight w scaled by
        // w/w = 1) are untouched only if the division is exact; edge 1 and
        // 2 each form their node's only out-edge, so sum == weight and the
        // scaled value is exactly 1.0 — a change from 0.25.
        assert!(d.edges.contains(&EdgeId(1)));
    }

    #[test]
    fn snapshot_restore_records_changes() {
        let mut g = triangle();
        let snap = WeightSnapshot::capture(&g);
        g.set_weight(EdgeId(1), 0.9).unwrap();
        let v_after_edit = g.version();
        snap.restore(&mut g);
        assert!(g.version() > v_after_edit);
        let d = g.changes_since(v_after_edit);
        assert_eq!(d.edges, vec![EdgeId(1)]);
        // Restoring identical weights is a no-op.
        let v = g.version();
        snap.restore(&mut g);
        assert_eq!(g.version(), v);
    }

    #[test]
    fn clone_continues_the_version_lineage() {
        let mut g = triangle();
        g.set_weight(EdgeId(0), 0.8).unwrap();
        let v = g.version();
        let mut c = g.clone();
        assert_eq!(c.version(), v);
        c.set_weight(EdgeId(2), 0.05).unwrap();
        assert_eq!(c.changes_since(v).edges, vec![EdgeId(2)]);
        // The original is unaffected.
        assert_eq!(g.version(), v);
    }
}
