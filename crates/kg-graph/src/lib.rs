//! Weighted directed knowledge-graph substrate for the `votekg` workspace.
//!
//! This crate provides the graph model described in Section III of
//! *"Optimizing Knowledge Graphs through Voting-based User Feedback"*
//! (ICDE 2020): a directed graph `G = (V, E, W)` whose nodes are entities
//! and whose edge weights encode semantic relevance, **augmented** with
//! query nodes and answer nodes that are linked into `G` but are not part
//! of `V` proper.
//!
//! Design notes:
//!
//! * Adjacency is stored in CSR (compressed sparse row) form for both the
//!   out- and in-direction, so forward walks (similarity evaluation) and
//!   backward walks (vote attribution) are both cache-friendly.
//! * Edge weights live in a single `Vec<f64>` indexed by [`EdgeId`]; the CSR
//!   arrays store edge ids, so the optimizer can update weights in `O(1)`
//!   without touching the topology.
//! * Topology is immutable after [`GraphBuilder::build`]; only weights
//!   change during optimization. This matches the paper, where user votes
//!   adjust weights but never add or remove edges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod builder;
pub mod csv;
pub mod delta;
pub mod error;
pub mod graph;
pub mod ids;
pub mod io;
pub mod shared;
pub mod snapshot;
pub mod stats;
pub mod subgraph;

pub use augment::{AugmentSpec, Augmented};
pub use builder::GraphBuilder;
pub use delta::WeightDelta;
pub use error::GraphError;
pub use graph::{EdgeRef, KnowledgeGraph, NodeKind};
pub use ids::{EdgeId, NodeId};
pub use shared::{ArcCell, GraphSnapshot, SharedGraph};
pub use snapshot::WeightSnapshot;
pub use stats::GraphStats;
pub use subgraph::Subgraph;
