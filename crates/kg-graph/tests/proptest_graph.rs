//! Property-based tests for the graph substrate: construction, CSR
//! integrity, normalization, snapshots and serialization.

use kg_graph::{GraphBuilder, KnowledgeGraph, NodeId, NodeKind, WeightSnapshot};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy producing an arbitrary simple directed weighted graph as
/// `(node_count, edges)` with unique `(from, to)` pairs.
fn arb_graph_parts() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.0f64..1.0);
        (Just(n), proptest::collection::vec(edge, 0..120)).prop_map(|(n, mut edges)| {
            let mut seen = HashSet::new();
            edges.retain(|&(f, t, _)| seen.insert((f, t)));
            (n, edges)
        })
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> KnowledgeGraph {
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for i in 0..n {
        b.add_node(format!("node-{i}"), NodeKind::Entity);
    }
    for &(f, t, w) in edges {
        b.add_edge(NodeId(f), NodeId(t), w).unwrap();
    }
    b.build()
}

proptest! {
    /// Every edge inserted is retrievable via edge_between with the exact
    /// weight, and the out/in CSR views agree with the edge list.
    #[test]
    fn csr_matches_edge_list((n, edges) in arb_graph_parts()) {
        let g = build(n, &edges);
        prop_assert_eq!(g.edge_count(), edges.len());
        for &(f, t, w) in &edges {
            let e = g.edge_between(NodeId(f), NodeId(t)).expect("edge present");
            prop_assert_eq!(g.weight(e), w);
            prop_assert_eq!(g.endpoints(e), (NodeId(f), NodeId(t)));
        }
        // Degrees sum to edge count in both directions.
        let out_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, edges.len());
        prop_assert_eq!(in_sum, edges.len());
    }

    /// Out-edge and in-edge iterators are consistent: edge e appears in
    /// out_edges(from) and in_edges(to) exactly once.
    #[test]
    fn adjacency_directions_agree((n, edges) in arb_graph_parts()) {
        let g = build(n, &edges);
        for e in g.edges() {
            let in_out = g.out_edges(e.from).filter(|x| x.edge == e.edge).count();
            let in_in = g.in_edges(e.to).filter(|x| x.edge == e.edge).count();
            prop_assert_eq!(in_out, 1);
            prop_assert_eq!(in_in, 1);
        }
    }

    /// Normalization makes every non-sink row sum to 1 and never produces
    /// negative or non-finite weights.
    #[test]
    fn normalization_is_row_stochastic((n, edges) in arb_graph_parts()) {
        let mut g = build(n, &edges);
        g.normalize_out_edges();
        for v in g.nodes() {
            let sum = g.out_weight_sum(v);
            if g.out_degree(v) > 0 && sum > 0.0 {
                prop_assert!((sum - 1.0).abs() < 1e-9, "row sum {}", sum);
            }
            for e in g.out_edges(v) {
                prop_assert!(e.weight.is_finite() && e.weight >= 0.0);
            }
        }
    }

    /// Normalization is idempotent.
    #[test]
    fn normalization_is_idempotent((n, edges) in arb_graph_parts()) {
        let mut g = build(n, &edges);
        g.normalize_out_edges();
        let snap = WeightSnapshot::capture(&g);
        g.normalize_out_edges();
        prop_assert!(snap.squared_distance(&g) < 1e-18);
    }

    /// Snapshot restore is an exact inverse of arbitrary weight mutations.
    #[test]
    fn snapshot_restores_exactly(
        (n, edges) in arb_graph_parts(),
        scale in 0.1f64..5.0,
    ) {
        let mut g = build(n, &edges);
        let snap = WeightSnapshot::capture(&g);
        let ids: Vec<_> = g.edges().map(|e| e.edge).collect();
        for e in &ids {
            let w = g.weight(*e);
            g.set_weight(*e, w * scale).unwrap();
        }
        snap.restore(&mut g);
        prop_assert_eq!(snap.squared_distance(&g), 0.0);
    }

    /// JSON and binary serialization are lossless.
    #[test]
    fn serialization_roundtrips((n, edges) in arb_graph_parts()) {
        let g = build(n, &edges);
        let via_json = kg_graph::io::from_json(&kg_graph::io::to_json(&g)).unwrap();
        let via_bin = kg_graph::io::from_bytes(kg_graph::io::to_bytes(&g)).unwrap();
        // JSON may lose the last ULP of a float; binary must be bit-exact.
        for (h, tol) in [(&via_json, 1e-15), (&via_bin, 0.0)] {
            prop_assert_eq!(h.node_count(), g.node_count());
            prop_assert_eq!(h.edge_count(), g.edge_count());
            for e in g.edges() {
                prop_assert_eq!(h.endpoints(e.edge), (e.from, e.to));
                prop_assert!((h.weight(e.edge) - e.weight).abs() <= tol);
            }
        }
    }
}
