//! Property tests for the shared-graph publication layer: arbitrary
//! interleavings of weight mutation, weight-snapshot capture/restore,
//! and snapshot publication are checked against a naive shadow model.
//!
//! Invariants pinned here:
//!
//! * `version()` is monotone non-decreasing under every operation —
//!   including `WeightSnapshot::restore`, which rolls weights *back* but
//!   must still move the version *forward* (the serving layer's
//!   forward-only shard caches depend on this).
//! * `changes_since(v)` is complete: every edge whose weight differs
//!   from its value at version `v` appears in the delta.
//! * Published [`GraphSnapshot`]s are frozen: later mutations of the
//!   writer's graph never leak into an already-published snapshot, and
//!   `SharedGraph::snapshot()` always returns the latest publication.

use kg_graph::{
    EdgeId, GraphBuilder, GraphSnapshot, KnowledgeGraph, NodeId, NodeKind, SharedGraph,
    WeightSnapshot,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// One step of the interleaving, chosen by the strategy.
#[derive(Debug, Clone)]
enum Op {
    /// `set_weight(edge % E, w)`.
    Set(usize, f64),
    /// Capture a [`WeightSnapshot`] (pushed on a stack).
    Capture,
    /// Restore the most recently captured snapshot, if any.
    Restore,
    /// Publish the current graph through the [`SharedGraph`].
    Publish,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0usize..64, 0.05f64..2.0).prop_map(|(e, w)| Op::Set(e, w)),
        Just(Op::Capture),
        Just(Op::Restore),
        Just(Op::Publish),
    ];
    proptest::collection::vec(op, 1..60)
}

/// A fixed small graph: 8 nodes in a dense-ish weighted digraph.
fn base_graph() -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..8)
        .map(|i| b.add_node(format!("n{i}"), NodeKind::Entity))
        .collect();
    let mut w = 0.11f64;
    for (i, &from) in nodes.iter().enumerate() {
        for (j, &to) in nodes.iter().enumerate() {
            if i != j && (i + 2 * j) % 3 == 0 {
                b.add_edge(from, to, w).unwrap();
                w = (w * 1.37) % 1.0 + 0.05;
            }
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The full interleaving property: run an arbitrary op sequence and
    /// check version monotonicity, delta completeness against a shadow
    /// weight map, and snapshot immutability at every publication.
    #[test]
    fn interleavings_preserve_version_and_delta_invariants(ops in arb_ops()) {
        let mut graph = base_graph();
        let edge_count = graph.edge_count();
        prop_assert!(edge_count > 0);
        let edges: Vec<EdgeId> = graph.edges().map(|e| e.edge).collect();

        let shared = SharedGraph::new(graph.clone());
        let v0 = graph.version();
        // Shadow model: edge -> weight, tracked naively alongside.
        let mut shadow: HashMap<EdgeId, f64> =
            edges.iter().map(|&e| (e, graph.weight(e))).collect();
        let initial = shadow.clone();
        let mut captured: Vec<(WeightSnapshot, HashMap<EdgeId, f64>)> = Vec::new();
        // (published snapshot, shadow at publication time)
        let mut published: Vec<(GraphSnapshot, HashMap<EdgeId, f64>)> =
            vec![(shared.snapshot(), shadow.clone())];
        let mut last_version = graph.version();

        for op in &ops {
            match op {
                Op::Set(i, w) => {
                    let e = edges[i % edges.len()];
                    graph.set_weight(e, *w).unwrap();
                    shadow.insert(e, *w);
                }
                Op::Capture => {
                    captured.push((WeightSnapshot::capture(&graph), shadow.clone()));
                }
                Op::Restore => {
                    if let Some((snap, at_capture)) = captured.pop() {
                        snap.restore(&mut graph);
                        shadow = at_capture;
                    }
                }
                Op::Publish => {
                    let snap = shared.publish(&graph);
                    prop_assert_eq!(snap.epoch(), graph.version());
                    prop_assert_eq!(shared.epoch(), graph.version());
                    published.push((snap, shadow.clone()));
                }
            }
            // Version never moves backwards, whatever the op — restore
            // included.
            prop_assert!(
                graph.version() >= last_version,
                "version regressed: {} -> {}",
                last_version,
                graph.version()
            );
            last_version = graph.version();

            // The graph agrees with the shadow model after every step.
            for (&e, &w) in &shadow {
                prop_assert_eq!(graph.weight(e), w);
            }
        }

        // Delta completeness: every edge that ended up different from its
        // initial weight is reported by changes_since(v0).
        let delta = graph.changes_since(v0);
        for (&e, &w) in &shadow {
            if w != initial[&e] {
                prop_assert!(
                    delta.edges.contains(&e),
                    "edge {:?} changed {} -> {} but is missing from changes_since({})",
                    e,
                    initial[&e],
                    w,
                    v0
                );
            }
        }
        prop_assert_eq!(delta.to_version, graph.version());

        // Published snapshots are frozen at their shadow state, epochs
        // are monotone in publication order, and the shared cell serves
        // the latest one.
        let mut prev_epoch = 0u64;
        for (snap, at_publish) in &published {
            prop_assert!(snap.epoch() >= prev_epoch);
            prev_epoch = snap.epoch();
            for (&e, &w) in at_publish {
                prop_assert_eq!(snap.weight(e), w);
            }
        }
        prop_assert_eq!(shared.snapshot().epoch(), prev_epoch);

        // A snapshot's delta view is coherent: edges that changed after
        // its epoch are exactly those where the live graph disagrees
        // with it (completeness direction).
        let (last_snap, _) = published.last().unwrap();
        let since = graph.changes_since(last_snap.epoch());
        for &e in &edges {
            if graph.weight(e) != last_snap.weight(e) {
                prop_assert!(
                    since.edges.contains(&e),
                    "edge {:?} differs from snapshot epoch {} but not in delta",
                    e,
                    last_snap.epoch()
                );
            }
        }
    }
}
