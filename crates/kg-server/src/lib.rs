//! votekg's wire-protocol front-end: a zero-dependency TCP server that
//! exposes the lock-free serving path (PR 5) and the durable vote/
//! optimize write path (PR 9) over the network.
//!
//! Two wire formats share one port, selected by the connection's first
//! four bytes (see [`protocol`]):
//!
//! * **HTTP/1.1** (keep-alive, `Content-Length` bodies): `GET|POST
//!   /rank`, `POST /rank_batch`, `POST /vote`, `POST /optimize`,
//!   `GET /stats`, `GET /metrics` (Prometheus), `GET /healthz`,
//!   `POST /shutdown`.
//! * **Binary** (`VKB1` preamble, `[len u32][op u8][payload]` frames):
//!   rank / vote / stats / ping, with ranking scores as `f64::to_bits`
//!   for bit-exact client-side verification.
//!
//! [`KgServer`] runs a fixed worker pool of [`votekg::ServeHandle`]
//! clones — ranking requests never take a lock — over a bounded accept
//! queue (excess connections get an immediate 503), with the single
//! mutex-guarded [`votekg::Framework`] behind votes and optimization
//! triggers. On durable frameworks every acknowledged vote is fsynced
//! into the WAL first. See `DESIGN.md` ("Network serving") for the
//! full protocol and threading write-up.

pub mod client;
pub mod protocol;
mod server;

pub use client::{BinClient, BinVoteAck, ClientError, HttpClient, HttpResponse};
pub use server::{
    DrainReport, KgServer, ServerConfig, ServerStatsSnapshot, MAX_ANSWERS_PER_REQUEST,
    MAX_BATCH_QUERIES,
};

#[cfg(test)]
mod tests {
    use super::*;
    use kg_datasets::{simulate_user_study, UserStudyConfig};
    use votekg::{Framework, FrameworkConfig};

    fn start_test_server() -> (KgServer, Vec<(u32, Vec<u32>)>) {
        let study = simulate_user_study(&UserStudyConfig {
            entities: 40,
            edges: 300,
            n_docs: 24,
            n_votes: 6,
            n_test: 3,
            top_k: 5,
            seed: 11,
            ..Default::default()
        });
        let questions: Vec<(u32, Vec<u32>)> = study
            .votes
            .votes
            .iter()
            .map(|v| (v.query.0, v.answers.iter().map(|a| a.0).collect()))
            .collect();
        let fw = Framework::new(study.deployed.clone(), FrameworkConfig::default());
        let server = KgServer::start(
            fw,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        (server, questions)
    }

    #[test]
    fn http_round_trip_rank_vote_stats() {
        let (server, questions) = start_test_server();
        let mut client = HttpClient::connect(server.addr()).expect("connect");

        let (q, answers) = &questions[0];
        let body = format!(
            "{{\"query\":{q},\"answers\":[{}]}}",
            answers
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        let resp = client.post_json("/rank", &body).expect("rank");
        let doc = resp.json().expect("rank json");
        let ranking = doc.get("ranking").and_then(|r| r.as_array()).unwrap();
        assert_eq!(ranking.len(), answers.len());

        // Same rank over GET with query parameters.
        let path = format!(
            "/rank?query={q}&answers={}",
            answers
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        let get_doc = client.get(&path).expect("GET rank").json().unwrap();
        assert_eq!(
            get_doc
                .get("ranking")
                .and_then(|r| r.as_array())
                .unwrap()
                .len(),
            answers.len()
        );

        let vote_body = format!(
            "{{\"query\":{q},\"answers\":[{}],\"best\":{}}}",
            answers
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(","),
            answers[answers.len() - 1]
        );
        let vote = client.post_json("/vote", &vote_body).expect("vote");
        let vote_doc = vote.json().unwrap();
        assert!(vote_doc.get("kind").and_then(|k| k.as_str()).is_some());

        let stats = client.get("/stats").expect("stats").json().unwrap();
        let server_stats = stats.get("server").expect("server stats object");
        assert!(server_stats.get("rank_requests").unwrap().as_u64().unwrap() >= 2);
        assert_eq!(
            server_stats.get("vote_requests").unwrap().as_u64().unwrap(),
            1
        );

        let metrics = client.get("/metrics").expect("metrics").text();
        assert!(metrics.contains("votekg_server_requests_total{endpoint=\"rank\"}"));

        let report = server.shutdown();
        assert!(report.clean, "drain must be clean: {report:?}");
    }

    #[test]
    fn binary_round_trip_matches_local_evaluation() {
        let (server, questions) = start_test_server();
        let handle = server.handle();
        let mut client = BinClient::connect(server.addr()).expect("connect");
        client.ping().expect("ping");

        let (q, answers) = &questions[0];
        let resp = client.rank(*q, answers, 0).expect("bin rank");
        assert_eq!(resp.epoch, handle.epoch());
        let local = handle.rank(
            kg_graph::NodeId(*q),
            &answers
                .iter()
                .map(|&a| kg_graph::NodeId(a))
                .collect::<Vec<_>>(),
            answers.len(),
        );
        let local_bits: Vec<(u32, u64)> = local
            .iter()
            .map(|a| (a.node.0, a.score.to_bits()))
            .collect();
        let wire_bits: Vec<(u32, u64)> = resp
            .ranking
            .iter()
            .map(|a| (a.node, a.score_bits))
            .collect();
        assert_eq!(wire_bits, local_bits, "wire ranking must be bit-identical");

        let ack = client.vote(*q, answers[0], answers).expect("bin vote");
        assert!(
            !ack.durable,
            "non-durable framework never claims durability"
        );

        let stats = client.stats().expect("bin stats");
        assert!(stats.contains("\"bin_requests\""));

        let report = server.shutdown();
        assert!(report.clean);
    }

    #[test]
    fn descriptive_errors_for_bad_requests() {
        let (server, questions) = start_test_server();
        let mut client = HttpClient::connect(server.addr()).expect("connect");

        let err = client.post_json("/rank", "{\"query\":1}").unwrap_err();
        match err {
            ClientError::Server { code: 400, message } => {
                assert!(message.contains("answers"), "{message}")
            }
            other => panic!("expected 400 about answers, got {other}"),
        }

        let err = client
            .post_json("/rank", "{\"query\":999999,\"answers\":[0]}")
            .unwrap_err();
        match err {
            ClientError::Server { code: 400, message } => {
                assert!(message.contains("out of range"), "{message}")
            }
            other => panic!("expected out-of-range error, got {other}"),
        }

        let (q, answers) = &questions[0];
        // best not in answers: Vote::try_new must reject it descriptively.
        if let Some(outside) = questions
            .iter()
            .flat_map(|(_, a)| a.iter().copied())
            .find(|a| !answers.contains(a))
        {
            let body = format!(
                "{{\"query\":{q},\"answers\":[{}],\"best\":{outside}}}",
                answers
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            );
            let err = client.post_json("/vote", &body).unwrap_err();
            match err {
                ClientError::Server { code: 400, message } => {
                    assert!(message.contains("invalid vote"), "{message}")
                }
                other => panic!("expected invalid-vote error, got {other}"),
            }
        }

        assert_eq!(client.get("/healthz").expect("still alive").code, 200);
        let report = server.shutdown();
        assert!(report.clean);
    }
}
