//! The votekg network server: a fixed thread pool of [`ServeHandle`]
//! clones serving the lock-free rank path, one mutex-guarded
//! [`Framework`] behind the write path (votes, optimization triggers),
//! and a bounded accept queue for backpressure.
//!
//! # Threading model
//!
//! ```text
//!            TcpListener (acceptor thread)
//!                 │  push / reject-503
//!         bounded ConnQueue (Mutex + Condvar, depth = queue_depth)
//!                 │  pop
//!     worker 0 .. worker N-1   (each: ServeHandle clone, catch_unwind)
//!        │ rank / rank_batch        — lock-free snapshot reads
//!        │ vote / optimize          — Mutex<Framework> write path
//! ```
//!
//! Rankings never take the framework mutex: each worker ranks through a
//! cloned [`ServeHandle`] against the latest published epoch-stamped
//! snapshot, exactly like the in-process concurrent serving path.
//! Votes and optimization triggers serialize on the framework; on a
//! durable framework a vote is fsynced to the WAL before it is
//! acknowledged, so an acked vote survives any crash.
//!
//! # Drain semantics
//!
//! A shutdown request (the `POST /shutdown` endpoint or
//! [`KgServer::shutdown`]) flips one flag: the acceptor stops accepting,
//! already-queued connections are still served, in-flight requests
//! complete, and every response written during the drain carries
//! `Connection: close`. [`KgServer::shutdown`] then joins all threads
//! and reports whether the drain was clean (no worker panics).

use crate::protocol::{
    self, op, read_frame, read_http_request, status, write_frame, write_http_response, HttpRequest,
    Limits, RecvBuf, WireError, BIN_MAGIC,
};
use kg_graph::NodeId;
use kg_sim::RankedAnswer;
use kg_votes::Vote;
use serde::Serialize;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use votekg::{Framework, ServeHandle, Strategy};

/// Answers-per-request cap: bounds per-request work independently of
/// the byte-size caps.
pub const MAX_ANSWERS_PER_REQUEST: usize = 4096;

/// Queries-per-batch cap for `rank_batch`.
pub const MAX_BATCH_QUERIES: usize = 1024;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an OS-assigned port.
    pub addr: String,
    /// Worker threads (each owns a [`ServeHandle`] clone).
    pub workers: usize,
    /// Bounded accept-queue depth; connections past it get an
    /// immediate 503 and a close (backpressure, never unbounded memory).
    pub queue_depth: usize,
    /// Per-socket read timeout: bounds slow-loris writers and idle
    /// keep-alive connections.
    pub read_timeout: Duration,
    /// Per-socket write timeout: bounds peers that stop draining
    /// responses.
    pub write_timeout: Duration,
    /// Wire-format size caps.
    pub limits: Limits,
    /// On a durable framework, fsync the WAL before acknowledging each
    /// vote. An acked vote is then crash-proof; turning this off trades
    /// that guarantee for vote throughput.
    pub durable_acks: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 128,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            limits: Limits::default(),
            durable_acks: true,
        }
    }
}

/// Cumulative request counters, all relaxed atomics (the hot path
/// never locks to count).
#[derive(Debug, Default)]
struct ServerStats {
    connections_accepted: AtomicU64,
    connections_rejected_busy: AtomicU64,
    connections_closed: AtomicU64,
    http_requests: AtomicU64,
    bin_requests: AtomicU64,
    rank_requests: AtomicU64,
    rank_batch_requests: AtomicU64,
    vote_requests: AtomicU64,
    optimize_requests: AtomicU64,
    stats_requests: AtomicU64,
    metrics_requests: AtomicU64,
    health_requests: AtomicU64,
    shutdown_requests: AtomicU64,
    bad_requests: AtomicU64,
    not_found: AtomicU64,
    payload_too_large: AtomicU64,
    server_errors: AtomicU64,
    read_timeouts: AtomicU64,
    client_disconnects: AtomicU64,
    handler_panics: AtomicU64,
    votes_positive: AtomicU64,
    votes_negative: AtomicU64,
    votes_rejected: AtomicU64,
    optimize_rounds: AtomicU64,
}

macro_rules! snapshot_fields {
    ($stats:expr, $($field:ident),* $(,)?) => {
        ServerStatsSnapshot {
            $($field: $stats.$field.load(Ordering::Relaxed),)*
        }
    };
}

/// A point-in-time copy of the server counters (the `server` object in
/// `GET /stats` and the drain report).
#[derive(Debug, Clone, Serialize)]
pub struct ServerStatsSnapshot {
    pub connections_accepted: u64,
    pub connections_rejected_busy: u64,
    pub connections_closed: u64,
    pub http_requests: u64,
    pub bin_requests: u64,
    pub rank_requests: u64,
    pub rank_batch_requests: u64,
    pub vote_requests: u64,
    pub optimize_requests: u64,
    pub stats_requests: u64,
    pub metrics_requests: u64,
    pub health_requests: u64,
    pub shutdown_requests: u64,
    pub bad_requests: u64,
    pub not_found: u64,
    pub payload_too_large: u64,
    pub server_errors: u64,
    pub read_timeouts: u64,
    pub client_disconnects: u64,
    pub handler_panics: u64,
    pub votes_positive: u64,
    pub votes_negative: u64,
    pub votes_rejected: u64,
    pub optimize_rounds: u64,
}

impl ServerStats {
    fn snapshot(&self) -> ServerStatsSnapshot {
        snapshot_fields!(
            self,
            connections_accepted,
            connections_rejected_busy,
            connections_closed,
            http_requests,
            bin_requests,
            rank_requests,
            rank_batch_requests,
            vote_requests,
            optimize_requests,
            stats_requests,
            metrics_requests,
            health_requests,
            shutdown_requests,
            bad_requests,
            not_found,
            payload_too_large,
            server_errors,
            read_timeouts,
            client_disconnects,
            handler_panics,
            votes_positive,
            votes_negative,
            votes_rejected,
            optimize_rounds,
        )
    }
}

fn incr(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// What [`KgServer::shutdown`] observed while draining.
#[derive(Debug, Clone, Serialize)]
pub struct DrainReport {
    /// No worker panicked over the server's whole lifetime.
    pub clean: bool,
    /// Connections still queued when the drain began (all of them were
    /// served before workers exited).
    pub queued_at_shutdown: u64,
    /// Final counter values.
    pub stats: ServerStatsSnapshot,
}

// ---------------------------------------------------------------------------
// Bounded accept queue.

struct QueueState {
    conns: VecDeque<TcpStream>,
    draining: bool,
}

struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    depth: usize,
}

impl ConnQueue {
    fn new(depth: usize) -> Self {
        ConnQueue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                draining: false,
            }),
            ready: Condvar::new(),
            depth: depth.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues a connection, or returns it when the queue is full.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.lock();
        if state.conns.len() >= self.depth {
            return Err(stream);
        }
        state.conns.push_back(stream);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once draining and empty.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.lock();
        loop {
            if let Some(conn) = state.conns.pop_front() {
                return Some(conn);
            }
            if state.draining {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Flips the queue into drain mode: queued connections are still
    /// handed out, then every `pop` returns `None`.
    fn drain(&self) -> u64 {
        let mut state = self.lock();
        state.draining = true;
        let queued = state.conns.len() as u64;
        drop(state);
        self.ready.notify_all();
        queued
    }
}

// ---------------------------------------------------------------------------
// Shared server state.

struct Shared {
    cfg: ServerConfig,
    fw: Mutex<Framework>,
    handle: ServeHandle,
    node_count: u32,
    durable: bool,
    addr: SocketAddr,
    queue: ConnQueue,
    shutdown: AtomicBool,
    queued_at_shutdown: AtomicU64,
    stats: ServerStats,
    started: Instant,
}

impl Shared {
    fn lock_fw(&self) -> MutexGuard<'_, Framework> {
        // A panicking handler is already counted (and isolated by
        // catch_unwind); the framework state itself is snapshot-guarded,
        // so the lock stays usable.
        self.fw.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Flips the server into drain mode (idempotent) and unblocks the
    /// acceptor with a throwaway connection.
    fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queued_at_shutdown
            .store(self.queue.drain(), Ordering::Relaxed);
        // The acceptor sits in a blocking accept(); a local connect is
        // the portable way to wake it so it can observe the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A running votekg network server. Dropping it without calling
/// [`KgServer::shutdown`] detaches the threads; use `shutdown` (or
/// [`KgServer::wait`]) for a clean drain.
pub struct KgServer {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl KgServer {
    /// Binds, spawns the acceptor and worker pool, and starts serving.
    /// The [`ServeHandle`] is taken before the framework goes behind
    /// the write-path mutex, so rankings never contend with votes.
    pub fn start(fw: Framework, cfg: ServerConfig) -> std::io::Result<KgServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let handle = fw.handle();
        let node_count = fw.graph().node_count() as u32;
        let durable = fw.is_durable();
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            queue: ConnQueue::new(cfg.queue_depth),
            cfg,
            fw: Mutex::new(fw),
            handle,
            node_count,
            durable,
            addr,
            shutdown: AtomicBool::new(false),
            queued_at_shutdown: AtomicU64::new(0),
            stats: ServerStats::default(),
            started: Instant::now(),
        });

        let mut worker_joins = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            worker_joins.push(
                std::thread::Builder::new()
                    .name(format!("kg-server-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("kg-server-acceptor".to_string())
                .spawn(move || acceptor_loop(&shared, listener))?
        };

        Ok(KgServer {
            shared,
            acceptor: Some(acceptor),
            workers: worker_joins,
        })
    }

    /// The bound address (real port even when configured with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A lock-free reader handle over the same published snapshots the
    /// workers serve — lets in-process tests verify wire responses
    /// against local evaluation of the exact same epochs.
    pub fn handle(&self) -> ServeHandle {
        self.shared.handle.clone()
    }

    /// Current counter values.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Runs `f` against the framework behind the write-path mutex
    /// (tests and embedders drive optimization rounds through this).
    pub fn with_framework<T>(&self, f: impl FnOnce(&mut Framework) -> T) -> T {
        f(&mut self.shared.lock_fw())
    }

    /// Asks the server to drain without blocking (same as a
    /// `POST /shutdown` request).
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// True once a shutdown was requested (endpoint or API).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a shutdown is requested (e.g. via `POST /shutdown`),
    /// then drains. This is what `votekg serve` runs.
    pub fn wait(self) -> DrainReport {
        while !self.shutdown_requested() {
            std::thread::park_timeout(Duration::from_millis(25));
        }
        self.shutdown()
    }

    /// Drains and joins: stops accepting, serves everything already
    /// queued and in flight, flushes durable state, and reports.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.request_shutdown();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        {
            let mut fw = self.shared.lock_fw();
            let _ = fw.sync_wal();
        }
        let stats = self.shared.stats.snapshot();
        DrainReport {
            clean: stats.handler_panics == 0,
            queued_at_shutdown: self.shared.queued_at_shutdown.load(Ordering::Relaxed),
            stats,
        }
    }
}

fn acceptor_loop(shared: &Shared, listener: TcpListener) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        incr(&shared.stats.connections_accepted);
        if let Err(rejected) = shared.queue.push(stream) {
            incr(&shared.stats.connections_rejected_busy);
            reject_busy(rejected);
        }
    }
}

/// Best-effort 503 on a connection the queue had no room for. The
/// write is bounded by a short timeout so a non-reading peer cannot
/// stall the acceptor.
fn reject_busy(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut out = &stream;
    let _ = write_http_response(
        &mut out,
        503,
        "application/json",
        br#"{"error":"server busy: accept queue full, retry later"}"#,
        false,
    );
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.queue.pop() {
        // One panicking connection must never poison the worker: count
        // it, drop the socket, move on to the next connection.
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_connection(shared, &stream)));
        if outcome.is_err() {
            incr(&shared.stats.handler_panics);
        }
        incr(&shared.stats.connections_closed);
    }
}

fn handle_connection(shared: &Shared, stream: &TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let mut recv = RecvBuf::new(stream);
    let preamble = match recv.peek(4) {
        Ok(bytes) => bytes.to_vec(),
        Err(_) => return,
    };
    if preamble.is_empty() {
        return; // connect-then-close probe
    }
    let mut out = stream;
    if preamble == BIN_MAGIC {
        let mut sink = Vec::with_capacity(4);
        if recv.consume_exact(4, &mut sink).is_err() {
            return;
        }
        serve_binary(shared, &mut recv, &mut out);
    } else {
        serve_http(shared, &mut recv, &mut out);
    }
}

// ---------------------------------------------------------------------------
// HTTP mode.

struct Resp {
    code: u16,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Resp {
    fn json(code: u16, body: String) -> Resp {
        Resp {
            code,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    fn error(code: u16, message: &str) -> Resp {
        Resp::json(code, format!("{{\"error\":{}}}", json_escape(message)))
    }
}

fn serve_http<W: Write>(shared: &Shared, recv: &mut RecvBuf<&TcpStream>, out: &mut W) {
    loop {
        let req = match read_http_request(recv, &shared.cfg.limits, true) {
            Ok(req) => req,
            Err(WireError::Closed) => return,
            Err(WireError::Timeout) => {
                incr(&shared.stats.read_timeouts);
                let _ = write_http_response(
                    out,
                    408,
                    "application/json",
                    br#"{"error":"request timed out before a full request arrived"}"#,
                    false,
                );
                return;
            }
            Err(WireError::Bad(msg)) => {
                incr(&shared.stats.bad_requests);
                let _ = write_http_response(
                    out,
                    400,
                    "application/json",
                    Resp::error(400, &msg).body.as_slice(),
                    false,
                );
                return;
            }
            Err(WireError::TooLarge(msg)) => {
                incr(&shared.stats.payload_too_large);
                let _ = write_http_response(
                    out,
                    413,
                    "application/json",
                    Resp::error(413, &msg).body.as_slice(),
                    false,
                );
                return;
            }
            Err(WireError::Io(_)) => {
                incr(&shared.stats.client_disconnects);
                return;
            }
        };
        incr(&shared.stats.http_requests);
        let resp = route_http(shared, &req);
        match resp.code {
            400 | 405 => incr(&shared.stats.bad_requests),
            404 => incr(&shared.stats.not_found),
            413 => incr(&shared.stats.payload_too_large),
            500 => incr(&shared.stats.server_errors),
            _ => {}
        }
        // Responses written during a drain force the connection closed
        // so keep-alive clients re-resolve instead of waiting forever.
        let keep = req.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
        if write_http_response(out, resp.code, resp.content_type, &resp.body, keep).is_err() {
            incr(&shared.stats.client_disconnects);
            return;
        }
        if !keep {
            return;
        }
    }
}

fn route_http(shared: &Shared, req: &HttpRequest) -> Resp {
    let endpoint: &'static str = match req.path.as_str() {
        "/rank" => "rank",
        "/rank_batch" => "rank_batch",
        "/vote" => "vote",
        "/optimize" => "optimize",
        "/stats" => "stats",
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/shutdown" => "shutdown",
        _ => {
            return Resp::error(
                404,
                &format!(
                    "unknown path {:?}; endpoints: /rank /rank_batch /vote /optimize /stats /metrics /healthz /shutdown",
                    req.path
                ),
            )
        }
    };
    let _span = kg_telemetry::span!("votekg.server.request", { endpoint: endpoint });
    match (req.method.as_str(), endpoint) {
        ("GET" | "POST", "rank") => http_rank(shared, req),
        ("POST", "rank_batch") => http_rank_batch(shared, req),
        ("POST", "vote") => http_vote(shared, req),
        ("POST", "optimize") => http_optimize(shared, req),
        ("GET", "stats") => {
            incr(&shared.stats.stats_requests);
            Resp::json(200, stats_json(shared))
        }
        ("GET", "metrics") => {
            incr(&shared.stats.metrics_requests);
            Resp {
                code: 200,
                content_type: "text/plain; version=0.0.4",
                body: prometheus_text(shared).into_bytes(),
            }
        }
        ("GET", "healthz") => {
            incr(&shared.stats.health_requests);
            Resp::json(200, "{\"status\":\"ok\"}".to_string())
        }
        ("POST", "shutdown") => {
            incr(&shared.stats.shutdown_requests);
            shared.request_shutdown();
            Resp::json(200, "{\"draining\":true}".to_string())
        }
        (method, _) => Resp::error(
            405,
            &format!("method {method} is not allowed on {}", req.path),
        ),
    }
}

// ---------------------------------------------------------------------------
// Handler plumbing shared by both wire formats.

enum HandlerError {
    /// The request is invalid — the client's fault (400 / bad frame).
    Bad(String),
    /// The server failed — our fault (500 / error frame).
    Internal(String),
}

fn bad(msg: impl Into<String>) -> HandlerError {
    HandlerError::Bad(msg.into())
}

fn node_in_graph(shared: &Shared, id: u32, what: &str) -> Result<NodeId, HandlerError> {
    if id < shared.node_count {
        Ok(NodeId(id))
    } else {
        Err(bad(format!(
            "{what} node {id} is out of range: the graph has {} nodes",
            shared.node_count
        )))
    }
}

fn check_answer_count(n: usize) -> Result<(), HandlerError> {
    if n == 0 {
        return Err(bad("answers must be a non-empty list"));
    }
    if n > MAX_ANSWERS_PER_REQUEST {
        return Err(bad(format!(
            "{n} answers exceed the per-request cap of {MAX_ANSWERS_PER_REQUEST}"
        )));
    }
    Ok(())
}

/// Core rank path: validate ids, then a lock-free snapshot read.
fn do_rank(
    shared: &Shared,
    query: u32,
    answers: &[u32],
    k: usize,
) -> Result<(u64, Vec<RankedAnswer>), HandlerError> {
    incr(&shared.stats.rank_requests);
    check_answer_count(answers.len())?;
    let query = node_in_graph(shared, query, "query")?;
    let answers: Vec<NodeId> = answers
        .iter()
        .map(|&a| node_in_graph(shared, a, "answer"))
        .collect::<Result<_, _>>()?;
    let k = if k == 0 { answers.len() } else { k };
    let (snap, ranking) = shared.handle.rank_snapshot(query, &answers, k);
    Ok((snap.epoch(), ranking))
}

/// Core vote path: validate, then append + (optionally) fsync under
/// the framework mutex before acknowledging.
fn do_vote(
    shared: &Shared,
    query: u32,
    answers: &[u32],
    best: u32,
) -> Result<(kg_votes::VoteKind, bool, usize), HandlerError> {
    incr(&shared.stats.vote_requests);
    check_answer_count(answers.len())?;
    let query = node_in_graph(shared, query, "query")?;
    let best = node_in_graph(shared, best, "best")?;
    let answers: Vec<NodeId> = answers
        .iter()
        .map(|&a| node_in_graph(shared, a, "answer"))
        .collect::<Result<_, _>>()?;
    let vote = Vote::try_new(query, answers, best).map_err(|e| {
        incr(&shared.stats.votes_rejected);
        bad(format!("invalid vote: {e}"))
    })?;
    let mut fw = shared.lock_fw();
    let kind = fw
        .record_vote_durable(vote)
        .map_err(|e| HandlerError::Internal(format!("vote WAL append failed: {e}")))?;
    let durable = shared.durable && shared.cfg.durable_acks;
    if durable {
        fw.sync_wal()
            .map_err(|e| HandlerError::Internal(format!("vote WAL fsync failed: {e}")))?;
    }
    let pending = fw.pending_votes().len();
    drop(fw);
    match kind {
        kg_votes::VoteKind::Positive => incr(&shared.stats.votes_positive),
        kg_votes::VoteKind::Negative => incr(&shared.stats.votes_negative),
    }
    Ok((kind, durable, pending))
}

// ---------------------------------------------------------------------------
// HTTP handlers.

#[derive(Serialize)]
struct RankedAnswerWire {
    node: u32,
    rank: usize,
    score: f64,
    /// `score.to_bits()`: lets clients compare rankings bit-exactly.
    score_bits: u64,
}

#[derive(Serialize)]
struct RankResponseWire {
    epoch: u64,
    query: u32,
    ranking: Vec<RankedAnswerWire>,
}

fn rank_wire(epoch: u64, query: u32, ranking: Vec<RankedAnswer>) -> RankResponseWire {
    RankResponseWire {
        epoch,
        query,
        ranking: ranking
            .into_iter()
            .map(|a| RankedAnswerWire {
                node: a.node.0,
                rank: a.rank,
                score: a.score,
                score_bits: a.score.to_bits(),
            })
            .collect(),
    }
}

fn to_resp(result: Result<Resp, HandlerError>) -> Resp {
    match result {
        Ok(resp) => resp,
        Err(HandlerError::Bad(msg)) => Resp::error(400, &msg),
        Err(HandlerError::Internal(msg)) => Resp::error(500, &msg),
    }
}

fn http_rank(shared: &Shared, req: &HttpRequest) -> Resp {
    to_resp((|| {
        let (query, answers, k) = if req.method == "GET" {
            parse_rank_params(req)?
        } else {
            let body = parse_body(&req.body)?;
            (
                field_u32(&body, "query")?,
                field_id_list(&body, "answers")?,
                opt_field_u64(&body, "k")?.unwrap_or(0) as usize,
            )
        };
        let (epoch, ranking) = do_rank(shared, query, &answers, k)?;
        Ok(Resp::json(
            200,
            serde_json::to_string(&rank_wire(epoch, query, ranking))
                .map_err(|e| HandlerError::Internal(e.to_string()))?,
        ))
    })())
}

/// `GET /rank?query=3&answers=1,2,5&k=2`
fn parse_rank_params(req: &HttpRequest) -> Result<(u32, Vec<u32>, usize), HandlerError> {
    let query = req
        .param("query")
        .ok_or_else(|| bad("missing required query parameter 'query'"))?;
    let query: u32 = query
        .parse()
        .map_err(|_| bad(format!("unparseable query id {query:?}")))?;
    let answers = req
        .param("answers")
        .ok_or_else(|| bad("missing required query parameter 'answers' (comma-separated ids)"))?;
    let answers: Vec<u32> = answers
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .map_err(|_| bad(format!("unparseable answer id {s:?}")))
        })
        .collect::<Result<_, _>>()?;
    let k = match req.param("k") {
        Some(k) => k
            .parse()
            .map_err(|_| bad(format!("unparseable k value {k:?}")))?,
        None => 0,
    };
    Ok((query, answers, k))
}

fn http_rank_batch(shared: &Shared, req: &HttpRequest) -> Resp {
    to_resp((|| {
        incr(&shared.stats.rank_batch_requests);
        let body = parse_body(&req.body)?;
        let queries = body
            .get("queries")
            .ok_or_else(|| bad("missing required field 'queries'"))?;
        let queries = queries
            .as_array()
            .ok_or_else(|| bad("field 'queries' must be an array of rank requests"))?;
        if queries.len() > MAX_BATCH_QUERIES {
            return Err(bad(format!(
                "{} queries exceed the per-batch cap of {MAX_BATCH_QUERIES}",
                queries.len()
            )));
        }
        let mut results = Vec::with_capacity(queries.len());
        for (i, item) in queries.iter().enumerate() {
            let query = field_u32(item, "query").map_err(|e| prefix_item_error(i, e))?;
            let answers = field_id_list(item, "answers").map_err(|e| prefix_item_error(i, e))?;
            let k = opt_field_u64(item, "k")
                .map_err(|e| prefix_item_error(i, e))?
                .unwrap_or(0) as usize;
            let (epoch, ranking) =
                do_rank(shared, query, &answers, k).map_err(|e| prefix_item_error(i, e))?;
            results.push(rank_wire(epoch, query, ranking));
        }
        #[derive(Serialize)]
        struct BatchWire {
            results: Vec<RankResponseWire>,
        }
        Ok(Resp::json(
            200,
            serde_json::to_string(&BatchWire { results })
                .map_err(|e| HandlerError::Internal(e.to_string()))?,
        ))
    })())
}

fn prefix_item_error(index: usize, e: HandlerError) -> HandlerError {
    match e {
        HandlerError::Bad(msg) => HandlerError::Bad(format!("queries[{index}]: {msg}")),
        other => other,
    }
}

fn http_vote(shared: &Shared, req: &HttpRequest) -> Resp {
    to_resp((|| {
        let body = parse_body(&req.body)?;
        let query = field_u32(&body, "query")?;
        let answers = field_id_list(&body, "answers")?;
        let best = field_u32(&body, "best")?;
        let (kind, durable, pending) = do_vote(shared, query, &answers, best)?;
        #[derive(Serialize)]
        struct VoteWire {
            kind: &'static str,
            durable: bool,
            pending_votes: usize,
        }
        Ok(Resp::json(
            200,
            serde_json::to_string(&VoteWire {
                kind: match kind {
                    kg_votes::VoteKind::Positive => "positive",
                    kg_votes::VoteKind::Negative => "negative",
                },
                durable,
                pending_votes: pending,
            })
            .map_err(|e| HandlerError::Internal(e.to_string()))?,
        ))
    })())
}

fn http_optimize(shared: &Shared, req: &HttpRequest) -> Resp {
    to_resp((|| {
        incr(&shared.stats.optimize_requests);
        let body = if req.body.is_empty() {
            serde::Value::Object(Vec::new())
        } else {
            parse_body(&req.body)?
        };
        let strategy = match opt_field_str(&body, "strategy")?.unwrap_or("multi") {
            "single" => Strategy::SingleVote,
            "multi" => Strategy::MultiVote,
            "split-merge" | "split_merge" => Strategy::SplitMerge,
            other => {
                return Err(bad(format!(
                    "unknown strategy {other:?}: expected single | multi | split-merge"
                )))
            }
        };
        let batch = opt_field_u64(&body, "batch")?.unwrap_or(0) as usize;
        let started = Instant::now();
        let mut fw = shared.lock_fw();
        let reports = if batch > 0 {
            fw.optimize_incremental_durable(strategy, batch)
                .map_err(|e| HandlerError::Internal(format!("optimization commit failed: {e}")))?
        } else {
            vec![fw
                .optimize_durable(strategy)
                .map_err(|e| HandlerError::Internal(format!("optimization commit failed: {e}")))?]
        };
        drop(fw);
        shared
            .stats
            .optimize_rounds
            .fetch_add(reports.len() as u64, Ordering::Relaxed);
        #[derive(Serialize)]
        struct OptimizeWire {
            strategy: &'static str,
            rounds: usize,
            votes_applied: usize,
            votes_discarded: usize,
            votes_quarantined: usize,
            edges_changed: usize,
            omega: i64,
            epoch: u64,
            elapsed_ms: u64,
        }
        Ok(Resp::json(
            200,
            serde_json::to_string(&OptimizeWire {
                strategy: strategy.as_str(),
                rounds: reports.len(),
                votes_applied: reports.iter().map(|r| r.outcomes.len()).sum(),
                votes_discarded: reports.iter().map(|r| r.discarded_votes).sum(),
                votes_quarantined: reports.iter().map(|r| r.quarantined_votes).sum(),
                edges_changed: reports.iter().map(|r| r.edges_changed).sum(),
                omega: reports.iter().map(|r| r.omega()).sum(),
                epoch: shared.handle.epoch(),
                elapsed_ms: started.elapsed().as_millis() as u64,
            })
            .map_err(|e| HandlerError::Internal(e.to_string()))?,
        ))
    })())
}

// ---------------------------------------------------------------------------
// Stats + metrics documents.

#[derive(Serialize)]
struct CacheStatsWire {
    hits: u64,
    misses: u64,
    invalidated: u64,
    repaired: u64,
    retained: u64,
}

#[derive(Serialize)]
struct StatsDoc {
    epoch: u64,
    nodes: u32,
    durable: bool,
    workers: usize,
    queue_depth: usize,
    uptime_ms: u64,
    server: ServerStatsSnapshot,
    cache: CacheStatsWire,
}

fn stats_doc(shared: &Shared) -> StatsDoc {
    let cache = shared.handle.stats();
    StatsDoc {
        epoch: shared.handle.epoch(),
        nodes: shared.node_count,
        durable: shared.durable,
        workers: shared.cfg.workers.max(1),
        queue_depth: shared.cfg.queue_depth.max(1),
        uptime_ms: shared.started.elapsed().as_millis() as u64,
        server: shared.stats.snapshot(),
        cache: CacheStatsWire {
            hits: cache.hits,
            misses: cache.misses,
            invalidated: cache.invalidated,
            repaired: cache.repaired,
            retained: cache.retained,
        },
    }
}

fn stats_json(shared: &Shared) -> String {
    serde_json::to_string(&stats_doc(shared))
        .unwrap_or_else(|e| format!("{{\"error\":{}}}", json_escape(&e.to_string())))
}

/// Prometheus text exposition: the server's own counters, then (when
/// telemetry collection is enabled) the whole `votekg.*` registry.
fn prometheus_text(shared: &Shared) -> String {
    let doc = stats_doc(shared);
    let s = &doc.server;
    let mut out = String::with_capacity(2048);
    out.push_str("# TYPE votekg_server_requests_total counter\n");
    for (endpoint, value) in [
        ("rank", s.rank_requests),
        ("rank_batch", s.rank_batch_requests),
        ("vote", s.vote_requests),
        ("optimize", s.optimize_requests),
        ("stats", s.stats_requests),
        ("metrics", s.metrics_requests),
        ("healthz", s.health_requests),
        ("shutdown", s.shutdown_requests),
    ] {
        out.push_str(&format!(
            "votekg_server_requests_total{{endpoint=\"{endpoint}\"}} {value}\n"
        ));
    }
    out.push_str("# TYPE votekg_server_errors_total counter\n");
    for (kind, value) in [
        ("bad_request", s.bad_requests),
        ("not_found", s.not_found),
        ("payload_too_large", s.payload_too_large),
        ("internal", s.server_errors),
        ("read_timeout", s.read_timeouts),
        ("client_disconnect", s.client_disconnects),
        ("handler_panic", s.handler_panics),
    ] {
        out.push_str(&format!(
            "votekg_server_errors_total{{kind=\"{kind}\"}} {value}\n"
        ));
    }
    out.push_str("# TYPE votekg_server_connections_total counter\n");
    for (state, value) in [
        ("accepted", s.connections_accepted),
        ("rejected_busy", s.connections_rejected_busy),
        ("closed", s.connections_closed),
    ] {
        out.push_str(&format!(
            "votekg_server_connections_total{{state=\"{state}\"}} {value}\n"
        ));
    }
    out.push_str("# TYPE votekg_server_votes_total counter\n");
    for (kind, value) in [
        ("positive", s.votes_positive),
        ("negative", s.votes_negative),
        ("rejected", s.votes_rejected),
    ] {
        out.push_str(&format!(
            "votekg_server_votes_total{{kind=\"{kind}\"}} {value}\n"
        ));
    }
    out.push_str("# TYPE votekg_server_optimize_rounds_total counter\n");
    out.push_str(&format!(
        "votekg_server_optimize_rounds_total {}\n",
        s.optimize_rounds
    ));
    out.push_str("# TYPE votekg_server_epoch gauge\n");
    out.push_str(&format!("votekg_server_epoch {}\n", doc.epoch));
    out.push_str("# TYPE votekg_server_cache_events_total counter\n");
    for (event, value) in [
        ("hit", doc.cache.hits),
        ("miss", doc.cache.misses),
        ("invalidated", doc.cache.invalidated),
        ("repaired", doc.cache.repaired),
        ("retained", doc.cache.retained),
    ] {
        out.push_str(&format!(
            "votekg_server_cache_events_total{{event=\"{event}\"}} {value}\n"
        ));
    }
    if kg_telemetry::is_enabled() {
        out.push_str(&kg_telemetry::export_prometheus());
    }
    out
}

// ---------------------------------------------------------------------------
// Binary mode.

fn serve_binary<W: Write>(shared: &Shared, recv: &mut RecvBuf<&TcpStream>, out: &mut W) {
    loop {
        let (op_byte, payload) = match read_frame(recv, &shared.cfg.limits, true) {
            Ok(frame) => frame,
            Err(WireError::Closed) => return,
            Err(WireError::Timeout) => {
                incr(&shared.stats.read_timeouts);
                return;
            }
            Err(WireError::Bad(msg)) => {
                incr(&shared.stats.bad_requests);
                let _ = write_frame(out, status::BAD_REQUEST, msg.as_bytes());
                return;
            }
            Err(WireError::TooLarge(msg)) => {
                incr(&shared.stats.payload_too_large);
                let _ = write_frame(out, status::BAD_REQUEST, msg.as_bytes());
                return;
            }
            Err(WireError::Io(_)) => {
                incr(&shared.stats.client_disconnects);
                return;
            }
        };
        incr(&shared.stats.bin_requests);
        let (status_byte, body) = route_binary(shared, op_byte, &payload);
        if status_byte == status::BAD_REQUEST {
            incr(&shared.stats.bad_requests);
        } else if status_byte == status::ERROR {
            incr(&shared.stats.server_errors);
        }
        if write_frame(out, status_byte, &body).is_err() {
            incr(&shared.stats.client_disconnects);
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn route_binary(shared: &Shared, op_byte: u8, payload: &[u8]) -> (u8, Vec<u8>) {
    let endpoint: &'static str = match op_byte {
        op::RANK => "bin_rank",
        op::VOTE => "bin_vote",
        op::STATS => "bin_stats",
        op::PING => "bin_ping",
        _ => "bin_unknown",
    };
    let _span = kg_telemetry::span!("votekg.server.request", { endpoint: endpoint });
    match op_byte {
        op::RANK => match protocol::decode_rank_request(payload) {
            Ok(req) => match do_rank(shared, req.query, &req.answers, req.k as usize) {
                Ok((epoch, ranking)) => {
                    let wire: Vec<(u32, u64)> = ranking
                        .iter()
                        .map(|a| (a.node.0, a.score.to_bits()))
                        .collect();
                    (status::OK, protocol::encode_rank_response(epoch, &wire))
                }
                Err(e) => handler_error_frame(e),
            },
            Err(msg) => (status::BAD_REQUEST, msg.into_bytes()),
        },
        op::VOTE => match protocol::decode_vote_request(payload) {
            Ok(req) => match do_vote(shared, req.query, &req.answers, req.best) {
                Ok((kind, durable, _pending)) => {
                    let kind_byte = match kind {
                        kg_votes::VoteKind::Positive => 0u8,
                        kg_votes::VoteKind::Negative => 1u8,
                    };
                    (status::OK, vec![kind_byte, durable as u8])
                }
                Err(e) => handler_error_frame(e),
            },
            Err(msg) => (status::BAD_REQUEST, msg.into_bytes()),
        },
        op::STATS => {
            incr(&shared.stats.stats_requests);
            (status::OK, stats_json(shared).into_bytes())
        }
        op::PING => (status::OK, Vec::new()),
        other => (
            status::BAD_REQUEST,
            format!("unknown opcode {other}: expected rank=1 vote=2 stats=3 ping=4").into_bytes(),
        ),
    }
}

fn handler_error_frame(e: HandlerError) -> (u8, Vec<u8>) {
    match e {
        HandlerError::Bad(msg) => (status::BAD_REQUEST, msg.into_bytes()),
        HandlerError::Internal(msg) => (status::ERROR, msg.into_bytes()),
    }
}

// ---------------------------------------------------------------------------
// JSON body helpers. The compat serde derive has no `#[serde(...)]`
// attribute support, so optional fields are hand-extracted from the
// generic `Value` tree — which also yields precise error messages.

fn parse_body(body: &[u8]) -> Result<serde::Value, HandlerError> {
    if body.is_empty() {
        return Err(bad("missing JSON body"));
    }
    let text =
        std::str::from_utf8(body).map_err(|_| bad("request body is not valid UTF-8 JSON"))?;
    serde_json::from_str(text).map_err(|e| bad(format!("invalid JSON body: {e}")))
}

fn field_u32(v: &serde::Value, key: &str) -> Result<u32, HandlerError> {
    let raw = v
        .get(key)
        .ok_or_else(|| bad(format!("missing required field {key:?}")))?;
    let n = raw
        .as_u64()
        .ok_or_else(|| bad(format!("field {key:?} must be a non-negative integer")))?;
    u32::try_from(n).map_err(|_| bad(format!("field {key:?} value {n} exceeds u32::MAX")))
}

fn field_id_list(v: &serde::Value, key: &str) -> Result<Vec<u32>, HandlerError> {
    let raw = v
        .get(key)
        .ok_or_else(|| bad(format!("missing required field {key:?}")))?;
    let arr = raw
        .as_array()
        .ok_or_else(|| bad(format!("field {key:?} must be an array of node ids")))?;
    arr.iter()
        .enumerate()
        .map(|(i, item)| {
            let n = item
                .as_u64()
                .ok_or_else(|| bad(format!("{key}[{i}] must be a non-negative integer node id")))?;
            u32::try_from(n).map_err(|_| bad(format!("{key}[{i}] value {n} exceeds u32::MAX")))
        })
        .collect()
}

fn opt_field_u64(v: &serde::Value, key: &str) -> Result<Option<u64>, HandlerError> {
    match v.get(key) {
        None | Some(serde::Value::Null) => Ok(None),
        Some(raw) => raw
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("field {key:?} must be a non-negative integer"))),
    }
}

fn opt_field_str<'a>(v: &'a serde::Value, key: &str) -> Result<Option<&'a str>, HandlerError> {
    match v.get(key) {
        None | Some(serde::Value::Null) => Ok(None),
        Some(raw) => raw
            .as_str()
            .map(Some)
            .ok_or_else(|| bad(format!("field {key:?} must be a string"))),
    }
}

/// Minimal JSON string escaping for error messages.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
