//! Minimal blocking clients for both wire formats — used by the test
//! suites and the load generator, and a reference for what a real
//! client must implement.

use crate::protocol::{
    decode_rank_response, encode_rank_request, encode_vote_request, read_frame, write_frame,
    BinRankRequest, BinRankResponse, BinVoteRequest, Limits, RecvBuf, WireError, BIN_MAGIC,
};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// How a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, send, or receive).
    Io(String),
    /// The server answered with an error: HTTP status code, or the
    /// binary status byte, plus its descriptive message.
    Server { code: u16, message: String },
    /// The response violated the wire format.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(msg) => write!(f, "io: {msg}"),
            ClientError::Server { code, message } => write!(f, "server {code}: {message}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

fn io_err(e: std::io::Error) -> ClientError {
    ClientError::Io(e.to_string())
}

fn wire_err(e: WireError) -> ClientError {
    match e {
        WireError::Closed => ClientError::Io("connection closed by server".to_string()),
        WireError::Timeout => ClientError::Io("read timed out".to_string()),
        WireError::Bad(m) | WireError::TooLarge(m) => ClientError::Protocol(m),
        WireError::Io(m) => ClientError::Io(m),
    }
}

/// One parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    pub code: u16,
    pub keep_alive: bool,
    pub body: Vec<u8>,
}

impl HttpResponse {
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Parses the body as JSON.
    pub fn json(&self) -> Result<serde::Value, ClientError> {
        let text = std::str::from_utf8(&self.body)
            .map_err(|_| ClientError::Protocol("response body is not UTF-8".to_string()))?;
        serde_json::from_str(text)
            .map_err(|e| ClientError::Protocol(format!("response is not JSON: {e}")))
    }
}

struct HttpConn {
    stream: TcpStream,
    recv: RecvBuf<TcpStream>,
}

/// A keep-alive HTTP/1.1 client. Reconnects transparently (once per
/// request) when the server closed an idle keep-alive connection —
/// `reconnects` counts how often.
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
    conn: Option<HttpConn>,
    /// Transparent reconnects performed so far.
    pub reconnects: u64,
}

impl HttpClient {
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> Result<Self, ClientError> {
        let mut client = HttpClient {
            addr,
            timeout,
            conn: None,
            reconnects: 0,
        };
        client.conn = Some(client.dial()?);
        Ok(client)
    }

    fn dial(&self) -> Result<HttpConn, ClientError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(io_err)?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(io_err)?;
        let reader = stream.try_clone().map_err(io_err)?;
        Ok(HttpConn {
            stream,
            recv: RecvBuf::new(reader),
        })
    }

    /// Sends one request and reads the response, reconnecting once if
    /// the reused keep-alive connection turned out dead.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpResponse, ClientError> {
        let had_conn = self.conn.is_some();
        match self.try_request(method, path, body) {
            Ok(resp) => Ok(resp),
            Err(ClientError::Io(_)) if had_conn => {
                // The server may have dropped the idle connection
                // (timeout or drain); retry exactly once on a fresh one.
                self.conn = None;
                self.reconnects += 1;
                self.try_request(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpResponse, ClientError> {
        if self.conn.is_none() {
            self.conn = Some(self.dial()?);
        }
        let conn = self.conn.as_mut().expect("connection established above");
        let body_bytes = body.unwrap_or("").as_bytes();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: votekg\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body_bytes.len()
        );
        let send = conn
            .stream
            .write_all(head.as_bytes())
            .and_then(|()| conn.stream.write_all(body_bytes))
            .and_then(|()| conn.stream.flush());
        if let Err(e) = send {
            self.conn = None;
            return Err(io_err(e));
        }
        match read_http_response(&mut conn.recv) {
            Ok(resp) => {
                if !resp.keep_alive {
                    self.conn = None;
                }
                Ok(resp)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    /// `request` + non-2xx as [`ClientError::Server`].
    pub fn expect_ok(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpResponse, ClientError> {
        let resp = self.request(method, path, body)?;
        if resp.code / 100 != 2 {
            return Err(ClientError::Server {
                code: resp.code,
                message: resp.text(),
            });
        }
        Ok(resp)
    }

    pub fn get(&mut self, path: &str) -> Result<HttpResponse, ClientError> {
        self.expect_ok("GET", path, None)
    }

    pub fn post_json(&mut self, path: &str, body: &str) -> Result<HttpResponse, ClientError> {
        self.expect_ok("POST", path, Some(body))
    }
}

/// Reads one HTTP/1.1 response (status line, headers, Content-Length
/// body).
fn read_http_response(recv: &mut RecvBuf<TcpStream>) -> Result<HttpResponse, ClientError> {
    let limits = Limits::default();
    let status_line = recv.read_line(limits.max_line, false).map_err(wire_err)?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(ClientError::Protocol(format!(
            "malformed status line {status_line:?}"
        )));
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("unparseable status in {status_line:?}")))?;
    let mut content_length = 0usize;
    let mut keep_alive = true;
    loop {
        let line = recv.read_line(limits.max_line, false).map_err(wire_err)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| ClientError::Protocol(format!("bad Content-Length {value:?}")))?;
        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
            keep_alive = false;
        }
    }
    let mut body = Vec::with_capacity(content_length);
    recv.consume_exact(content_length, &mut body)
        .map_err(wire_err)?;
    Ok(HttpResponse {
        code,
        keep_alive,
        body,
    })
}

/// A binary-mode client: sends the `VKB1` preamble once, then
/// length-prefixed frames. Scores come back as `f64::to_bits`, so
/// rankings can be verified bit-exactly.
pub struct BinClient {
    stream: TcpStream,
    recv: RecvBuf<TcpStream>,
    limits: Limits,
}

/// A binary vote acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinVoteAck {
    /// 0 = positive, 1 = negative.
    pub kind: u8,
    /// The vote was fsynced to the WAL before this ack.
    pub durable: bool,
}

impl BinClient {
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> Result<Self, ClientError> {
        let mut stream = TcpStream::connect_timeout(&addr, timeout).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        stream.set_read_timeout(Some(timeout)).map_err(io_err)?;
        stream.set_write_timeout(Some(timeout)).map_err(io_err)?;
        stream.write_all(&BIN_MAGIC).map_err(io_err)?;
        let reader = stream.try_clone().map_err(io_err)?;
        Ok(BinClient {
            stream,
            recv: RecvBuf::new(reader),
            limits: Limits::default(),
        })
    }

    /// Sends a raw frame and reads the raw `(status, payload)` reply.
    pub fn exchange(&mut self, op: u8, payload: &[u8]) -> Result<(u8, Vec<u8>), ClientError> {
        write_frame(&mut self.stream, op, payload).map_err(io_err)?;
        read_frame(&mut self.recv, &self.limits, false).map_err(wire_err)
    }

    fn expect_ok(&mut self, op: u8, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        let (status, body) = self.exchange(op, payload)?;
        if status != crate::protocol::status::OK {
            return Err(ClientError::Server {
                code: status as u16,
                message: String::from_utf8_lossy(&body).into_owned(),
            });
        }
        Ok(body)
    }

    pub fn rank(
        &mut self,
        query: u32,
        answers: &[u32],
        k: u16,
    ) -> Result<BinRankResponse, ClientError> {
        let payload = encode_rank_request(&BinRankRequest {
            query,
            k,
            answers: answers.to_vec(),
        });
        let body = self.expect_ok(crate::protocol::op::RANK, &payload)?;
        decode_rank_response(&body).map_err(ClientError::Protocol)
    }

    pub fn vote(
        &mut self,
        query: u32,
        best: u32,
        answers: &[u32],
    ) -> Result<BinVoteAck, ClientError> {
        let payload = encode_vote_request(&BinVoteRequest {
            query,
            best,
            answers: answers.to_vec(),
        });
        let body = self.expect_ok(crate::protocol::op::VOTE, &payload)?;
        if body.len() != 2 {
            return Err(ClientError::Protocol(format!(
                "vote ack is {} bytes, expected 2",
                body.len()
            )));
        }
        Ok(BinVoteAck {
            kind: body[0],
            durable: body[1] != 0,
        })
    }

    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect_ok(crate::protocol::op::PING, &[]).map(|_| ())
    }

    /// The server's `/stats` document as JSON text.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let body = self.expect_ok(crate::protocol::op::STATS, &[])?;
        String::from_utf8(body)
            .map_err(|_| ClientError::Protocol("stats body is not UTF-8".to_string()))
    }
}
