//! Wire formats for the votekg server: a hand-rolled HTTP/1.1 subset
//! (keep-alive, `Content-Length` bodies, no chunked encoding) and a
//! compact length-prefixed binary mode, sharing one connection port.
//!
//! A connection declares its mode with its first four bytes: the magic
//! [`BIN_MAGIC`] (`"VKB1"`) selects binary framing; anything else is
//! treated as the start of an HTTP request line. Both modes support
//! many requests per connection.
//!
//! # Binary framing
//!
//! After the preamble, every request is one frame:
//!
//! ```text
//! [len: u32 BE] [op: u8] [payload: len-1 bytes]
//! ```
//!
//! and every response is:
//!
//! ```text
//! [len: u32 BE] [status: u8] [payload: len-1 bytes]
//! ```
//!
//! `len` counts the op/status byte plus the payload, so a frame is
//! never empty. Ops and statuses are in [`op`] and [`status`]. Multi-
//! byte integers are big-endian; scores travel as `f64::to_bits` so a
//! client can compare rankings bit-for-bit against a local evaluation.
//!
//! Request payloads:
//!
//! * `op::RANK`: `[query u32][k u16][n u16][answers n × u32]`
//! * `op::VOTE`: `[query u32][best u32][n u16][answers n × u32]`
//! * `op::STATS`, `op::PING`: empty
//!
//! Response payloads (`status::OK`):
//!
//! * rank: `[epoch u64][n u16][n × (node u32, score_bits u64)]`
//! * vote: `[kind u8 (0 positive / 1 negative)][durable u8]`
//! * stats: UTF-8 JSON (same document as `GET /stats`)
//! * ping: empty
//!
//! Error responses (`status::BAD_REQUEST` / `status::ERROR` /
//! `status::BUSY`) carry a UTF-8 message as payload.

use std::io::{self, Read, Write};

/// Connection preamble selecting the binary protocol.
pub const BIN_MAGIC: [u8; 4] = *b"VKB1";

/// Binary request opcodes.
pub mod op {
    /// Rank one query's answers: lock-free snapshot read.
    pub const RANK: u8 = 1;
    /// Submit one vote (durably acknowledged on WAL-backed servers).
    pub const VOTE: u8 = 2;
    /// Server + serving-cache statistics as JSON.
    pub const STATS: u8 = 3;
    /// Liveness no-op.
    pub const PING: u8 = 4;
}

/// Binary response status codes.
pub mod status {
    pub const OK: u8 = 0;
    /// The request was malformed; payload is a UTF-8 description.
    pub const BAD_REQUEST: u8 = 1;
    /// The server failed internally; payload is a UTF-8 description.
    pub const ERROR: u8 = 2;
    /// The accept queue was full; retry later.
    pub const BUSY: u8 = 3;
}

/// Hard per-request size caps. Everything over a cap is a descriptive
/// protocol error, never an allocation the peer controls.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// HTTP request line, single header line, and binary frame cap.
    pub max_line: usize,
    /// Maximum number of HTTP headers per request.
    pub max_headers: usize,
    /// HTTP body / binary frame payload cap in bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_line: 8 * 1024,
            max_headers: 64,
            max_body: 1024 * 1024,
        }
    }
}

/// How reading a request failed. Determines the response (if any) and
/// whether the connection can survive.
#[derive(Debug)]
pub enum WireError {
    /// Malformed input: respond with a description, then close.
    Bad(String),
    /// A size cap was exceeded: respond 413 / error frame, then close.
    TooLarge(String),
    /// The socket read timed out mid-request (slow-loris) or while idle.
    Timeout,
    /// Clean EOF at a request boundary — the peer is done.
    Closed,
    /// Socket-level failure (reset, broken pipe, ...).
    Io(String),
}

impl WireError {
    fn from_io(e: io::Error) -> WireError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => WireError::Timeout,
            io::ErrorKind::UnexpectedEof => WireError::Closed,
            _ => WireError::Io(e.to_string()),
        }
    }
}

/// A pull buffer over a raw stream: supports peeking the mode preamble
/// and reading lines / exact lengths with caps. Hand-rolled because
/// `std::io::BufReader` cannot peek more than one `fill_buf` worth.
pub struct RecvBuf<R> {
    inner: R,
    buf: Vec<u8>,
    pos: usize,
}

impl<R: Read> RecvBuf<R> {
    pub fn new(inner: R) -> Self {
        RecvBuf {
            inner,
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn buffered(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Pulls more bytes from the stream into the buffer. `Ok(0)` is EOF.
    fn fill(&mut self) -> Result<usize, WireError> {
        self.compact();
        let mut chunk = [0u8; 4096];
        let n = self.inner.read(&mut chunk).map_err(WireError::from_io)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Peeks at least `n` bytes without consuming them. Returns fewer
    /// only at EOF.
    pub fn peek(&mut self, n: usize) -> Result<&[u8], WireError> {
        while self.buffered().len() < n {
            if self.fill()? == 0 {
                break;
            }
        }
        let have = self.buffered().len().min(n);
        Ok(&self.buf[self.pos..self.pos + have])
    }

    /// Consumes exactly `n` already-peeked or incoming bytes.
    pub fn consume_exact(&mut self, n: usize, out: &mut Vec<u8>) -> Result<(), WireError> {
        while self.buffered().len() < n {
            if self.fill()? == 0 {
                return Err(WireError::Bad(format!(
                    "truncated: expected {n} more bytes, peer closed after {}",
                    self.buffered().len()
                )));
            }
        }
        out.extend_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(())
    }

    /// Reads one CRLF- (or bare-LF-) terminated line of at most `max`
    /// bytes, returning it without the terminator. `at_boundary` marks
    /// whether EOF before any byte is a clean close ([`WireError::Closed`])
    /// or a truncation.
    pub fn read_line(&mut self, max: usize, at_boundary: bool) -> Result<String, WireError> {
        let mut scanned = 0usize;
        loop {
            let hay = self.buffered();
            if let Some(idx) = hay[scanned.min(hay.len())..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|i| i + scanned.min(hay.len()))
            {
                let mut line = &hay[..idx];
                if line.ends_with(b"\r") {
                    line = &line[..line.len() - 1];
                }
                if line.len() > max {
                    return Err(WireError::TooLarge(format!(
                        "line of {} bytes exceeds the {max}-byte cap",
                        line.len()
                    )));
                }
                let text = String::from_utf8_lossy(line).into_owned();
                self.pos += idx + 1;
                return Ok(text);
            }
            scanned = hay.len();
            if scanned > max {
                return Err(WireError::TooLarge(format!(
                    "unterminated line exceeds the {max}-byte cap"
                )));
            }
            if self.fill()? == 0 {
                if scanned == 0 && at_boundary {
                    return Err(WireError::Closed);
                }
                return Err(WireError::Bad(
                    "truncated: connection closed mid-line".to_string(),
                ));
            }
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct HttpRequest {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Decoded `?key=value` pairs (no percent-decoding: the API is numeric).
    pub query: Vec<(String, String)>,
    pub keep_alive: bool,
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of a query-string parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one HTTP request. `at_boundary` marks whether the connection
/// is between requests (clean EOF allowed).
pub fn read_http_request<R: Read>(
    recv: &mut RecvBuf<R>,
    limits: &Limits,
    at_boundary: bool,
) -> Result<HttpRequest, WireError> {
    let line = recv.read_line(limits.max_line, at_boundary)?;
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
        _ => {
            return Err(WireError::Bad(format!(
                "malformed request line {:?}: expected METHOD TARGET HTTP/1.x",
                truncate_for_error(&line)
            )))
        }
    };
    if !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(WireError::Bad(format!(
            "malformed method {:?}: expected an all-uppercase token",
            truncate_for_error(method)
        )));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(WireError::Bad(format!(
                "unsupported protocol version {:?}",
                truncate_for_error(other)
            )))
        }
    };

    let mut content_length = 0usize;
    let mut keep_alive = http11;
    let mut n_headers = 0usize;
    loop {
        let header = recv.read_line(limits.max_line, false)?;
        if header.is_empty() {
            break;
        }
        n_headers += 1;
        if n_headers > limits.max_headers {
            return Err(WireError::TooLarge(format!(
                "more than {} headers",
                limits.max_headers
            )));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(WireError::Bad(format!(
                "malformed header line {:?}: missing ':'",
                truncate_for_error(&header)
            )));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| {
                    WireError::Bad(format!(
                        "unparseable Content-Length {:?}",
                        truncate_for_error(value)
                    ))
                })?;
            }
            "transfer-encoding" => {
                return Err(WireError::Bad(format!(
                    "Transfer-Encoding {:?} is not supported; send a Content-Length body",
                    truncate_for_error(value)
                )));
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }

    if content_length > limits.max_body {
        return Err(WireError::TooLarge(format!(
            "Content-Length {content_length} exceeds the {}-byte body cap",
            limits.max_body
        )));
    }
    let mut body = Vec::with_capacity(content_length);
    recv.consume_exact(content_length, &mut body)?;

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();

    Ok(HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        query,
        keep_alive,
        body,
    })
}

fn truncate_for_error(s: &str) -> String {
    const MAX: usize = 80;
    if s.len() <= MAX {
        s.to_string()
    } else {
        let mut cut = MAX;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}...", &s[..cut])
    }
}

/// Reason phrases for the statuses the server emits.
pub fn reason_phrase(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one HTTP/1.1 response with an explicit `Connection` header.
pub fn write_http_response<W: Write>(
    w: &mut W,
    code: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        code,
        reason_phrase(code),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one binary frame (after the preamble): `(first_byte, payload)`.
pub fn read_frame<R: Read>(
    recv: &mut RecvBuf<R>,
    limits: &Limits,
    at_boundary: bool,
) -> Result<(u8, Vec<u8>), WireError> {
    let head = recv.peek(4)?;
    if head.is_empty() && at_boundary {
        return Err(WireError::Closed);
    }
    if head.len() < 4 {
        return Err(WireError::Bad(format!(
            "truncated frame header: got {} of 4 length bytes",
            head.len()
        )));
    }
    let len = u32::from_be_bytes([head[0], head[1], head[2], head[3]]) as usize;
    if len == 0 {
        return Err(WireError::Bad(
            "zero-length frame: every frame carries at least an op byte".to_string(),
        ));
    }
    if len > limits.max_body + 1 {
        return Err(WireError::TooLarge(format!(
            "frame of {len} bytes exceeds the {}-byte cap",
            limits.max_body + 1
        )));
    }
    let mut frame = Vec::with_capacity(4 + len);
    recv.consume_exact(4 + len, &mut frame)?;
    let op = frame[4];
    Ok((op, frame.split_off(5)))
}

/// Writes one binary frame.
pub fn write_frame<W: Write>(w: &mut W, first_byte: u8, payload: &[u8]) -> io::Result<()> {
    let len = (payload.len() + 1) as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&[first_byte])?;
    w.write_all(payload)?;
    w.flush()
}

// ---------------------------------------------------------------------------
// Binary payload encode/decode — shared by server and client so the two
// sides cannot drift.

fn take_u16(buf: &[u8], at: usize) -> Option<u16> {
    Some(u16::from_be_bytes([*buf.get(at)?, *buf.get(at + 1)?]))
}

fn take_u32(buf: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_be_bytes([
        *buf.get(at)?,
        *buf.get(at + 1)?,
        *buf.get(at + 2)?,
        *buf.get(at + 3)?,
    ]))
}

fn take_u64(buf: &[u8], at: usize) -> Option<u64> {
    let mut b = [0u8; 8];
    b.copy_from_slice(buf.get(at..at + 8)?);
    Some(u64::from_be_bytes(b))
}

/// A decoded binary rank request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinRankRequest {
    pub query: u32,
    pub k: u16,
    pub answers: Vec<u32>,
}

pub fn encode_rank_request(req: &BinRankRequest) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 * req.answers.len());
    out.extend_from_slice(&req.query.to_be_bytes());
    out.extend_from_slice(&req.k.to_be_bytes());
    out.extend_from_slice(&(req.answers.len() as u16).to_be_bytes());
    for a in &req.answers {
        out.extend_from_slice(&a.to_be_bytes());
    }
    out
}

pub fn decode_rank_request(payload: &[u8]) -> Result<BinRankRequest, String> {
    let query = take_u32(payload, 0).ok_or("rank payload shorter than the 4-byte query id")?;
    let k = take_u16(payload, 4).ok_or("rank payload missing the 2-byte k field")?;
    let n = take_u16(payload, 6).ok_or("rank payload missing the 2-byte answer count")? as usize;
    let want = 8 + 4 * n;
    if payload.len() != want {
        return Err(format!(
            "rank payload is {} bytes but {n} answers require exactly {want}",
            payload.len()
        ));
    }
    let answers = (0..n)
        .map(|i| take_u32(payload, 8 + 4 * i).expect("length checked above"))
        .collect();
    Ok(BinRankRequest { query, k, answers })
}

/// A decoded binary vote request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinVoteRequest {
    pub query: u32,
    pub best: u32,
    pub answers: Vec<u32>,
}

pub fn encode_vote_request(req: &BinVoteRequest) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + 4 * req.answers.len());
    out.extend_from_slice(&req.query.to_be_bytes());
    out.extend_from_slice(&req.best.to_be_bytes());
    out.extend_from_slice(&(req.answers.len() as u16).to_be_bytes());
    for a in &req.answers {
        out.extend_from_slice(&a.to_be_bytes());
    }
    out
}

pub fn decode_vote_request(payload: &[u8]) -> Result<BinVoteRequest, String> {
    let query = take_u32(payload, 0).ok_or("vote payload shorter than the 4-byte query id")?;
    let best = take_u32(payload, 4).ok_or("vote payload missing the 4-byte best id")?;
    let n = take_u16(payload, 8).ok_or("vote payload missing the 2-byte answer count")? as usize;
    let want = 10 + 4 * n;
    if payload.len() != want {
        return Err(format!(
            "vote payload is {} bytes but {n} answers require exactly {want}",
            payload.len()
        ));
    }
    let answers = (0..n)
        .map(|i| take_u32(payload, 10 + 4 * i).expect("length checked above"))
        .collect();
    Ok(BinVoteRequest {
        query,
        best,
        answers,
    })
}

/// One ranked answer on the wire: `(node, score_bits)`. Scores travel as
/// bits so clients can compare rankings exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinRankedAnswer {
    pub node: u32,
    pub score_bits: u64,
}

/// A decoded binary rank response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinRankResponse {
    pub epoch: u64,
    pub ranking: Vec<BinRankedAnswer>,
}

pub fn encode_rank_response(epoch: u64, ranking: &[(u32, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + 12 * ranking.len());
    out.extend_from_slice(&epoch.to_be_bytes());
    out.extend_from_slice(&(ranking.len() as u16).to_be_bytes());
    for (node, bits) in ranking {
        out.extend_from_slice(&node.to_be_bytes());
        out.extend_from_slice(&bits.to_be_bytes());
    }
    out
}

pub fn decode_rank_response(payload: &[u8]) -> Result<BinRankResponse, String> {
    let epoch = take_u64(payload, 0).ok_or("rank response shorter than the 8-byte epoch")?;
    let n = take_u16(payload, 8).ok_or("rank response missing the 2-byte count")? as usize;
    let want = 10 + 12 * n;
    if payload.len() != want {
        return Err(format!(
            "rank response is {} bytes but {n} entries require exactly {want}",
            payload.len()
        ));
    }
    let ranking = (0..n)
        .map(|i| BinRankedAnswer {
            node: take_u32(payload, 10 + 12 * i).expect("length checked above"),
            score_bits: take_u64(payload, 14 + 12 * i).expect("length checked above"),
        })
        .collect();
    Ok(BinRankResponse { epoch, ranking })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv(bytes: &[u8]) -> RecvBuf<&[u8]> {
        RecvBuf::new(bytes)
    }

    #[test]
    fn parses_a_minimal_request() {
        let mut r = recv(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n");
        let req = read_http_request(&mut r, &Limits::default(), true).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_query_string_and_body() {
        let mut r = recv(b"POST /rank?query=3&k=2 HTTP/1.0\r\nContent-Length: 4\r\n\r\nabcd");
        let req = read_http_request(&mut r, &Limits::default(), true).unwrap();
        assert_eq!(req.path, "/rank");
        assert_eq!(req.param("query"), Some("3"));
        assert_eq!(req.param("k"), Some("2"));
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let mut r = recv(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        let limits = Limits::default();
        assert_eq!(read_http_request(&mut r, &limits, true).unwrap().path, "/a");
        assert_eq!(read_http_request(&mut r, &limits, true).unwrap().path, "/b");
        assert!(matches!(
            read_http_request(&mut r, &limits, true),
            Err(WireError::Closed)
        ));
    }

    #[test]
    fn garbage_request_line_is_descriptive() {
        let mut r = recv(b"THIS IS NOT HTTP AT ALL\r\n\r\n");
        match read_http_request(&mut r, &Limits::default(), true) {
            Err(WireError::Bad(msg)) => assert!(msg.contains("request line"), "{msg}"),
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn oversized_body_is_rejected_before_allocation() {
        let mut r = recv(b"POST /vote HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n");
        let limits = Limits {
            max_body: 1024,
            ..Limits::default()
        };
        assert!(matches!(
            read_http_request(&mut r, &limits, true),
            Err(WireError::TooLarge(_))
        ));
    }

    #[test]
    fn truncated_body_is_bad_not_hang() {
        let mut r = recv(b"POST /vote HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
        match read_http_request(&mut r, &Limits::default(), true) {
            Err(WireError::Bad(msg)) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn frame_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, op::RANK, b"payload").unwrap();
        let mut r = recv(&wire);
        let (op_byte, payload) = read_frame(&mut r, &Limits::default(), true).unwrap();
        assert_eq!(op_byte, op::RANK);
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn zero_and_oversized_frames_are_rejected() {
        let zero = 0u32.to_be_bytes();
        let mut r = recv(&zero);
        assert!(matches!(
            read_frame(&mut r, &Limits::default(), true),
            Err(WireError::Bad(_))
        ));
        let huge = u32::MAX.to_be_bytes();
        let mut r = recv(&huge);
        assert!(matches!(
            read_frame(&mut r, &Limits::default(), true),
            Err(WireError::TooLarge(_))
        ));
    }

    #[test]
    fn rank_request_round_trip() {
        let req = BinRankRequest {
            query: 7,
            k: 5,
            answers: vec![1, 2, 3, 900],
        };
        assert_eq!(decode_rank_request(&encode_rank_request(&req)), Ok(req));
        assert!(decode_rank_request(&[1, 2, 3]).is_err());
    }

    #[test]
    fn vote_request_round_trip() {
        let req = BinVoteRequest {
            query: 9,
            best: 2,
            answers: vec![2, 4, 8],
        };
        let mut bytes = encode_vote_request(&req);
        assert_eq!(decode_vote_request(&bytes), Ok(req));
        bytes.pop();
        assert!(decode_vote_request(&bytes).is_err());
    }

    #[test]
    fn rank_response_round_trip() {
        let ranking = vec![(3u32, 1.5f64.to_bits()), (9, 0.25f64.to_bits())];
        let decoded = decode_rank_response(&encode_rank_response(42, &ranking)).unwrap();
        assert_eq!(decoded.epoch, 42);
        assert_eq!(decoded.ranking.len(), 2);
        assert_eq!(decoded.ranking[0].node, 3);
        assert_eq!(f64::from_bits(decoded.ranking[0].score_bits), 1.5);
    }
}
